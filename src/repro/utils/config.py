"""Configuration (de)serialisation helpers.

Experiment artefacts — per-layer ADC configurations found by the co-design
search, architecture parameters, dataset specs — are plain dataclasses.  The
helpers here convert them to and from JSON so that a calibration result can be
saved, inspected and replayed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Type, TypeVar, Union

import numpy as np

T = TypeVar("T")
PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays and dataclasses to JSON-friendly values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return asdict_recursive(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def asdict_recursive(obj: Any) -> Dict[str, Any]:
    """Like :func:`dataclasses.asdict` but numpy-aware."""
    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise TypeError(f"expected a dataclass instance, got {type(obj)!r}")
    return {
        field.name: _jsonable(getattr(obj, field.name))
        for field in dataclasses.fields(obj)
    }


def config_to_json(obj: Any, indent: int = 2) -> str:
    """Serialise a dataclass (or plain dict) to a JSON string."""
    payload = asdict_recursive(obj) if dataclasses.is_dataclass(obj) else _jsonable(obj)
    return json.dumps(payload, indent=indent, sort_keys=True)


def config_from_json(cls: Type[T], text: str) -> T:
    """Instantiate dataclass ``cls`` from a JSON string produced by
    :func:`config_to_json`.  Unknown keys raise ``TypeError`` so that stale
    configuration files are detected instead of silently ignored."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise TypeError(f"expected a JSON object for {cls.__name__}, got {type(data)!r}")
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise TypeError(f"unknown fields for {cls.__name__}: {sorted(unknown)}")
    return cls(**data)


def canonical_json(obj: Any) -> str:
    """A *canonical* JSON rendering suitable for content addressing.

    Sorted keys, no insignificant whitespace, numpy scalars normalised — so
    the same logical configuration always serialises to the same bytes
    across processes and Python versions.  Floats rely on ``repr``'s
    shortest round-trip representation (stable since Python 3.1).
    """
    payload = asdict_recursive(obj) if dataclasses.is_dataclass(obj) else _jsonable(obj)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def stable_digest(obj: Any, length: int = 16) -> str:
    """Hex digest of :func:`canonical_json`, truncated to ``length`` chars.

    This is the content-addressing primitive shared by the trained-weight
    cache (:mod:`repro.workloads`) and the experiment result store
    (:mod:`repro.experiments.store`).
    """
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[: int(length)] if length else digest


def save_json(obj: Any, path: PathLike) -> Path:
    """Write ``obj`` (dataclass or dict) to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(config_to_json(obj))
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
