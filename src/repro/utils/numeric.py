"""Numeric helpers shared by the quantization and ADC models.

The single important convention lives here: **rounding is half-up** (towards
+infinity at exact midpoints), because that is what a SAR ADC's comparator
grid implements — the code chosen for an input exactly on a decision
threshold is the upper one.  NumPy's ``np.round`` uses banker's rounding
(half-to-even), which would make the vectorised quantizer models disagree
with the cycle-accurate SAR search on exact grid midpoints; every rounding in
the datapath therefore goes through :func:`round_half_up`.
"""

from __future__ import annotations

import numpy as np


def round_half_up(x: np.ndarray) -> np.ndarray:
    """Round to the nearest integer, with exact halves rounded up (+inf)."""
    return np.floor(np.asarray(x, dtype=np.float64) + 0.5)


def clamp(x: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clamp values into ``[low, high]`` (thin wrapper for readability)."""
    return np.clip(x, low, high)


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ... — False for zero, negatives and non-powers."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_log2(value: int) -> int:
    """Smallest ``k`` with ``2^k >= value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return int(np.ceil(np.log2(value))) if value > 1 else 0


def normal_quantile(p: float) -> float:
    """Standard-normal inverse CDF (Acklam's rational approximation).

    Used for Monte Carlo confidence intervals without a SciPy dependency;
    absolute error is below 1.2e-9 over the open unit interval.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > p_high:
        q = np.sqrt(-2.0 * np.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-int(numerator) // int(denominator))
