"""Numeric helpers shared by the quantization and ADC models.

The single important convention lives here: **rounding is half-up** (towards
+infinity at exact midpoints), because that is what a SAR ADC's comparator
grid implements — the code chosen for an input exactly on a decision
threshold is the upper one.  NumPy's ``np.round`` uses banker's rounding
(half-to-even), which would make the vectorised quantizer models disagree
with the cycle-accurate SAR search on exact grid midpoints; every rounding in
the datapath therefore goes through :func:`round_half_up`.
"""

from __future__ import annotations

import numpy as np


def round_half_up(x: np.ndarray) -> np.ndarray:
    """Round to the nearest integer, with exact halves rounded up (+inf)."""
    return np.floor(np.asarray(x, dtype=np.float64) + 0.5)


def clamp(x: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clamp values into ``[low, high]`` (thin wrapper for readability)."""
    return np.clip(x, low, high)


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ... — False for zero, negatives and non-powers."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_log2(value: int) -> int:
    """Smallest ``k`` with ``2^k >= value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return int(np.ceil(np.log2(value))) if value > 1 else 0


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-int(numerator) // int(denominator))
