"""Deterministic random-number-generation helpers.

Every stochastic component in the library (dataset synthesis, weight
initialisation, device variation, sampling of calibration images) accepts
either an integer seed or a :class:`numpy.random.Generator`.  The helpers in
this module centralise how seeds are turned into generators and how child
seeds are derived, so that a single top-level seed makes an entire experiment
reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5EED


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` uses a fixed library-wide default (experiments are
        reproducible out of the box), an ``int`` seeds a fresh PCG64
        generator, and an existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be None, int or Generator, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def derive_seed(base_seed: int, *labels: Union[str, int]) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is a stable hash, so the same ``(base_seed, labels)`` pair
    always yields the same child seed across processes and Python versions
    (unlike ``hash()``).  Use this to give independent streams to e.g. each
    layer's weight initialisation or each dataset split.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = new_rng(seed)
    seq = np.random.SeedSequence(root.integers(0, 2**63 - 1))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngMixin:
    """Mixin providing a lazily-created ``self.rng`` generator.

    Classes that occasionally need randomness (device variation, sampling)
    inherit from this mixin and call :meth:`_init_rng` in ``__init__``.
    """

    _rng: Optional[np.random.Generator] = None

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The generator backing this object's randomness."""
        if self._rng is None:
            self._rng = new_rng(None)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator, e.g. to replay a stochastic component."""
        self._rng = new_rng(seed)


def choice_without_replacement(
    rng: np.random.Generator, population: int, size: int
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    Raises ``ValueError`` when ``size`` exceeds the population, which is a
    common silent bug when a calibration set is larger than the dataset.
    """
    if size > population:
        raise ValueError(
            f"cannot sample {size} items without replacement from {population}"
        )
    return rng.choice(population, size=size, replace=False)


def stable_shuffle(rng: np.random.Generator, items: Iterable) -> list:
    """Return a shuffled copy of ``items`` (the input is never mutated)."""
    items = list(items)
    order = rng.permutation(len(items))
    return [items[i] for i in order]
