"""Shared utilities: seeded RNG management, config serialisation, validation.

These helpers are intentionally dependency-free (NumPy only) and are used by
every other subpackage.  Nothing in here is specific to the paper; it is the
plumbing a production library needs so that experiments are reproducible and
configurations are auditable.
"""

from repro.utils.config import (
    asdict_recursive,
    canonical_json,
    config_from_json,
    config_to_json,
    load_json,
    save_json,
    stable_digest,
)
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import RngMixin, derive_seed, new_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_positive,
    check_power_of_two,
    check_probability,
)
from repro.utils.warnings import reset_warn_once_registry, warn_once

__all__ = [
    "RngMixin",
    "asdict_recursive",
    "canonical_json",
    "check_in_range",
    "check_integer",
    "check_positive",
    "check_power_of_two",
    "check_probability",
    "config_from_json",
    "config_to_json",
    "derive_seed",
    "get_logger",
    "load_json",
    "new_rng",
    "reset_warn_once_registry",
    "save_json",
    "set_verbosity",
    "spawn_rngs",
    "stable_digest",
    "warn_once",
]
