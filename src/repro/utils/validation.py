"""Small argument-validation helpers shared across the library.

Hardware-model code has many integer parameters with tight legal ranges
(resolutions, bit-widths, crossbar sizes).  Validating them eagerly with
informative error messages turns silent mis-configuration into loud failures,
which matters a lot when sweeping hundreds of search candidates.
"""

from __future__ import annotations

from typing import Optional, Union

Number = Union[int, float]


def check_integer(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is integral, else raise ``TypeError``."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    raise TypeError(f"{name} must be an integer, got {value!r}")


def check_positive(value: Number, name: str, strict: bool = True) -> Number:
    """Validate that ``value`` is positive (strictly by default)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value: Number,
    name: str,
    low: Optional[Number] = None,
    high: Optional[Number] = None,
    inclusive: bool = True,
) -> Number:
    """Validate ``low <= value <= high`` (or strict inequalities)."""
    if low is not None:
        ok = value >= low if inclusive else value > low
        if not ok:
            raise ValueError(f"{name} must be {'>=' if inclusive else '>'} {low}, got {value}")
    if high is not None:
        ok = value <= high if inclusive else value < high
        if not ok:
            raise ValueError(f"{name} must be {'<=' if inclusive else '<'} {high}, got {value}")
    return value


def check_probability(value: Number, name: str) -> Number:
    """Validate that ``value`` lies in ``[0, 1]``."""
    return check_in_range(value, name, low=0.0, high=1.0)


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two (1, 2, 4, ...)."""
    value = check_integer(value, name)
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value
