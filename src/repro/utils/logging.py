"""Thin logging wrapper so the whole library shares one logger hierarchy.

Long-running calibration searches and simulations emit progress through these
loggers; tests and benchmarks keep them quiet by default.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(levelname)s] %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, e.g. ``get_logger("core.calibration")``."""
    _ensure_configured()
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the verbosity of all library loggers (``logging`` level constants)."""
    _ensure_configured()
    logging.getLogger(_ROOT_NAME).setLevel(level)


def verbosity_to_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI ``-v`` counts / ``-q`` to a ``logging`` level.

    ``-q`` wins over any ``-v``: errors only.  No flags keeps the library
    default (warnings); ``-v`` surfaces progress (INFO), ``-vv`` and
    beyond the full per-job detail (DEBUG).
    """
    if quiet:
        return logging.ERROR
    if verbose <= 0:
        return logging.WARNING
    if verbose == 1:
        return logging.INFO
    return logging.DEBUG
