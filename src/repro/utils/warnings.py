"""Process-wide once-only warning emission.

The deprecation shims (:mod:`repro.sim.fidelity`, the stochastic
``CellConfig`` knobs) are constructed once per *call site* in a serial
script, but a parallel experiment sweep constructs them once per job × per
worker process — hundreds of identical :class:`DeprecationWarning` lines
flooding the logs.  Python's own ``warnings`` registry dedupes per
``(message, category, module, lineno)`` only under the default filter, which
test harnesses routinely override with ``always``/``error``.

:func:`warn_once` keeps its own per-process registry keyed by an explicit
stable key, so each distinct deprecation is reported exactly once per
process no matter how the filters are configured.  Tests that assert on the
warnings reset the registry via :func:`reset_warn_once_registry` (the test
suite does this around every test).
"""

from __future__ import annotations

import warnings
from typing import Hashable, Set, Type

_EMITTED: Set[Hashable] = set()


def warn_once(
    key: Hashable,
    message: str,
    category: Type[Warning] = DeprecationWarning,
    stacklevel: int = 2,
) -> bool:
    """Emit ``message`` at most once per process for a given ``key``.

    Returns ``True`` when the warning was actually emitted (first call for
    this key), ``False`` when it was suppressed as a duplicate.
    """
    if key in _EMITTED:
        return False
    _EMITTED.add(key)
    warnings.warn(message, category, stacklevel=stacklevel + 1)
    return True


def reset_warn_once_registry() -> None:
    """Forget every emitted key (so the next ``warn_once`` fires again)."""
    _EMITTED.clear()
