"""Vectorised Twin-Range SAR ADC (the paper's modified converter).

The analog front end (sample-and-hold, comparator, capacitive DAC) is
untouched; only the SAR control logic changes (paper Section III-D).  The
conversion therefore has exactly the transfer function of
:func:`repro.core.trq.twin_range_quantize`, plus an A/D-operation cost of
``ν + NR1`` for samples in the dense range and ``ν + NR2`` for the rest
(paper Eq. 9).  The cycle-accurate reference in :mod:`repro.adc.sar`
reproduces the same values and op counts step by step; the test suite checks
the two agree on every input.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.adc.config import AdcConfig, AdcMode
from repro.adc.counters import ConversionStats
from repro.adc.lut import AdcTransferLut, LutConversionMixin, compact_levels
from repro.core.trq import TRQParams, classify_regions, twin_range_levels, twin_range_quantize


class TwinRangeAdc(LutConversionMixin):
    """Array-oriented twin-range SAR ADC model with statistics tracking."""

    def __init__(self, params: TRQParams) -> None:
        self.params = params
        self.stats = ConversionStats()

    @classmethod
    def from_config(cls, config: AdcConfig) -> "TwinRangeAdc":
        if config.mode is not AdcMode.TWIN_RANGE or config.trq is None:
            raise ValueError("config is not in TWIN_RANGE mode")
        return cls(params=config.trq)

    def convert(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        """Convert an array of bit-line values; returns ``(quantized, ops)``."""
        values = np.asarray(values, dtype=np.float64)
        quantized, in_r1 = twin_range_quantize(values, self.params)
        num_r1 = int(np.count_nonzero(in_r1))
        num_r2 = int(values.size - num_r1)
        detection = values.size * self.params.detection_ops
        search = num_r1 * self.params.n_r1 + num_r2 * self.params.n_r2
        total = detection + search
        self.stats.record(
            conversions=values.size,
            operations=total,
            detection_operations=detection,
            in_r1=num_r1,
            in_r2=num_r2,
        )
        return quantized, total

    @property
    def level_scale(self) -> float:
        """The integer-level step: quantized value = ``delta_r1 · level``."""
        return self.params.delta_r1

    def convert_levels(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        """Convert to integer output levels; returns ``(levels, ops)``.

        Same statistics and operation count as :meth:`convert`; the quantized
        value is exactly ``level_scale · level`` (see
        :func:`repro.core.trq.twin_range_levels`).
        """
        values = np.asarray(values, dtype=np.float64)
        levels, in_r1 = twin_range_levels(values, self.params)
        num_r1 = int(np.count_nonzero(in_r1))
        num_r2 = int(values.size - num_r1)
        detection = values.size * self.params.detection_ops
        total = detection + num_r1 * self.params.n_r1 + num_r2 * self.params.n_r2
        self.stats.record(
            conversions=values.size,
            operations=total,
            detection_operations=detection,
            in_r1=num_r1,
            in_r2=num_r2,
        )
        return levels, total

    def _build_transfer_lut(self, max_value: int) -> AdcTransferLut:
        """Tabulate the twin-range transfer function and per-region op costs."""
        inputs = np.arange(max_value + 1, dtype=np.float64)
        quantized, in_r1 = twin_range_quantize(inputs, self.params)
        levels, _ = twin_range_levels(inputs, self.params)
        search_ops = self.params.ops_for_region(in_r1).astype(np.int64)
        return AdcTransferLut(
            values=quantized,
            ops_per_value=self.params.detection_ops + search_ops,
            levels=compact_levels(levels),
            scale=self.params.delta_r1,
            in_r1=in_r1,
            detection_ops=self.params.detection_ops,
        )

    def region_mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of samples handled by the dense range (no stats)."""
        return classify_regions(np.asarray(values, dtype=np.float64), self.params)

    def reset_stats(self) -> None:
        self.stats.reset()


def build_adc(config: AdcConfig):
    """Instantiate the vectorised ADC model matching ``config``."""
    if config.mode is AdcMode.UNIFORM:
        from repro.adc.uniform import UniformAdc

        return UniformAdc.from_config(config)
    return TwinRangeAdc.from_config(config)
