"""ADC configuration register model.

The paper's hardware stores the per-layer conversion configuration in a small
register file next to the ADC and the shift-and-add module (Section III-D2c):
output bit-widths ``NR1``/``NR2``, step sizes, the non-uniformity degree
``M``, the range offset ``bias`` and the mode (twin-range or plain uniform).
:class:`AdcConfig` is the software mirror of that register file and is what
the calibration search (Algorithm 1) produces for every layer.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.core.trq import TRQParams
from repro.utils.validation import check_in_range, check_integer, check_positive


class AdcMode(str, enum.Enum):
    """Operating mode of the configurable SAR ADC."""

    UNIFORM = "uniform"
    TWIN_RANGE = "twin_range"


@dataclasses.dataclass(frozen=True)
class AdcConfig:
    """Per-layer ADC configuration.

    Attributes
    ----------
    resolution:
        Physical resolution ``RADC`` of the SAR ADC (unchanged by TRQ; 8 in
        the paper's setup).
    mode:
        ``UNIFORM`` (conventional binary search over the full grid) or
        ``TWIN_RANGE`` (the paper's modified search).
    v_grid:
        The minimum voltage step expressed in bit-line level units — i.e. the
        value represented by one LSB of the full-precision grid.  Configured
        per layer by adjusting ``Vref`` or the TIA gain (Section III-D2a).
    uniform_bits:
        Sensing precision used in UNIFORM mode (≤ ``resolution``).
    trq:
        Twin-range parameters used in TWIN_RANGE mode.
    """

    resolution: int = 8
    mode: AdcMode = AdcMode.UNIFORM
    v_grid: float = 1.0
    uniform_bits: Optional[int] = None
    trq: Optional[TRQParams] = None

    def __post_init__(self) -> None:
        check_in_range(check_integer(self.resolution, "resolution"), "resolution", low=1, high=16)
        check_positive(self.v_grid, "v_grid")
        if self.mode == AdcMode.UNIFORM:
            bits = self.uniform_bits if self.uniform_bits is not None else self.resolution
            check_in_range(check_integer(bits, "uniform_bits"), "uniform_bits",
                           low=1, high=self.resolution)
        elif self.mode == AdcMode.TWIN_RANGE:
            if self.trq is None:
                raise ValueError("TWIN_RANGE mode requires trq parameters")
            if max(self.trq.n_r1, self.trq.n_r2) > self.resolution:
                raise ValueError(
                    "sensing precision cannot exceed the ADC resolution: "
                    f"NR1={self.trq.n_r1}, NR2={self.trq.n_r2}, RADC={self.resolution}"
                )
            if self.trq.m > self.resolution - self.trq.n_r2:
                raise ValueError(
                    "non-uniform degree M must satisfy M <= RADC - NR2 "
                    f"(M={self.trq.m}, NR2={self.trq.n_r2}, RADC={self.resolution})"
                )
        else:  # pragma: no cover - enum exhausts the cases
            raise ValueError(f"unknown mode {self.mode!r}")

    # ------------------------------------------------------------------ #
    @property
    def effective_uniform_bits(self) -> int:
        """Sensing precision in UNIFORM mode (defaults to the full resolution)."""
        return self.uniform_bits if self.uniform_bits is not None else self.resolution

    @property
    def full_scale(self) -> float:
        """Largest representable value: ``(2^RADC − 1) · v_grid``."""
        return ((1 << self.resolution) - 1) * self.v_grid

    def with_v_grid(self, v_grid: float) -> "AdcConfig":
        """A copy of this configuration with a different ``v_grid``."""
        return dataclasses.replace(self, v_grid=v_grid)


def uniform_config(resolution: int = 8, bits: Optional[int] = None, v_grid: float = 1.0) -> AdcConfig:
    """Convenience constructor for a conventional uniform SAR configuration."""
    return AdcConfig(resolution=resolution, mode=AdcMode.UNIFORM, v_grid=v_grid, uniform_bits=bits)


def twin_range_config(
    trq: TRQParams, resolution: int = 8, v_grid: float = 1.0
) -> AdcConfig:
    """Convenience constructor for a twin-range configuration."""
    return AdcConfig(resolution=resolution, mode=AdcMode.TWIN_RANGE, v_grid=v_grid, trq=trq)
