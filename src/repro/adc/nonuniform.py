"""Non-uniform-grid ADC baseline (paper Fig. 2b and Section II-D).

A non-uniform (NU) ADC performs the binary search on a customised reference
grid whose levels are denser where the value distribution has more mass.
Compared with the uniform ADC it reaches a similar accuracy at a lower
resolution, but — unlike the paper's TRQ scheme — the number of A/D
operations per conversion is still fixed (``ceil(log2(levels))``) and the
grid requires customising the analog reference ladder, which is exactly the
inflexibility the paper argues against.  It is implemented here as a
comparison baseline for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.adc.counters import ConversionStats
from repro.adc.lut import AdcTransferLut, LutConversionMixin
from repro.utils.numeric import ceil_log2


class NonUniformAdc(LutConversionMixin):
    """ADC quantizing onto an arbitrary monotonically increasing grid."""

    def __init__(self, grid: np.ndarray) -> None:
        grid = np.asarray(grid, dtype=np.float64).ravel()
        if grid.size < 2:
            raise ValueError("grid must contain at least two levels")
        if not np.all(np.diff(grid) > 0):
            raise ValueError("grid levels must be strictly increasing")
        self.grid = grid
        self._midpoints = (grid[:-1] + grid[1:]) / 2.0
        self.bits = max(1, ceil_log2(grid.size))
        self.stats = ConversionStats()

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, num_levels: int, method: str = "lloyd", iterations: int = 30
    ) -> "NonUniformAdc":
        """Build a customised grid from calibration samples.

        ``method="lloyd"`` (default) runs Lloyd-Max iterations (1-D k-means),
        which minimises the MSE of the grid on the calibration distribution —
        the natural objective for the customised reference ladder sketched in
        paper Fig. 2b.  ``method="quantile"`` places levels at evenly spaced
        quantiles instead (equal-population bins).
        """
        samples = np.asarray(samples, dtype=np.float64).ravel()
        if samples.size == 0:
            raise ValueError("cannot build a grid from an empty sample set")
        if num_levels < 2:
            raise ValueError(f"num_levels must be >= 2, got {num_levels}")
        if method not in ("lloyd", "quantile"):
            raise ValueError(f"unknown method {method!r}")

        quantiles = np.linspace(0.0, 1.0, num_levels)
        levels = np.unique(np.quantile(samples, quantiles))
        if method == "lloyd" and levels.size >= 2:
            levels = cls._lloyd_max(samples, levels, num_levels, iterations)
        if levels.size < 2:
            # Degenerate distributions (e.g. all zeros) still need a usable grid.
            levels = np.array([levels[0], levels[0] + 1.0])
        return cls(levels)

    @staticmethod
    def _lloyd_max(
        samples: np.ndarray, initial: np.ndarray, num_levels: int, iterations: int
    ) -> np.ndarray:
        """Lloyd-Max refinement: alternate nearest-level assignment and
        centroid updates until the grid stabilises."""
        levels = np.linspace(samples.min(), samples.max(), num_levels)
        levels[: initial.size] = initial
        levels = np.unique(levels)
        for _ in range(iterations):
            midpoints = (levels[:-1] + levels[1:]) / 2.0
            assignment = np.searchsorted(midpoints, samples, side="right")
            new_levels = levels.copy()
            for idx in range(levels.size):
                members = samples[assignment == idx]
                if members.size:
                    new_levels[idx] = members.mean()
            new_levels = np.unique(new_levels)
            if new_levels.size == levels.size and np.allclose(new_levels, levels, atol=1e-12):
                break
            levels = new_levels
        return levels

    def convert(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        """Quantize values to the nearest grid level; fixed ops per conversion."""
        values = np.asarray(values, dtype=np.float64)
        indices = np.searchsorted(self._midpoints, values, side="right")
        quantized = self.grid[indices]
        ops = values.size * self.bits
        self.stats.record(conversions=values.size, operations=ops)
        return quantized, ops

    def _build_transfer_lut(self, max_value: int) -> AdcTransferLut:
        """Tabulate the nearest-grid-level mapping for integer inputs."""
        levels = np.arange(max_value + 1, dtype=np.float64)
        indices = np.searchsorted(self._midpoints, levels, side="right")
        return AdcTransferLut(
            values=self.grid[indices],
            ops_per_value=np.full(max_value + 1, self.bits, dtype=np.int64),
        )

    def reset_stats(self) -> None:
        self.stats.reset()
