"""ADC energy model (paper Eq. 2-6).

The SAR architecture makes energy essentially proportional to the number of
A/D *operations* (comparator + capacitive-DAC switching steps), which is the
quantity the paper's TRQ scheme reduces.  The constants default to values
representative of the 8-bit SAR ADC the paper references [20]; they can be
overridden, and everything downstream (Fig. 6c, Fig. 7) is reported
relatively so the conclusions do not hinge on the absolute numbers.
"""

from __future__ import annotations

import dataclasses

from repro.adc.counters import ConversionStats
from repro.utils.validation import check_in_range, check_integer, check_positive


def ideal_adc_resolution(crossbar_size: int, dac_bits: int = 1, cell_bits: int = 1) -> int:
    """Paper Eq. 2: minimum lossless ADC resolution for a crossbar MVM.

    ``RADC,ideal = log2(S) + RDA + Rcell + δ`` with ``δ = −1`` when both the
    DAC and the cell are single-bit (the common architecture-level setting,
    giving ``log2(S) + 1``), else ``δ = 0``.
    """
    import math

    check_in_range(check_integer(crossbar_size, "crossbar_size"), "crossbar_size", low=2)
    check_in_range(check_integer(dac_bits, "dac_bits"), "dac_bits", low=1)
    check_in_range(check_integer(cell_bits, "cell_bits"), "cell_bits", low=1)
    delta = -1 if (dac_bits == 1 and cell_bits == 1) else 0
    return int(math.ceil(math.log2(crossbar_size))) + dac_bits + cell_bits + delta


def conversions_per_mvm(
    crossbar_size: int,
    in_features: int,
    out_features: int,
    weight_bits: int = 8,
    activation_bits: int = 8,
    cell_bits: int = 1,
    dac_bits: int = 1,
    differential: bool = True,
) -> int:
    """Number of A/D conversions needed for one MVM (paper Eq. 3's middle term).

    Every (input cycle, weight plane, row segment, output column, sign)
    combination requires one conversion: ``Kw/Rcell × Ki/RDA`` per bit line,
    times the segments and the differential pair.
    """
    segments = -(-in_features // crossbar_size)
    weight_planes = -(-(weight_bits - (1 if differential else 0)) // cell_bits)
    input_cycles = -(-activation_bits // dac_bits)
    signs = 2 if differential else 1
    return input_cycles * weight_planes * segments * signs * out_features


@dataclasses.dataclass(frozen=True)
class AdcEnergyParams:
    """Energy constants of the SAR ADC.

    Attributes
    ----------
    energy_per_operation:
        ``eop`` in joules — energy of one comparator + DAC-settling step.
        Default 0.25 pJ, i.e. a 2 pJ 8-bit conversion, representative of the
        referenced 8-bit SAR design [20] at the paper's 100 MHz system clock.
    static_power:
        Converter static/leakage power in watts (added on a time basis by the
        architecture model, not per operation).
    """

    energy_per_operation: float = 0.25e-12
    static_power: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.energy_per_operation, "energy_per_operation")
        check_in_range(self.static_power, "static_power", low=0.0)

    # ------------------------------------------------------------------ #
    def conversion_energy(self, operations: int) -> float:
        """Paper Eq. 6: ``Econvert = eop · N_A/D_ops``."""
        if operations < 0:
            raise ValueError(f"operations must be non-negative, got {operations}")
        return self.energy_per_operation * operations

    def energy_from_stats(self, stats: ConversionStats) -> float:
        """Total dynamic conversion energy for accumulated statistics."""
        return self.conversion_energy(stats.operations)

    def total_inference_energy(
        self,
        mvms_per_inference: int,
        conversions_per_mvm_count: int,
        ops_per_conversion: float,
    ) -> float:
        """Paper Eq. 3-4: ``E_ADC,tot = #MVMs × #conversions/MVM × Econvert``."""
        if mvms_per_inference < 0 or conversions_per_mvm_count < 0:
            raise ValueError("counts must be non-negative")
        return (
            mvms_per_inference
            * conversions_per_mvm_count
            * self.conversion_energy(1)
            * ops_per_conversion
        )


DEFAULT_ADC_ENERGY = AdcEnergyParams()
