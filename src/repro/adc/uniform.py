"""Vectorised uniform SAR ADC model (the conventional baseline).

This is the throughput-oriented counterpart of the cycle-accurate
:class:`repro.adc.sar.SarAdc`: it converts whole arrays of bit-line values at
once using the closed-form transfer function of a K-step binary search
(``code = round_half_up(v / Δ)`` clamped to the code range, ``K`` A/D
operations per conversion) and accumulates :class:`ConversionStats`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.adc.config import AdcConfig, AdcMode, uniform_config
from repro.adc.counters import ConversionStats
from repro.adc.lut import AdcTransferLut, LutConversionMixin, compact_levels
from repro.utils.numeric import round_half_up


class UniformAdc(LutConversionMixin):
    """Uniform SAR ADC converting arrays of values.

    Parameters
    ----------
    bits:
        Sensing precision (number of binary-search steps per conversion).
    delta:
        LSB size in bit-line level units.
    """

    def __init__(self, bits: int, delta: float) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.bits = int(bits)
        self.delta = float(delta)
        self.stats = ConversionStats()

    @classmethod
    def from_config(cls, config: AdcConfig) -> "UniformAdc":
        """Build from an :class:`AdcConfig` in UNIFORM mode.

        A ``k``-bit sensing precision on an ``RADC``-bit converter keeps the
        full-scale range and enlarges the LSB to ``2^(RADC − k) · v_grid`` —
        the binary search simply stops ``RADC − k`` steps early.
        """
        if config.mode is not AdcMode.UNIFORM:
            raise ValueError("config is not in UNIFORM mode")
        bits = config.effective_uniform_bits
        delta = config.v_grid * (1 << (config.resolution - bits))
        return cls(bits=bits, delta=delta)

    @property
    def max_code(self) -> int:
        return (1 << self.bits) - 1

    @property
    def full_scale(self) -> float:
        """Largest representable value."""
        return self.max_code * self.delta

    def convert(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        """Convert an array of values; returns ``(quantized, total_ops)``."""
        values = np.asarray(values, dtype=np.float64)
        codes = np.clip(round_half_up(values / self.delta), 0, self.max_code)
        quantized = codes * self.delta
        ops = values.size * self.bits
        self.stats.record(conversions=values.size, operations=ops)
        return quantized, ops

    @property
    def level_scale(self) -> float:
        """The integer-level step: quantized value = ``delta · level``."""
        return self.delta

    def convert_levels(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        """Convert to integer output levels (codes); returns ``(levels, ops)``.

        Same statistics and operation count as :meth:`convert`; the quantized
        value is exactly ``level_scale · level``.  Levels are returned as
        float64 holding exact integers, ready for exact shift-and-add merging.
        """
        values = np.asarray(values, dtype=np.float64)
        codes = np.clip(round_half_up(values / self.delta), 0, self.max_code)
        ops = values.size * self.bits
        self.stats.record(conversions=values.size, operations=ops)
        return codes, ops

    def _build_transfer_lut(self, max_value: int) -> AdcTransferLut:
        """Tabulate the K-step binary-search transfer function (integer inputs)."""
        inputs = np.arange(max_value + 1, dtype=np.float64)
        codes = np.clip(round_half_up(inputs / self.delta), 0, self.max_code)
        return AdcTransferLut(
            values=codes * self.delta,
            ops_per_value=np.full(max_value + 1, self.bits, dtype=np.int64),
            levels=compact_levels(codes),
            scale=self.delta,
        )

    def reset_stats(self) -> None:
        self.stats.reset()


def ideal_adc_for_resolution(resolution: int, v_grid: float = 1.0) -> UniformAdc:
    """Full-resolution uniform ADC (the paper's 8-op/conversion baseline)."""
    return UniformAdc.from_config(uniform_config(resolution=resolution, v_grid=v_grid))
