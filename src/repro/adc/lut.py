"""Integer-domain lookup-table (LUT) conversion for the vectorised ADCs.

The bit-line values entering an ADC in this simulator are *exact non-negative
integers*: with ``Rcell``-bit cells and ``RDA``-bit DACs every partial sum is
bounded by ``segment_rows · (2^RDA − 1) · (2^Rcell − 1)`` (≤ 128 in the
default 128×128 / 1-bit topology).  An ADC's transfer function — quantized
output, A/D-operation cost and (for twin-range converters) the region a
sample lands in — can therefore be tabulated *once* per layer over
``0 … max_value`` and applied to whole batches with a single integer gather,
replacing the per-element float round/clip/compare arithmetic of
``convert``.  Region and conversion totals come from ``np.bincount`` on the
same integer codes, so the statistics are exact, not re-derived from floats.

Two tabulations are kept side by side:

* ``values`` — the float quantized outputs, produced by the very same float
  expressions the element-wise ``convert`` path evaluates, so
  :meth:`LutConversionMixin.convert_codes` is bit-identical to ``convert`` on
  integer inputs.
* ``levels`` — the *integer output levels* ``k`` of the converter, with a
  single scalar ``scale`` giving the decoded value ``scale · k`` (``Δ`` for
  a uniform ADC, ``ΔR1`` for a twin-range ADC; the twin-range level is
  ``bias·2^NR1 + code`` in R1 and ``code·2^M`` in R2).  Because levels are
  small integers, the crossbar engines can shift-and-add merge them
  *exactly* in any order (every partial sum stays far below ``2^53``) and
  apply ``scale`` once per output — this is what makes the fused kernel in
  :mod:`repro.crossbar.mapping` bit-identical to the reference loop.  Note
  that ``scale · k`` associates the float multiplications differently from
  the element-wise reconstruction in ``values``, so the two may differ by
  ≤ 1 ulp for non-power-of-two steps; both engines use the *level*
  semantics in the MVM datapath, so the difference never appears between
  engines.  Converters without a uniform level grid (e.g. the non-uniform
  baseline) publish ``levels=None`` and take the element-wise fallback path.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np


def compact_levels(levels: np.ndarray) -> np.ndarray:
    """Store exact integer levels in the smallest sufficient unsigned dtype.

    Smaller gather outputs keep the fast engine's merge input cache-resident;
    the merge itself up-casts to float64 (exactly) while accumulating.
    """
    max_level = int(levels.max(initial=0))
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_level <= np.iinfo(dtype).max:
            return levels.astype(dtype)
    return levels.astype(np.int64)


@dataclasses.dataclass(frozen=True)
class AdcTransferLut:
    """Tabulated transfer function of one ADC over ``0 … max_value``.

    Attributes
    ----------
    values:
        ``(max_value + 1,)`` float64 quantized output for every integer input
        (bit-identical to the element-wise ``convert``).
    ops_per_value:
        ``(max_value + 1,)`` int64 total A/D operations charged for converting
        the corresponding input (detection phase included).
    levels:
        Optional ``(max_value + 1,)`` unsigned-integer output levels ``k``
        whose decoded value is ``scale · k`` (within 1 ulp of ``values``;
        see the module docstring); ``None`` for converters without a
        uniform level grid.
    scale:
        The level step (``Δ`` / ``ΔR1``); 1.0 when ``levels`` is ``None``.
    in_r1:
        Optional ``(max_value + 1,)`` boolean mask — True where the input is
        resolved in the dense range R1 (twin-range converters only).
    detection_ops:
        Detection-phase operations per conversion (``ν`` of paper Eq. 9);
        zero for single-range converters.
    """

    values: np.ndarray
    ops_per_value: np.ndarray
    levels: Optional[np.ndarray] = None
    scale: float = 1.0
    in_r1: Optional[np.ndarray] = None
    detection_ops: int = 0

    @property
    def max_value(self) -> int:
        return self.values.size - 1


def compose_transfer_lut(lut: AdcTransferLut, value_map: np.ndarray) -> AdcTransferLut:
    """Fold an integer value→value perturbation into a transfer LUT.

    ``value_map[v]`` is the perturbed bit-line value an ideal input ``v``
    actually presents to the converter (e.g. retention drift re-quantized to
    the level grid, see :mod:`repro.nonideal`).  The composed LUT indexed by
    the *ideal* value produces exactly what converting the perturbed value
    through ``lut`` would — output, operation cost, region decision — so the
    fast engine applies discrete non-idealities at zero per-element cost
    while the reference engine perturbs each block explicitly; the two stay
    bit-identical because ``value_map`` equals the model's ``perturb`` on
    every integer.
    """
    value_map = np.asarray(value_map, dtype=np.int64)
    if value_map.size and (
        value_map.min() < 0 or value_map.max() > lut.max_value
    ):
        raise ValueError(
            f"value_map range [{value_map.min()}, {value_map.max()}] exceeds "
            f"the LUT domain [0, {lut.max_value}]"
        )
    return AdcTransferLut(
        values=lut.values[value_map],
        ops_per_value=lut.ops_per_value[value_map],
        levels=None if lut.levels is None else lut.levels[value_map],
        scale=lut.scale,
        in_r1=None if lut.in_r1 is None else lut.in_r1[value_map],
        detection_ops=lut.detection_ops,
    )


#: Elements per gather tile; sized so a tile's integer codes and gathered
#: levels stay cache-resident (shared with the fused crossbar kernel).
GATHER_TILE = 1 << 18


def gather_levels(
    lut: AdcTransferLut,
    flat_values: np.ndarray,
    counts: np.ndarray,
    out_levels: np.ndarray,
    tile: int = GATHER_TILE,
) -> None:
    """Tiled integer-LUT gather with an exact code histogram, in place.

    ``flat_values`` holds exact integer bit-line values (any float/int
    dtype); the corresponding output *levels* are gathered into
    ``out_levels`` and the per-value histogram is accumulated into
    ``counts`` (shape ``(lut.max_value + 1,)``), from which
    :meth:`LutConversionMixin.record_code_counts` later derives exact
    operation/region totals.  This is the conversion core of the fused
    crossbar kernel — including its batched Monte Carlo variant, where one
    call per trial applies that trial's (differently-sized) composed LUT.
    Raises ``ValueError`` when a value exceeds the LUT bound.

    The array primitives route through the active :mod:`repro.backend`
    array-ops shim; under the default numpy backend they are the exact
    ``np.bincount``/``np.take`` calls this helper replaced.
    """
    from repro.backend import active_ops  # lazy: keep adc import-light

    ops = active_ops()
    size = flat_values.size
    for start in range(0, size, tile):
        stop = min(start + tile, size)
        codes = flat_values[start:stop].astype(np.int64)
        tile_counts = ops.bincount(codes, minlength=counts.size)
        if tile_counts.size > counts.size:
            raise ValueError(
                f"bit-line value {int(codes.max())} exceeds the LUT bound "
                f"{lut.max_value}"
            )
        counts += tile_counts
        ops.take(lut.levels, codes, out=out_levels[start:stop])


class TrialLutGather:
    """One gather/histogram pass over several trials' (different) LUTs.

    The batched Monte Carlo kernel carries ``trials`` sibling LUTs whose
    sizes differ (each trial's perturbed bit-line bound is seed-dependent).
    Rather than gathering per trial, the level tables are concatenated into
    one combined table and every trial's integer codes are shifted by its
    table offset — so a *single* ``take`` and a *single* ``bincount`` cover
    the whole trial batch, and slicing the combined histogram at the offsets
    recovers each trial's exact per-value counts.  Results are bit-identical
    to per-trial :func:`gather_levels` calls by construction: offsetting
    indexes the very same table entries, and histogram slices partition the
    same codes.
    """

    def __init__(self, luts) -> None:
        self.luts = list(luts)
        sizes = [lut.levels.size for lut in self.luts]
        self.sizes = sizes
        self.offsets = np.concatenate(
            [[0], np.cumsum(sizes[:-1], dtype=np.int64)]
        ).astype(np.int64)
        self.total_size = int(sum(sizes))
        common = np.result_type(*[lut.levels.dtype for lut in self.luts])
        self.levels = np.concatenate(
            [np.asarray(lut.levels, dtype=common) for lut in self.luts]
        )
        self._max_values = np.array(
            [lut.max_value for lut in self.luts], dtype=np.int64
        )
        # Combined per-value cost/region tables for the vectorised trials
        # statistics pass (:meth:`record_trials`): segment sums over the
        # combined histogram replace one Python-level ``record_code_counts``
        # call per trial.  Integer arithmetic throughout, so the totals are
        # exactly the per-trial ones.
        self._ops_per_value = np.concatenate(
            [lut.ops_per_value for lut in self.luts]
        ).astype(np.int64)
        if all(lut.in_r1 is not None for lut in self.luts):
            self._in_r1 = np.concatenate(
                [lut.in_r1 for lut in self.luts]
            ).astype(np.int64)
        else:
            self._in_r1 = None

    def record_trials(self, counts, adcs) -> list:
        """Record every trial's conversion statistics from the histogram.

        Equivalent to calling ``adcs[t].record_code_counts`` with each
        trial's histogram slice, but the per-trial reductions run as three
        ``np.add.reduceat`` segment sums over the combined histogram — all
        integer, hence bit-exact — leaving only the constant-time counter
        updates in Python.  Returns the per-trial A/D-operation totals.
        """
        if self._in_r1 is None:
            return [
                adc.record_code_counts(self.trial_counts(counts, t), lut)
                for t, (adc, lut) in enumerate(zip(adcs, self.luts))
            ]
        conversions = np.add.reduceat(counts, self.offsets)
        total_ops = np.add.reduceat(counts * self._ops_per_value, self.offsets)
        num_r1 = np.add.reduceat(counts * self._in_r1, self.offsets)
        for t, (adc, lut) in enumerate(zip(adcs, self.luts)):
            adc.stats.record(
                conversions=int(conversions[t]),
                operations=int(total_ops[t]),
                detection_operations=int(conversions[t]) * lut.detection_ops,
                in_r1=int(num_r1[t]),
                in_r2=int(conversions[t] - num_r1[t]),
            )
        return [int(ops) for ops in total_ops]

    def new_counts(self) -> np.ndarray:
        """A zeroed combined histogram to accumulate across gathers."""
        return np.zeros(self.total_size, dtype=np.int64)

    def trial_counts(self, counts: np.ndarray, trial: int) -> np.ndarray:
        """Trial ``trial``'s slice of a combined histogram."""
        start = int(self.offsets[trial])
        return counts[start : start + self.sizes[trial]]

    def gather(
        self,
        values: np.ndarray,
        counts: np.ndarray,
        out_levels: np.ndarray,
        tile: int = GATHER_TILE,
    ) -> None:
        """Gather all trials' levels and accumulate the combined histogram.

        ``values`` holds exact integer bit-line values with the trial axis
        leading (``(trials, …)``); ``out_levels`` has the same shape (dtype
        of the combined table) and ``counts`` is ``(total_size,)``.
        """
        from repro.backend import active_ops  # lazy: keep adc import-light

        ops = active_ops()
        trials = values.shape[0]
        flat_per_trial = values.reshape(trials, -1)
        if flat_per_trial.shape[1]:
            maxes = flat_per_trial.max(axis=1).astype(np.int64)
            bad = np.nonzero(maxes > self._max_values)[0]
            if bad.size:
                trial = int(bad[0])
                raise ValueError(
                    f"bit-line value {int(maxes[trial])} exceeds the LUT "
                    f"bound {self.luts[trial].max_value}"
                )
        codes = flat_per_trial.astype(np.int64)
        codes += self.offsets[:, None]
        flat_codes = codes.reshape(-1)
        flat_levels = out_levels.reshape(-1)
        for start in range(0, flat_codes.size, tile):
            stop = min(start + tile, flat_codes.size)
            tile_codes = flat_codes[start:stop]
            counts += ops.bincount(tile_codes, minlength=self.total_size)
            ops.take(self.levels, tile_codes, out=flat_levels[start:stop])


class LutConversionMixin:
    """Adds cached integer-code conversion to a vectorised ADC model.

    Subclasses implement :meth:`_build_transfer_lut`; the mixin provides
    :meth:`transfer_lut` (cached per ``max_value``), :meth:`convert_codes`
    (the integer-domain twin of ``convert``) and :meth:`record_code_counts`
    (exact statistics from a code histogram, used by the fused engine).
    """

    _lut_cache: Optional[Dict[int, AdcTransferLut]] = None

    def _build_transfer_lut(self, max_value: int) -> AdcTransferLut:
        raise NotImplementedError

    def transfer_lut(self, max_value: int) -> AdcTransferLut:
        """The tabulated transfer function covering inputs ``0 … max_value``."""
        if max_value < 0:
            raise ValueError(f"max_value must be non-negative, got {max_value}")
        if self._lut_cache is None:
            self._lut_cache = {}
        lut = self._lut_cache.get(max_value)
        if lut is None:
            lut = self._build_transfer_lut(int(max_value))
            self._lut_cache[max_value] = lut
        return lut

    def convert_codes(self, codes: np.ndarray, max_value: int) -> Tuple[np.ndarray, int]:
        """Convert an array of exact integer bit-line values via the LUT.

        Bit-identical to ``convert(codes.astype(float))`` — same quantized
        values, same total operation count, same statistics — but executed as
        one gather plus one ``bincount`` instead of per-element float math.
        """
        lut = self.transfer_lut(max_value)
        codes = np.asarray(codes)
        counts = np.bincount(codes.ravel(), minlength=lut.values.size)
        if counts.size > lut.values.size:
            raise ValueError(
                f"bit-line value {int(codes.max())} exceeds the LUT bound {lut.max_value}"
            )
        total_ops = self.record_code_counts(counts, lut)
        return lut.values[codes], total_ops

    def record_code_counts(self, counts: np.ndarray, lut: AdcTransferLut) -> int:
        """Record statistics for a histogram of converted codes.

        ``counts[v]`` is how many conversions saw bit-line value ``v``.  The
        operation, detection and region totals derived from the histogram are
        exactly those the element-wise ``convert`` would have accumulated.
        Returns the total A/D-operation count.
        """
        conversions = int(counts.sum())
        total_ops = int(counts @ lut.ops_per_value)
        if lut.in_r1 is not None:
            num_r1 = int(counts[lut.in_r1].sum())
            self.stats.record(
                conversions=conversions,
                operations=total_ops,
                detection_operations=conversions * lut.detection_ops,
                in_r1=num_r1,
                in_r2=conversions - num_r1,
            )
        else:
            self.stats.record(conversions=conversions, operations=total_ops)
        return total_ops
