"""Cycle-accurate SAR ADC models.

These classes simulate the successive-approximation search step by step —
DAC threshold, comparator decision, register update — exactly as described in
paper Section II-D (conventional binary search) and Section III-D2a (the
twin-range search with its extra detection phase, "early bird" path in R1 and
"early stopping" path in R2).

They are intentionally scalar and slow: their job is to *define* the
behaviour (number of A/D operations and produced code for any input voltage)
so that the vectorised models in :mod:`repro.adc.uniform` and
:mod:`repro.adc.trq` — which the simulator uses for throughput — can be
verified against them step by step in the test suite.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.adc.config import AdcConfig, AdcMode
from repro.core.trq import TRQParams


@dataclasses.dataclass
class ConversionTrace:
    """Record of one A/D conversion for inspection and verification."""

    input_value: float
    output_value: float
    output_code: int
    operations: int
    detection_operations: int
    in_r1: Optional[bool]
    thresholds: List[float]
    decisions: List[bool]


class SarAdc:
    """Conventional uniform SAR ADC performing a K-step binary search.

    The DAC grid has ``2^bits`` levels spaced ``delta`` apart starting at
    zero; thresholds sit halfway between adjacent levels, so the produced
    code equals ``round(v / delta)`` clamped to the code range — the behaviour
    the vectorised :class:`repro.adc.uniform.UniformAdc` must reproduce.
    """

    def __init__(self, bits: int, delta: float) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.bits = int(bits)
        self.delta = float(delta)

    def convert(self, value: float) -> ConversionTrace:
        """Run the binary search for a single held voltage."""
        value = float(value)
        code = 0
        thresholds: List[float] = []
        decisions: List[bool] = []
        # MSB-first successive approximation: try each bit with "1", keep it
        # if the DAC threshold is below the input.
        for k in reversed(range(self.bits)):
            trial = code | (1 << k)
            threshold = (trial - 0.5) * self.delta
            decision = value >= threshold
            thresholds.append(threshold)
            decisions.append(bool(decision))
            if decision:
                code = trial
        return ConversionTrace(
            input_value=value,
            output_value=code * self.delta,
            output_code=code,
            operations=self.bits,
            detection_operations=0,
            in_r1=None,
            thresholds=thresholds,
            decisions=decisions,
        )


class TwinRangeSarAdc:
    """Cycle-accurate SAR ADC with the paper's twin-range control logic.

    The conversion proceeds in two phases:

    1. **Detection phase** — one comparison against the upper edge of R1 (two
       when R1 is offset away from zero, because the lower edge must be
       checked as well).  This is the ``ν`` overhead of paper Eq. 9.
    2. **Binary search** — an ``NR1``-step search on the dense ``ΔR1`` grid
       when the sample lies in R1 ("early bird"), otherwise an ``NR2``-step
       search on the coarse ``ΔR2`` grid ("early stopping": the search stops
       after ``NR2`` steps even though the code is not fully resolved at the
       original resolution).
    """

    def __init__(self, params: TRQParams) -> None:
        self.params = params

    def _binary_search(
        self, value: float, bits: int, delta: float, origin: float
    ) -> Tuple[int, List[float], List[bool]]:
        code = 0
        thresholds: List[float] = []
        decisions: List[bool] = []
        for k in reversed(range(bits)):
            trial = code | (1 << k)
            threshold = origin + (trial - 0.5) * delta
            decision = value >= threshold
            thresholds.append(threshold)
            decisions.append(bool(decision))
            if decision:
                code = trial
        return code, thresholds, decisions

    def convert(self, value: float) -> ConversionTrace:
        value = float(value)
        params = self.params
        thresholds: List[float] = []
        decisions: List[bool] = []

        # Detection phase.
        upper = params.r1_high
        below_upper = value < upper
        thresholds.append(upper)
        decisions.append(bool(below_upper))
        detection_ops = 1
        in_r1 = below_upper
        if params.bias > 0:
            lower = params.r1_low
            above_lower = value >= lower
            thresholds.append(lower)
            decisions.append(bool(above_lower))
            detection_ops = 2
            in_r1 = below_upper and above_lower

        if in_r1:
            code, search_thresholds, search_decisions = self._binary_search(
                value, params.n_r1, params.delta_r1, params.r1_low
            )
            output = params.r1_low + code * params.delta_r1
            search_ops = params.n_r1
            payload_bits = max(params.n_r1, params.n_r2)
            full_code = code  # MSB (range bit) = 0
        else:
            code, search_thresholds, search_decisions = self._binary_search(
                value, params.n_r2, params.delta_r2, 0.0
            )
            output = code * params.delta_r2
            search_ops = params.n_r2
            payload_bits = max(params.n_r1, params.n_r2)
            full_code = (1 << payload_bits) | code

        thresholds.extend(search_thresholds)
        decisions.extend(search_decisions)
        return ConversionTrace(
            input_value=value,
            output_value=output,
            output_code=full_code,
            operations=detection_ops + search_ops,
            detection_operations=detection_ops,
            in_r1=bool(in_r1),
            thresholds=thresholds,
            decisions=decisions,
        )


def build_cycle_accurate_adc(config: AdcConfig):
    """Instantiate the cycle-accurate model matching an :class:`AdcConfig`."""
    if config.mode == AdcMode.UNIFORM:
        delta = config.v_grid * (1 << (config.resolution - config.effective_uniform_bits))
        return SarAdc(bits=config.effective_uniform_bits, delta=delta)
    assert config.trq is not None
    return TwinRangeSarAdc(params=config.trq)
