"""SAR ADC substrate: uniform / non-uniform / twin-range converters.

The cycle-accurate models (:mod:`repro.adc.sar`) define the behaviour; the
vectorised models (:mod:`repro.adc.uniform`, :mod:`repro.adc.trq`) are the
ones the simulator uses for throughput and are tested to agree with the
cycle-accurate reference.  Energy accounting follows paper Eq. 2-6.
"""

from repro.adc.config import AdcConfig, AdcMode, twin_range_config, uniform_config
from repro.adc.counters import ConversionStats
from repro.adc.energy import (
    DEFAULT_ADC_ENERGY,
    AdcEnergyParams,
    conversions_per_mvm,
    ideal_adc_resolution,
)
from repro.adc.lut import AdcTransferLut, LutConversionMixin
from repro.adc.nonuniform import NonUniformAdc
from repro.adc.sar import ConversionTrace, SarAdc, TwinRangeSarAdc, build_cycle_accurate_adc
from repro.adc.trq import TwinRangeAdc, build_adc
from repro.adc.uniform import UniformAdc, ideal_adc_for_resolution

__all__ = [
    "AdcConfig",
    "AdcEnergyParams",
    "AdcMode",
    "AdcTransferLut",
    "LutConversionMixin",
    "ConversionStats",
    "ConversionTrace",
    "DEFAULT_ADC_ENERGY",
    "NonUniformAdc",
    "SarAdc",
    "TwinRangeAdc",
    "TwinRangeSarAdc",
    "UniformAdc",
    "build_adc",
    "build_cycle_accurate_adc",
    "conversions_per_mvm",
    "ideal_adc_for_resolution",
    "ideal_adc_resolution",
    "twin_range_config",
    "uniform_config",
]
