"""Conversion statistics accumulated by the ADC models.

The evaluation needs, per layer and per network, the total number of A/D
conversions and A/D operations (paper Fig. 6c reports the *remaining*
fraction of operations relative to the 8-op/conversion baseline) plus how
many samples landed in each twin range.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class ConversionStats:
    """Running counters over all conversions performed by one ADC instance."""

    conversions: int = 0
    operations: int = 0
    detection_operations: int = 0
    in_r1: int = 0
    in_r2: int = 0

    def record(
        self,
        conversions: int,
        operations: int,
        detection_operations: int = 0,
        in_r1: int = 0,
        in_r2: int = 0,
    ) -> None:
        """Accumulate one batch of conversions."""
        self.conversions += int(conversions)
        self.operations += int(operations)
        self.detection_operations += int(detection_operations)
        self.in_r1 += int(in_r1)
        self.in_r2 += int(in_r2)

    def merge(self, other: "ConversionStats") -> None:
        """Fold another counter into this one (used to aggregate layers)."""
        self.conversions += other.conversions
        self.operations += other.operations
        self.detection_operations += other.detection_operations
        self.in_r1 += other.in_r1
        self.in_r2 += other.in_r2

    def reset(self) -> None:
        self.conversions = 0
        self.operations = 0
        self.detection_operations = 0
        self.in_r1 = 0
        self.in_r2 = 0

    # ------------------------------------------------------------------ #
    @property
    def mean_ops_per_conversion(self) -> float:
        """Average A/D operations per conversion (including detection)."""
        if self.conversions == 0:
            return 0.0
        return self.operations / self.conversions

    @property
    def r1_fraction(self) -> float:
        """Fraction of conversions resolved inside the dense range R1."""
        total = self.in_r1 + self.in_r2
        return self.in_r1 / total if total else 0.0

    def remaining_fraction(self, baseline_ops_per_conversion: int) -> float:
        """Operations relative to a fixed-resolution baseline (paper Fig. 6c)."""
        if self.conversions == 0:
            return 0.0
        baseline = self.conversions * baseline_ops_per_conversion
        return self.operations / baseline if baseline else 0.0
