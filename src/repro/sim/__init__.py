"""End-to-end PIM simulation (the reproduction's DNN+NeuroSim substitute)."""

from repro.sim.capture import DistributionCollector, ReservoirSampler
from repro.sim.fidelity import GaussianReadNoise, NoNoise, ProportionalConductanceNoise
from repro.sim.pim_layer import PimBackend
from repro.sim.simulator import PimSimulator
from repro.sim.stats import LayerSimStats, SimulationResult

__all__ = [
    "DistributionCollector",
    "GaussianReadNoise",
    "LayerSimStats",
    "NoNoise",
    "PimBackend",
    "PimSimulator",
    "ProportionalConductanceNoise",
    "ReservoirSampler",
    "SimulationResult",
]
