"""End-to-end PIM simulation (the reproduction's DNN+NeuroSim substitute)."""

from repro.sim.capture import DistributionCollector, ReservoirSampler
from repro.sim.fidelity import GaussianReadNoise, NoNoise, ProportionalConductanceNoise
from repro.sim.pim_layer import (
    MAX_CHUNK_SIZE,
    MIN_CHUNK_SIZE,
    PimBackend,
    throughput_chunk_size,
)
from repro.sim.simulator import PimSimulator
from repro.sim.stats import (
    LayerRobustnessStats,
    LayerSimStats,
    MonteCarloResult,
    SimulationResult,
)

__all__ = [
    "DistributionCollector",
    "GaussianReadNoise",
    "LayerRobustnessStats",
    "LayerSimStats",
    "MAX_CHUNK_SIZE",
    "MIN_CHUNK_SIZE",
    "MonteCarloResult",
    "NoNoise",
    "PimBackend",
    "throughput_chunk_size",
    "PimSimulator",
    "ProportionalConductanceNoise",
    "ReservoirSampler",
    "SimulationResult",
]
