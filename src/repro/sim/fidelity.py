"""Optional analog non-ideality injection for the PIM datapath.

The paper's evaluation assumes an ideal analog front end (all accuracy loss
comes from ADC quantization), but reviewers of ReRAM work routinely ask how
robust a scheme is to analog noise.  The simulator therefore accepts a noise
model applied to the raw bit-line values *before* A/D conversion; the default
is no noise.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Protocol

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_in_range


class NoiseModel(Protocol):
    """Anything that perturbs an array of bit-line values."""

    def apply(self, values: np.ndarray) -> np.ndarray:
        ...  # pragma: no cover - protocol definition


@dataclasses.dataclass
class NoNoise:
    """The default, ideal front end."""

    def apply(self, values: np.ndarray) -> np.ndarray:
        return values


class GaussianReadNoise:
    """Additive Gaussian noise on bit-line values (in level units).

    ``sigma_levels`` is the standard deviation expressed in full-precision
    LSBs; 0.5 roughly corresponds to thermal/readout noise of half an LSB.
    """

    def __init__(self, sigma_levels: float, seed: SeedLike = None) -> None:
        check_in_range(sigma_levels, "sigma_levels", low=0.0)
        self.sigma_levels = float(sigma_levels)
        self._rng = new_rng(seed)

    def apply(self, values: np.ndarray) -> np.ndarray:
        if self.sigma_levels == 0.0:
            return values
        noise = self._rng.normal(0.0, self.sigma_levels, size=values.shape)
        # Bit-line values are physically non-negative.
        return np.maximum(values + noise, 0.0)


class ProportionalConductanceNoise:
    """Multiplicative noise modelling cell-conductance variation.

    Each bit-line value is scaled by ``1 + ε`` with ``ε ~ N(0, sigma)``; this
    approximates the aggregate effect of per-cell programming variation on
    the summed current without simulating each cell.
    """

    def __init__(self, sigma: float, seed: SeedLike = None) -> None:
        check_in_range(sigma, "sigma", low=0.0)
        self.sigma = float(sigma)
        self._rng = new_rng(seed)

    def apply(self, values: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return values
        factor = 1.0 + self._rng.normal(0.0, self.sigma, size=values.shape)
        return np.maximum(values * factor, 0.0)
