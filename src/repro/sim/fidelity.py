"""Deprecated analog-noise shims (superseded by :mod:`repro.nonideal`).

This module used to hold the simulator's two ad-hoc noise models.  They kept
a shared mutable RNG, so the fast and reference engines — which traverse
bit-line blocks in different orders — consumed the stream differently and
noisy runs agreed only statistically.  The classes below are retained as
thin shims over the counter-based keyed models in :mod:`repro.nonideal`
(construction emits a :class:`DeprecationWarning`): they keep the old
constructor signatures and the old one-shot ``apply(values)`` behaviour, but
passing them to the simulator now routes through the keyed subsystem, so
noisy runs are **bit-identical** across engines.

New code should use :mod:`repro.nonideal` directly::

    from repro.nonideal import GaussianReadNoise, NonIdealityStack
    stack = NonIdealityStack([GaussianReadNoise(sigma=0.5)], seed=0)
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.nonideal import models as _models
from repro.utils.rng import SeedLike
from repro.utils.warnings import warn_once

__all__ = ["GaussianReadNoise", "NoNoise", "NoiseModel", "ProportionalConductanceNoise"]


class NoiseModel(Protocol):
    """Anything that perturbs an array of bit-line values (legacy protocol)."""

    def apply(self, values: np.ndarray) -> np.ndarray:
        ...  # pragma: no cover - protocol definition


def _warn(old: str, new: str, note: str = "") -> None:
    # Once per process: a parallel sweep constructs these shims per job per
    # worker, and repeating the identical deprecation floods the logs.
    warn_once(
        ("sim.fidelity", old),
        f"repro.sim.fidelity.{old} is deprecated; use repro.nonideal.{new} "
        f"(composable via NonIdealityStack, bit-identical across engines){note}",
        DeprecationWarning,
        stacklevel=3,
    )


def _as_seed(seed: SeedLike) -> int:
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    return 0 if seed is None else int(seed)


class NoNoise:
    """The default, ideal front end (identity; kept for API compatibility)."""

    def apply(self, values: np.ndarray) -> np.ndarray:
        return values


class GaussianReadNoise(_models.GaussianReadNoise):
    """Deprecated alias of :class:`repro.nonideal.GaussianReadNoise`.

    ``sigma_levels`` is the standard deviation in full-precision LSBs.  The
    ``seed`` becomes the stack base seed when the model is handed to the
    simulator, so old call sites keep their reproducibility semantics.
    """

    def __init__(self, sigma_levels: float, seed: SeedLike = None) -> None:
        _warn("GaussianReadNoise", "GaussianReadNoise")
        super().__init__(sigma=sigma_levels)
        self.sigma_levels = self.sigma
        self.seed = _as_seed(seed)


class ProportionalConductanceNoise(_models.ConductanceVariation):
    """Deprecated alias of :class:`repro.nonideal.ConductanceVariation`.

    The old model rescaled every value by ``1 + N(0, σ)`` with a fresh draw
    per access; the keyed replacement draws log-normal per-column factors
    fixed at programming time — the physically faithful reading of
    conductance variation.  The two processes have comparable magnitude at
    small ``σ`` but different correlation structure (static per-column vs
    independent per-access), so results are **not** numerically comparable
    to pre-deprecation runs; the warning says so.
    """

    def __init__(self, sigma: float, seed: SeedLike = None) -> None:
        _warn(
            "ProportionalConductanceNoise", "ConductanceVariation",
            note=". NOTE: the numerics changed — variation factors are now "
                 "log-normal and fixed per column at programming time "
                 "instead of redrawn per access, so accuracy numbers differ "
                 "from pre-deprecation runs",
        )
        super().__init__(sigma=sigma)
        self.seed = _as_seed(seed)
