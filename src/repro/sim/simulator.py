"""End-to-end PIM simulator.

:class:`PimSimulator` evaluates a quantized model on the crossbar + ADC
datapath, producing the quantities the paper's evaluation reports: inference
accuracy under a given per-layer ADC configuration, total and per-layer A/D
operation counts (Fig. 6c), and the bit-line value distributions used by the
calibration search (Fig. 3a).  It plays the role DNN+NeuroSim plays in the
paper's experimental setup.

On top of the single-run API, :meth:`PimSimulator.run_monte_carlo` runs
multi-seed robustness trials under a device non-ideality stack
(:mod:`repro.nonideal`): each trial re-draws the device state from a derived
per-trial seed, runs the (fast-engine, chunked) evaluation, and the
aggregate reports mean/std/confidence-interval accuracy plus per-layer
degradation statistics.  Trials are exactly reproducible under a fixed seed.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.adc.config import AdcConfig
from repro.crossbar.mapping import DEFAULT_TOPOLOGY, CrossbarTopology
from repro.nn.metrics import top1_accuracy
from repro.nonideal.models import LegacyNoiseAdapter
from repro.nonideal.stack import NonIdealityStack, as_stack
from repro.quantization.ptq import QuantizedModel, find_mvm_layers
from repro.sim.capture import DistributionCollector
from repro.sim.fidelity import NoNoise
from repro.sim.pim_layer import PimBackend
from repro.sim.stats import (
    LayerRobustnessStats,
    LayerSimStats,
    MonteCarloResult,
    SimulationResult,
)
from repro.utils.logging import get_logger
from repro.utils.validation import check_in_range, check_integer

logger = get_logger("sim.simulator")


class PimSimulator:
    """Simulate inference of a PTQ-quantized model on the ReRAM accelerator.

    Parameters
    ----------
    quantized:
        Output of :func:`repro.quantization.quantize_model`.
    topology:
        Crossbar geometry (defaults to the paper's 128×128 / 1-bit setup).
    chunk_size:
        MVMs per inner batch inside the backend (memory knob); ``None``
        (default) selects the fast engine's adaptive per-layer throughput
        chunking (:func:`repro.sim.pim_layer.throughput_chunk_size`).
    engine:
        Datapath engine: ``"fast"`` (fused cycle/segment kernel with
        integer-domain LUT ADCs, default) or ``"reference"`` (the
        per-(cycle, segment) loop kept as verification oracle).  The two are
        bit-identical in outputs and operation statistics, with or without a
        :mod:`repro.nonideal` noise stack (legacy ``apply``-protocol noise
        objects agree only statistically).
    """

    def __init__(
        self,
        quantized: QuantizedModel,
        topology: CrossbarTopology = DEFAULT_TOPOLOGY,
        chunk_size: Optional[int] = None,
        engine: str = "fast",
    ) -> None:
        if engine not in PimBackend._ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {PimBackend._ENGINES})"
            )
        self.quantized = quantized
        self.topology = topology
        self.chunk_size = chunk_size if chunk_size is None else int(chunk_size)
        self.engine = engine

    # ------------------------------------------------------------------ #
    @property
    def baseline_ops_per_conversion(self) -> int:
        """A/D operations per conversion of the full-resolution baseline."""
        return self.topology.ideal_adc_resolution

    def layer_names(self) -> list:
        """Names of the MVM layers in forward order."""
        return [name for name, _ in find_mvm_layers(self.quantized.model)]

    # ------------------------------------------------------------------ #
    def _run_backend(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray],
        adc_configs: Optional[Dict[str, AdcConfig]],
        batch_size: int,
        collector: Optional[DistributionCollector],
        noise,
    ) -> SimulationResult:
        check_in_range(check_integer(batch_size, "batch_size"), "batch_size", low=1)
        model = self.quantized.model
        backend = PimBackend(
            self.quantized,
            topology=self.topology,
            adc_configs=adc_configs,
            chunk_size=self.chunk_size,
            collector=collector,
            noise=noise,
            engine=self.engine,
        )
        mvm_layers = find_mvm_layers(model)
        model.eval()
        for _, layer in mvm_layers:
            layer.compute_backend = backend
        try:
            logits_batches = []
            for start in range(0, images.shape[0], batch_size):
                logits_batches.append(model(images[start : start + batch_size]))
            logits = np.concatenate(logits_batches, axis=0)
        finally:
            for _, layer in mvm_layers:
                layer.compute_backend = None

        accuracy = top1_accuracy(logits, labels) if labels is not None else float("nan")
        return SimulationResult(
            accuracy=accuracy,
            num_images=int(images.shape[0]),
            layer_stats={k: copy.deepcopy(v) for k, v in backend.layer_stats.items()},
            baseline_ops_per_conversion=self.baseline_ops_per_conversion,
            logits=logits,
            labels=None if labels is None else np.asarray(labels),
        )

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        adc_configs: Optional[Dict[str, AdcConfig]] = None,
        batch_size: int = 16,
        noise=None,
    ) -> SimulationResult:
        """Run inference with the given per-layer ADC configuration.

        ``adc_configs=None`` gives the ideal-conversion reference (no ADC
        quantization error, baseline operation counts).  ``noise`` accepts
        anything :func:`repro.nonideal.as_stack` does: a stack, a model, a
        list of models/spec dicts, or a legacy ``apply``-protocol object.
        """
        return self._run_backend(images, labels, adc_configs, batch_size, None, noise)

    def monte_carlo_trial_results(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray],
        stacks: Sequence[NonIdealityStack],
        adc_configs: Optional[Dict[str, AdcConfig]] = None,
        batch_size: int = 16,
    ) -> List[SimulationResult]:
        """Evaluate several noise-stack replicas in one batched execution.

        ``stacks[t]`` plays the role of one Monte Carlo trial's reseeded
        stack; all trials run through a single trials-mode
        :class:`~repro.sim.pim_layer.PimBackend`, which executes every
        fused-kernel invocation once for the whole group instead of once per
        trial.  Each forward batch is tiled trial-major (``trials ×
        batch``), so the per-trial rows traverse exactly the solo chunk grid
        — the returned results are **bit-identical** (logits, accuracies,
        per-layer statistics) to ``len(stacks)`` separate
        :meth:`evaluate` calls under the same stacks.
        """
        check_in_range(check_integer(batch_size, "batch_size"), "batch_size", low=1)
        stacks = list(stacks)
        if not stacks:
            raise ValueError("monte_carlo_trial_results needs at least one stack")
        trials = len(stacks)
        model = self.quantized.model
        backend = PimBackend(
            self.quantized,
            topology=self.topology,
            adc_configs=adc_configs,
            chunk_size=self.chunk_size,
            engine=self.engine,
            trial_stacks=stacks,
        )
        mvm_layers = find_mvm_layers(model)
        model.eval()
        for _, layer in mvm_layers:
            layer.compute_backend = backend
        trial_logits: List[List[np.ndarray]] = [[] for _ in range(trials)]
        try:
            for start in range(0, images.shape[0], batch_size):
                batch = images[start : start + batch_size]
                tiled = np.concatenate([batch] * trials, axis=0)
                logits = model(tiled)
                rows = batch.shape[0]
                for t in range(trials):
                    trial_logits[t].append(logits[t * rows : (t + 1) * rows])
        finally:
            for _, layer in mvm_layers:
                layer.compute_backend = None

        labels_arr = None if labels is None else np.asarray(labels)
        results = []
        for t in range(trials):
            logits = np.concatenate(trial_logits[t], axis=0)
            accuracy = (
                top1_accuracy(logits, labels) if labels is not None else float("nan")
            )
            results.append(
                SimulationResult(
                    accuracy=accuracy,
                    num_images=int(images.shape[0]),
                    layer_stats={
                        k: copy.deepcopy(v)
                        for k, v in backend.trial_layer_stats[t].items()
                    },
                    baseline_ops_per_conversion=self.baseline_ops_per_conversion,
                    logits=logits,
                    labels=labels_arr,
                )
            )
        return results

    def run_monte_carlo(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        noise,
        adc_configs: Optional[Dict[str, AdcConfig]] = None,
        trials: int = 16,
        batch_size: int = 16,
        seed: int = 0,
        confidence: float = 0.95,
        clean: Optional[SimulationResult] = None,
        trial_batch: int = 1,
    ) -> MonteCarloResult:
        """Multi-seed robustness trials under a device non-ideality stack.

        Runs one clean (noise-free) evaluation as the reference, then
        ``trials`` noisy evaluations whose stacks are reseeded with seeds
        derived from ``(stack seed, seed, trial)`` — every trial therefore
        sees an independent device (fresh variation factors, fault maps and
        read noise) while the whole experiment reproduces exactly under the
        same seeds.  Each trial runs batched over the configured engine (the
        fast engine by default) with the backend's throughput chunking.

        Sweeps that call this repeatedly with the same images and
        ``adc_configs`` can pass the deterministic clean run once via
        ``clean`` (it must come from ``evaluate`` on the same inputs) to
        skip recomputing it per grid point.  A clean result restored from
        disk (``SimulationResult.from_payload`` with its NPZ logits, as the
        experiment result store does) is equally valid — the round-trip is
        bit-exact, so flip rates and per-layer degradation match the
        in-process reference exactly.

        ``trial_batch`` sets how many trials execute per kernel invocation:
        ``1`` (default) runs the per-trial loop — the verification oracle —
        while ``N > 1`` coalesces trials in groups of ``N`` through the
        batched fused kernel (:meth:`monte_carlo_trial_results`).  Under the
        numpy array backend every ``trial_batch`` produces bit-identical
        results; it is purely a throughput knob.

        Returns a :class:`~repro.sim.stats.MonteCarloResult` with the trial
        accuracies, their mean/std and normal-approximation confidence
        interval, per-trial prediction flip rates against the clean run, and
        per-layer degradation statistics of the A/D operation and region
        counters.
        """
        check_in_range(check_integer(trials, "trials"), "trials", low=1)
        check_in_range(
            check_integer(trial_batch, "trial_batch"), "trial_batch", low=1
        )
        check_in_range(float(confidence), "confidence", low=0.0, high=1.0, inclusive=False)
        if isinstance(noise, NoNoise):
            noise = None
        stack = as_stack(noise)
        if stack is None or not stack.models:
            raise ValueError("run_monte_carlo requires a non-empty noise stack")
        if any(isinstance(model, LegacyNoiseAdapter) for model in stack.models):
            raise TypeError(
                "run_monte_carlo requires keyed repro.nonideal models: a legacy "
                "apply-protocol noise object owns one mutable RNG stream, so its "
                "trials would be neither independent nor reproducible under the "
                "derived per-trial seeds"
            )

        clean = self._clean_reference(clean, images, labels, adc_configs, batch_size)

        trial_results: List[SimulationResult] = []
        for group_start in range(0, trials, trial_batch):
            group = range(group_start, min(group_start + trial_batch, trials))
            group_stacks = [stack.derive_trial(seed, trial) for trial in group]
            if trial_batch == 1:
                # The per-trial loop: the oracle the batched path is verified
                # against, byte for byte.
                trial_results.append(
                    self.evaluate(
                        images,
                        labels,
                        adc_configs,
                        batch_size=batch_size,
                        noise=group_stacks[0],
                    )
                )
            else:
                trial_results.extend(
                    self.monte_carlo_trial_results(
                        images, labels, group_stacks, adc_configs, batch_size
                    )
                )
        return self.assemble_monte_carlo(
            clean, trial_results, seed=seed, confidence=confidence, stack=stack
        )

    def assemble_monte_carlo(
        self,
        clean: SimulationResult,
        trial_results: Sequence[SimulationResult],
        seed: int,
        confidence: float,
        stack,
    ) -> MonteCarloResult:
        """Aggregate per-trial results into a :class:`MonteCarloResult`.

        Factored out of :meth:`run_monte_carlo` so callers that obtain the
        per-trial :class:`SimulationResult` list elsewhere — in particular
        the experiment runner's cross-job trial coalescer — assemble exactly
        the same payload as an in-process Monte Carlo run.
        """
        trials = len(trial_results)
        clean_predictions = np.argmax(clean.logits, axis=1)
        accuracies = np.empty(trials, dtype=np.float64)
        flip_rates = np.empty(trials, dtype=np.float64)
        trial_layer_stats: Dict[str, list] = {name: [] for name in clean.layer_stats}
        for trial, result in enumerate(trial_results):
            accuracies[trial] = result.accuracy
            predictions = np.argmax(result.logits, axis=1)
            flip_rates[trial] = float(np.mean(predictions != clean_predictions))
            for name, stats in result.layer_stats.items():
                trial_layer_stats.setdefault(name, []).append(stats)
            logger.debug(
                "MC trial %d/%d: accuracy %.4f flip %.4f",
                trial + 1, trials, accuracies[trial], flip_rates[trial],
            )

        layer_stats = {
            name: LayerRobustnessStats.from_trials(
                name,
                clean.layer_stats.get(name),
                rows,
                self.baseline_ops_per_conversion,
            )
            for name, rows in trial_layer_stats.items()
        }
        return MonteCarloResult(
            trials=trials,
            seed=int(seed),
            confidence=float(confidence),
            accuracies=accuracies,
            flip_rates=flip_rates,
            clean_accuracy=clean.accuracy,
            layer_stats=layer_stats,
            noise_specs=_safe_specs(stack),
            baseline_ops_per_conversion=self.baseline_ops_per_conversion,
        )

    def _clean_reference(
        self,
        clean: Optional[SimulationResult],
        images: np.ndarray,
        labels: np.ndarray,
        adc_configs: Optional[Dict[str, AdcConfig]],
        batch_size: int,
    ) -> SimulationResult:
        """Validate (or compute) the reusable noise-free reference run.

        Accepts results produced in-process by :meth:`evaluate` and results
        restored from an artifact store via
        :meth:`~repro.sim.stats.SimulationResult.to_payload` /
        ``from_payload`` — both carry the exact logits and per-layer
        counters the Monte Carlo aggregation compares against.
        """
        if clean is None:
            return self.evaluate(images, labels, adc_configs, batch_size=batch_size)
        if clean.logits is None or clean.logits.shape[0] != images.shape[0]:
            raise ValueError(
                "clean= must be an evaluate() result (with logits) over the "
                "same images as this Monte Carlo run"
            )
        if labels is not None and clean.labels is not None and not np.array_equal(
            np.asarray(labels), clean.labels
        ):
            raise ValueError(
                "clean= was computed against different labels than this "
                "Monte Carlo run"
            )
        return clean

    def collect_bitline_distributions(
        self,
        images: np.ndarray,
        batch_size: int = 8,
        capacity_per_layer: int = 100_000,
        seed: int = 0,
    ) -> Dict[str, np.ndarray]:
        """Gather per-layer bit-line value samples with ideal conversion.

        This is the data behind paper Fig. 3a and the input to Algorithm 1.
        """
        collector = DistributionCollector(capacity_per_layer=capacity_per_layer, seed=seed)
        self._run_backend(images, None, None, batch_size, collector, None)
        return collector.all_samples()

    def accuracy_evaluator(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 16,
    ) -> Callable[[Optional[Dict[str, AdcConfig]]], float]:
        """A closure mapping per-layer ADC configs to end-to-end accuracy.

        This is the ``Acc'`` oracle of Algorithm 1's outer loop; the
        calibration search calls it once per candidate ``Nmax``.  The oracle
        runs on this simulator's engine and chunking — with the defaults,
        the fast engine at its throughput chunk size, which is what makes
        the accuracy-constrained loop affordable.
        """

        def evaluate(adc_configs: Optional[Dict[str, AdcConfig]]) -> float:
            result = self.evaluate(images, labels, adc_configs, batch_size=batch_size)
            return result.accuracy

        return evaluate

    # ------------------------------------------------------------------ #
    def mapping_summary(self) -> Dict[str, object]:
        """Per-layer crossbar footprints (used by the architecture model)."""
        backend = PimBackend(self.quantized, topology=self.topology, chunk_size=self.chunk_size)
        footprints = {}
        for name, layer in find_mvm_layers(self.quantized.model):
            lq = self.quantized.layer(name)
            kind = lq.kind
            footprints[name] = backend._mapped_layer(name, kind).footprint()
        return footprints


def _safe_specs(stack) -> Optional[list]:
    """Registry specs of the stack, or ``None`` for unserializable models."""
    try:
        return stack.specs()
    except TypeError:
        return None


__all__ = [
    "LayerRobustnessStats",
    "LayerSimStats",
    "MonteCarloResult",
    "PimSimulator",
    "SimulationResult",
]
