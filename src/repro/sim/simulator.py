"""End-to-end PIM simulator.

:class:`PimSimulator` evaluates a quantized model on the crossbar + ADC
datapath, producing the quantities the paper's evaluation reports: inference
accuracy under a given per-layer ADC configuration, total and per-layer A/D
operation counts (Fig. 6c), and the bit-line value distributions used by the
calibration search (Fig. 3a).  It plays the role DNN+NeuroSim plays in the
paper's experimental setup.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Optional

import numpy as np

from repro.adc.config import AdcConfig
from repro.crossbar.mapping import DEFAULT_TOPOLOGY, CrossbarTopology
from repro.nn.metrics import top1_accuracy
from repro.quantization.ptq import QuantizedModel, find_mvm_layers
from repro.sim.capture import DistributionCollector
from repro.sim.fidelity import NoiseModel
from repro.sim.pim_layer import PimBackend
from repro.sim.stats import LayerSimStats, SimulationResult
from repro.utils.logging import get_logger
from repro.utils.validation import check_in_range, check_integer

logger = get_logger("sim.simulator")


class PimSimulator:
    """Simulate inference of a PTQ-quantized model on the ReRAM accelerator.

    Parameters
    ----------
    quantized:
        Output of :func:`repro.quantization.quantize_model`.
    topology:
        Crossbar geometry (defaults to the paper's 128×128 / 1-bit setup).
    chunk_size:
        MVMs per inner batch inside the backend (memory knob).
    engine:
        Datapath engine: ``"fast"`` (fused cycle/segment kernel with
        integer-domain LUT ADCs, default) or ``"reference"`` (the
        per-(cycle, segment) loop kept as verification oracle).  The two are
        bit-identical in outputs and operation statistics for deterministic
        converters; runs with a noise model agree only statistically.
    """

    def __init__(
        self,
        quantized: QuantizedModel,
        topology: CrossbarTopology = DEFAULT_TOPOLOGY,
        chunk_size: int = 4096,
        engine: str = "fast",
    ) -> None:
        if engine not in PimBackend._ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {PimBackend._ENGINES})"
            )
        self.quantized = quantized
        self.topology = topology
        self.chunk_size = int(chunk_size)
        self.engine = engine

    # ------------------------------------------------------------------ #
    @property
    def baseline_ops_per_conversion(self) -> int:
        """A/D operations per conversion of the full-resolution baseline."""
        return self.topology.ideal_adc_resolution

    def layer_names(self) -> list:
        """Names of the MVM layers in forward order."""
        return [name for name, _ in find_mvm_layers(self.quantized.model)]

    # ------------------------------------------------------------------ #
    def _run_backend(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray],
        adc_configs: Optional[Dict[str, AdcConfig]],
        batch_size: int,
        collector: Optional[DistributionCollector],
        noise: Optional[NoiseModel],
    ) -> SimulationResult:
        check_in_range(check_integer(batch_size, "batch_size"), "batch_size", low=1)
        model = self.quantized.model
        backend = PimBackend(
            self.quantized,
            topology=self.topology,
            adc_configs=adc_configs,
            chunk_size=self.chunk_size,
            collector=collector,
            noise=noise,
            engine=self.engine,
        )
        mvm_layers = find_mvm_layers(model)
        model.eval()
        for _, layer in mvm_layers:
            layer.compute_backend = backend
        try:
            logits_batches = []
            for start in range(0, images.shape[0], batch_size):
                logits_batches.append(model(images[start : start + batch_size]))
            logits = np.concatenate(logits_batches, axis=0)
        finally:
            for _, layer in mvm_layers:
                layer.compute_backend = None

        accuracy = top1_accuracy(logits, labels) if labels is not None else float("nan")
        return SimulationResult(
            accuracy=accuracy,
            num_images=int(images.shape[0]),
            layer_stats={k: copy.deepcopy(v) for k, v in backend.layer_stats.items()},
            baseline_ops_per_conversion=self.baseline_ops_per_conversion,
            logits=logits,
            labels=None if labels is None else np.asarray(labels),
        )

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        adc_configs: Optional[Dict[str, AdcConfig]] = None,
        batch_size: int = 16,
        noise: Optional[NoiseModel] = None,
    ) -> SimulationResult:
        """Run inference with the given per-layer ADC configuration.

        ``adc_configs=None`` gives the ideal-conversion reference (no ADC
        quantization error, baseline operation counts).
        """
        return self._run_backend(images, labels, adc_configs, batch_size, None, noise)

    def collect_bitline_distributions(
        self,
        images: np.ndarray,
        batch_size: int = 8,
        capacity_per_layer: int = 100_000,
        seed: int = 0,
    ) -> Dict[str, np.ndarray]:
        """Gather per-layer bit-line value samples with ideal conversion.

        This is the data behind paper Fig. 3a and the input to Algorithm 1.
        """
        collector = DistributionCollector(capacity_per_layer=capacity_per_layer, seed=seed)
        self._run_backend(images, None, None, batch_size, collector, None)
        return collector.all_samples()

    def accuracy_evaluator(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 16,
    ) -> Callable[[Optional[Dict[str, AdcConfig]]], float]:
        """A closure mapping per-layer ADC configs to end-to-end accuracy.

        This is the ``Acc'`` oracle of Algorithm 1's outer loop; the
        calibration search calls it once per candidate ``Nmax``.
        """

        def evaluate(adc_configs: Optional[Dict[str, AdcConfig]]) -> float:
            result = self.evaluate(images, labels, adc_configs, batch_size=batch_size)
            return result.accuracy

        return evaluate

    # ------------------------------------------------------------------ #
    def mapping_summary(self) -> Dict[str, object]:
        """Per-layer crossbar footprints (used by the architecture model)."""
        backend = PimBackend(self.quantized, topology=self.topology, chunk_size=self.chunk_size)
        footprints = {}
        for name, layer in find_mvm_layers(self.quantized.model):
            lq = self.quantized.layer(name)
            kind = lq.kind
            footprints[name] = backend._mapped_layer(name, kind).footprint()
        return footprints
