"""PIM compute backend: executes Conv2d/Linear layers on the crossbar + ADC
models instead of the NumPy fast path.

The backend implements the :class:`repro.nn.layers.ComputeBackend` protocol,
so attaching it to a model's MVM layers (``layer.compute_backend = backend``)
re-routes inference through the full bit-sliced datapath:

    quantize inputs → im2col → temporal input slicing → per-segment bit-line
    partial sums → ADC conversion (uniform / twin-range / ideal) →
    shift-and-add merge → dequantize → bias add

while accumulating per-layer conversion statistics and, optionally, feeding a
:class:`repro.sim.capture.DistributionCollector` with the raw bit-line values.

Engines
-------
The backend executes the crossbar datapath with one of two engines (see the
:mod:`repro.crossbar.mapping` module docstring for the full contract):

* ``engine="fast"`` (default) — fused cycle/segment kernel with
  integer-domain LUT conversion.  Relies on the invariant that bit-line
  values are exact non-negative integers, so LUT-capable ADCs replace float
  round/clip/compare math with an integer gather plus ``np.bincount``.
* ``engine="reference"`` — the per-(cycle, segment) Python loop, kept as the
  verification oracle.

For deterministic converters both engines produce bit-identical outputs and
identical A/D-operation and region statistics.  When an analog noise model is
attached, conversions leave the integer domain and the fast engine
transparently falls back to the element-wise ``convert`` of the
(noise-wrapped) ADC on the fused blocks; the two engines then consume the
noise RNG stream in different block orders, so noisy runs agree only
statistically, not sample for sample.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.adc.config import AdcConfig
from repro.adc.trq import build_adc
from repro.crossbar.mapping import DEFAULT_TOPOLOGY, CrossbarTopology, MappedMVMLayer
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear
from repro.quantization.ptq import QuantizedModel, find_mvm_layers
from repro.sim.capture import DistributionCollector
from repro.sim.fidelity import NoiseModel, NoNoise
from repro.sim.stats import LayerSimStats
from repro.utils.validation import check_in_range, check_integer


class _IdealAdc:
    """Pass-through converter used when a layer has no ADC configuration.

    It keeps the values untouched and charges the full-resolution baseline
    operation count, so ideal runs still produce meaningful Eq. 3 statistics.
    """

    def __init__(self, baseline_ops: int) -> None:
        self.baseline_ops = int(baseline_ops)

    def convert(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        return values, values.size * self.baseline_ops

    def reset_stats(self) -> None:  # pragma: no cover - nothing to reset
        pass


class _NoisyAdcWrapper:
    """Applies an analog noise model to bit-line values before conversion."""

    def __init__(self, adc, noise: NoiseModel) -> None:
        self._adc = adc
        self._noise = noise

    @property
    def stats(self):
        return getattr(self._adc, "stats", None)

    def convert(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        return self._adc.convert(self._noise.apply(values))

    def reset_stats(self) -> None:
        reset = getattr(self._adc, "reset_stats", None)
        if reset is not None:
            reset()


class PimBackend:
    """Crossbar + ADC execution backend for the MVM layers of one model.

    Parameters
    ----------
    quantized:
        PTQ artefacts of the model (integer weights, input/weight scales).
    topology:
        Crossbar geometry (128×128, 1-bit cells, 1-bit DAC by default).
    adc_configs:
        Per-layer ADC configuration.  Layers missing from the mapping (or the
        whole argument being ``None``) are converted *ideally*: the partial
        sums pass through unquantized and the operation count assumes the
        full-resolution baseline.
    chunk_size:
        Number of MVMs (output positions) processed per inner batch; bounds
        peak memory for large feature maps.
    collector:
        Optional bit-line value collector (paper Fig. 3a / calibration).
    noise:
        Optional analog noise model applied to bit-line values before the ADC.
    engine:
        ``"fast"`` (fused kernel + LUT ADCs, default) or ``"reference"``
        (per-cycle/segment loop oracle).  Outputs and statistics are
        bit-identical between the two for deterministic converters; noisy
        runs agree only statistically (see the module docstring).
    """

    _ENGINES = ("fast", "reference")

    def __init__(
        self,
        quantized: QuantizedModel,
        topology: CrossbarTopology = DEFAULT_TOPOLOGY,
        adc_configs: Optional[Dict[str, AdcConfig]] = None,
        chunk_size: int = 4096,
        collector: Optional[DistributionCollector] = None,
        noise: Optional[NoiseModel] = None,
        engine: str = "fast",
    ) -> None:
        check_in_range(check_integer(chunk_size, "chunk_size"), "chunk_size", low=1)
        if engine not in self._ENGINES:
            raise ValueError(f"unknown engine {engine!r} (expected one of {self._ENGINES})")
        self.engine = engine
        self.quantized = quantized
        self.topology = topology
        self.chunk_size = int(chunk_size)
        self.collector = collector
        self.noise = noise if noise is not None else NoNoise()
        self._adc_configs = dict(adc_configs) if adc_configs else {}

        self._layer_names: Dict[int, str] = {
            id(layer): name for name, layer in find_mvm_layers(quantized.model)
        }
        self._mapped: Dict[str, MappedMVMLayer] = {}
        self._adcs: Dict[str, object] = {}
        self.layer_stats: Dict[str, LayerSimStats] = {}

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _layer_name(self, layer) -> str:
        name = self._layer_names.get(id(layer))
        if name is None:
            raise KeyError(
                "layer is not part of the quantized model this backend was built from"
            )
        return name

    def _mapped_layer(self, name: str, kind: str) -> MappedMVMLayer:
        if name not in self._mapped:
            lq = self.quantized.layer(name)
            if kind == "conv":
                out_channels = lq.weight_codes.shape[0]
                weight_matrix = lq.weight_codes.reshape(out_channels, -1).T
            else:
                weight_matrix = lq.weight_codes.T
            self._mapped[name] = MappedMVMLayer(
                weight_matrix, self.quantized.config, self.topology
            )
        return self._mapped[name]

    def _adc_for(self, name: str):
        if name in self._adcs:
            return self._adcs[name]
        config = self._adc_configs.get(name)
        inject_noise = not isinstance(self.noise, NoNoise)
        if config is not None:
            adc = build_adc(config)
        elif inject_noise:
            adc = _IdealAdc(self.topology.ideal_adc_resolution)
        else:
            adc = None
        if adc is not None and inject_noise:
            adc = _NoisyAdcWrapper(adc, self.noise)
        self._adcs[name] = adc
        return adc

    def _stats_for(self, name: str, kind: str, mapped: MappedMVMLayer) -> LayerSimStats:
        if name not in self.layer_stats:
            footprint = mapped.footprint()
            self.layer_stats[name] = LayerSimStats(
                name=name,
                kind=kind,
                crossbar_pairs=footprint.num_crossbar_pairs,
                conversions_per_mvm=footprint.conversions_per_mvm,
            )
        return self.layer_stats[name]

    # ------------------------------------------------------------------ #
    # core execution
    # ------------------------------------------------------------------ #
    def _execute(self, name: str, kind: str, x_rows: np.ndarray) -> np.ndarray:
        """Run ``x_rows`` (MVM input vectors, one per row) through the datapath."""
        lq = self.quantized.layer(name)
        if lq.input_params.signed:
            raise NotImplementedError(
                f"layer '{name}' has signed inputs; the differential crossbar "
                "mapping implemented here expects non-negative MVM inputs "
                "(images or post-ReLU activations)"
            )
        mapped = self._mapped_layer(name, kind)
        adc = self._adc_for(name)
        stats = self._stats_for(name, kind, mapped)
        if self.collector is not None:
            self.collector.set_layer(name)

        input_codes = lq.input_params.quantize(x_rows)
        rows = input_codes.shape[0]
        outputs = np.empty((rows, mapped.out_features), dtype=np.float64)

        # The collector records the ideal (noise-free) bit-line values the
        # crossbar produces; noise, when enabled, is applied inside the ADC
        # wrapper so only the conversion sees it.
        observer = self.collector
        baseline_ops = self.topology.ideal_adc_resolution

        prev_r1, prev_r2 = self._region_counters(adc)
        try:
            for start in range(0, rows, self.chunk_size):
                chunk = input_codes[start : start + self.chunk_size]
                merged, ops = mapped.matmul(
                    chunk, adc=adc, partial_observer=observer, engine=self.engine
                )
                outputs[start : start + chunk.shape[0]] = merged
                conversions = chunk.shape[0] * mapped.footprint().conversions_per_mvm
                stats.mvm_count += chunk.shape[0]
                stats.conversions += conversions
                stats.operations += int(ops) if adc is not None else conversions * baseline_ops
        finally:
            # Scratch buffers are reused across the chunks above; free them so
            # peak memory is bounded by one layer's working set at a time.
            mapped.release_scratch()
        new_r1, new_r2 = self._region_counters(adc)
        stats.in_r1 += new_r1 - prev_r1
        stats.in_r2 += new_r2 - prev_r2

        return outputs * lq.output_scale

    @staticmethod
    def _region_counters(adc) -> Tuple[int, int]:
        stats = getattr(adc, "stats", None)
        if stats is None:
            return 0, 0
        return stats.in_r1, stats.in_r2

    # ------------------------------------------------------------------ #
    # ComputeBackend protocol
    # ------------------------------------------------------------------ #
    def conv2d(
        self,
        layer: Conv2d,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        name = self._layer_name(layer)
        cols, (oh, ow) = F.im2col(x, layer.kernel_size, stride, padding)
        out = self._execute(name, "conv", cols)
        if bias is not None:
            out = out + bias
        n = x.shape[0]
        return out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)

    def linear(
        self,
        layer: Linear,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> np.ndarray:
        name = self._layer_name(layer)
        out = self._execute(name, "linear", x)
        if bias is not None:
            out = out + bias
        return out

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Clear all accumulated per-layer statistics."""
        self.layer_stats.clear()
        for adc in self._adcs.values():
            if adc is not None:
                adc.reset_stats()

    def mapping_footprints(self) -> Dict[str, object]:
        """Resource footprint of every layer mapped so far."""
        return {name: mapped.footprint() for name, mapped in self._mapped.items()}
