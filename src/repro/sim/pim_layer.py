"""PIM compute backend: executes Conv2d/Linear layers on the crossbar + ADC
models instead of the NumPy fast path.

The backend implements the :class:`repro.nn.layers.ComputeBackend` protocol,
so attaching it to a model's MVM layers (``layer.compute_backend = backend``)
re-routes inference through the full bit-sliced datapath:

    quantize inputs → im2col → temporal input slicing → per-segment bit-line
    partial sums → device non-idealities (optional) → ADC conversion
    (uniform / twin-range / ideal) → shift-and-add merge → dequantize →
    bias add

while accumulating per-layer conversion statistics and, optionally, feeding a
:class:`repro.sim.capture.DistributionCollector` with the raw bit-line values.

Engines
-------
The backend executes the crossbar datapath with one of two engines (see the
:mod:`repro.crossbar.mapping` module docstring for the full contract):

* ``engine="fast"`` (default) — fused cycle/segment kernel with
  integer-domain LUT conversion.  Relies on the invariant that bit-line
  values are exact non-negative integers, so LUT-capable ADCs replace float
  round/clip/compare math with an integer gather plus ``np.bincount``.
* ``engine="reference"`` — the per-(cycle, segment) Python loop, kept as the
  verification oracle.

Both engines produce bit-identical outputs and identical A/D-operation and
region statistics — including under device noise: non-ideality models from
:mod:`repro.nonideal` draw every perturbation from counter-based keyed
streams (per layer / chunk / segment / cycle), so the engines reconstruct
identical noise despite traversing blocks in different orders.  Only legacy
``apply``-protocol noise objects (wrapped with a deprecation warning) retain
the old statistical-only agreement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adc.config import AdcConfig
from repro.adc.trq import build_adc
from repro.crossbar.mapping import DEFAULT_TOPOLOGY, CrossbarTopology, MappedMVMLayer
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear
from repro.nonideal.stack import (
    LayerNoiseState,
    NonIdealityStack,
    TrialNoiseStates,
    as_stack,
)
from repro.quantization.ptq import QuantizedModel, find_mvm_layers
from repro.sim.capture import DistributionCollector
from repro.sim.fidelity import NoNoise
from repro.sim.stats import LayerSimStats
from repro.utils.validation import check_in_range, check_integer

#: Bounds of the fast engine's throughput chunking (``chunk_size=None``).
#: The sweet spot is workload-dependent: per-chunk Python/LUT overhead argues
#: for large chunks, while the fused kernel's scratch buffers
#: (``cycles · chunk × columns``) must stay cache-resident or the per-segment
#: matmul and gather turn memory-bound.  The adaptive default below holds the
#: scratch footprint near ``_CHUNK_ELEMENT_BUDGET`` elements, clamped to
#: these bounds — measured faster than any fixed chunk across the LeNet
#: layer shapes (see ``bench_ablation_calibration.py``).
MAX_CHUNK_SIZE = 16_384
MIN_CHUNK_SIZE = 512
_CHUNK_ELEMENT_BUDGET = 1 << 21

#: Scratch allowance of one batched-trials kernel invocation, relative to the
#: solo budget.  Trial sub-grouping exists to *bound* memory, not to keep the
#: working set cache-resident: the batched kernel exists to amortize per-call
#: overhead across trials, so it accepts a larger transient footprint
#: (``8 · 2²¹`` elements ≈ 128 MB float64 worst case) before splitting the
#: trial group across invocations.
_TRIAL_SCRATCH_FACTOR = 1


def throughput_chunk_size(
    num_input_cycles: int, total_columns: int, trial_batch: int = 1
) -> int:
    """The fast engine's throughput chunk for one mapped layer's geometry.

    Chosen so the fused kernel's per-chunk scratch (``cycles · chunk ×
    columns`` partials plus the level/noise gather buffers) stays within the
    element budget; wide conv layers get smaller chunks, narrow FC layers the
    maximum.  Used wherever ``chunk_size=None`` is passed — in particular by
    the calibration search's accuracy oracle, whose wall-time is dominated by
    these chunks.

    ``trial_batch`` accounts for the batched Monte Carlo kernel, whose
    scratch carries a leading ``trials`` axis: the budget divides by the
    number of trials sharing one kernel invocation, so the physical working
    set stays cache-resident regardless of how many trials ride along.
    (The *logical* chunk grid of a Monte Carlo run always uses the solo
    ``trial_batch=1`` value — chunk indices key the noise draws — while the
    trials-mode backend uses the trial-adjusted value to pick how many
    trials it groups per invocation; see ``PimBackend._execute_trials``.)
    """
    per_row = max(1, int(num_input_cycles) * int(total_columns) * max(1, int(trial_batch)))
    return max(MIN_CHUNK_SIZE, min(MAX_CHUNK_SIZE, _CHUNK_ELEMENT_BUDGET // per_row))


class PimBackend:
    """Crossbar + ADC execution backend for the MVM layers of one model.

    Parameters
    ----------
    quantized:
        PTQ artefacts of the model (integer weights, input/weight scales).
    topology:
        Crossbar geometry (128×128, 1-bit cells, 1-bit DAC by default).
    adc_configs:
        Per-layer ADC configuration.  Layers missing from the mapping (or the
        whole argument being ``None``) are converted *ideally*: the partial
        sums pass through unquantized and the operation count assumes the
        full-resolution baseline.
    chunk_size:
        Number of MVMs (output positions) processed per inner batch; bounds
        peak memory for large feature maps.  ``None`` (default) selects the
        adaptive per-layer throughput chunking
        (:func:`throughput_chunk_size`).
    collector:
        Optional bit-line value collector (paper Fig. 3a / calibration).
        Observers always see the ideal (pre-noise) values.
    noise:
        Optional device non-idealities applied to bit-line values before
        conversion: a :class:`repro.nonideal.NonIdealityStack`, a single
        model, a list of models/spec dicts, or a legacy ``apply``-protocol
        object (deprecated).
    engine:
        ``"fast"`` (fused kernel + LUT ADCs, default) or ``"reference"``
        (per-cycle/segment loop oracle).  Outputs and statistics are
        bit-identical between the two, with or without noise (legacy noise
        objects excepted; see the module docstring).
    """

    _ENGINES = ("fast", "reference")

    def __init__(
        self,
        quantized: QuantizedModel,
        topology: CrossbarTopology = DEFAULT_TOPOLOGY,
        adc_configs: Optional[Dict[str, AdcConfig]] = None,
        chunk_size: Optional[int] = None,
        collector: Optional[DistributionCollector] = None,
        noise=None,
        engine: str = "fast",
        trial_stacks: Optional[Sequence[NonIdealityStack]] = None,
    ) -> None:
        if chunk_size is not None:
            check_in_range(check_integer(chunk_size, "chunk_size"), "chunk_size", low=1)
        if engine not in self._ENGINES:
            raise ValueError(f"unknown engine {engine!r} (expected one of {self._ENGINES})")
        self.engine = engine
        self.quantized = quantized
        self.topology = topology
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self.collector = collector
        if isinstance(noise, NoNoise):
            noise = None
        self.noise: Optional[NonIdealityStack] = as_stack(noise)
        self._adc_configs = dict(adc_configs) if adc_configs else {}

        # Batched Monte Carlo mode: one backend executes N sibling trials per
        # kernel invocation.  Inputs arrive tiled trial-major (``trials ×
        # rows``), every trial carries its own noise replica, ADC instance
        # and statistics, and outputs stay bit-identical per trial to N solo
        # runs (see ``_execute_trials``).
        self._trial_stacks: Optional[Tuple[NonIdealityStack, ...]] = None
        if trial_stacks is not None:
            if noise is not None:
                raise ValueError("pass either noise= or trial_stacks=, not both")
            if collector is not None:
                raise ValueError(
                    "bit-line collection is not supported in batched-trials mode"
                )
            stacks = tuple(trial_stacks)
            if not stacks:
                raise ValueError("trial_stacks must contain at least one stack")
            self._trial_stacks = stacks

        self._layer_names: Dict[int, str] = {
            id(layer): name for name, layer in find_mvm_layers(quantized.model)
        }
        self._mapped: Dict[str, MappedMVMLayer] = {}
        self._adcs: Dict[str, object] = {}
        self._layer_noise: Dict[str, LayerNoiseState] = {}
        self.layer_stats: Dict[str, LayerSimStats] = {}
        self._trial_noise: Dict[str, TrialNoiseStates] = {}
        self._trial_adcs: Dict[str, Optional[List[object]]] = {}
        self._group_noise: Dict[Tuple[str, int], List[TrialNoiseStates]] = {}
        self.trial_layer_stats: List[Dict[str, LayerSimStats]] = (
            [] if self._trial_stacks is None
            else [{} for _ in self._trial_stacks]
        )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _layer_name(self, layer) -> str:
        name = self._layer_names.get(id(layer))
        if name is None:
            raise KeyError(
                "layer is not part of the quantized model this backend was built from"
            )
        return name

    def _mapped_layer(self, name: str, kind: str) -> MappedMVMLayer:
        if name not in self._mapped:
            lq = self.quantized.layer(name)
            if kind == "conv":
                out_channels = lq.weight_codes.shape[0]
                weight_matrix = lq.weight_codes.reshape(out_channels, -1).T
            else:
                weight_matrix = lq.weight_codes.T
            self._mapped[name] = MappedMVMLayer(
                weight_matrix, self.quantized.config, self.topology
            )
        return self._mapped[name]

    def _adc_for(self, name: str):
        if name not in self._adcs:
            config = self._adc_configs.get(name)
            self._adcs[name] = build_adc(config) if config is not None else None
        return self._adcs[name]

    def _noise_for(self, name: str, mapped: MappedMVMLayer) -> Optional[LayerNoiseState]:
        """The layer's bound noise state (static device draws + chunk counter).

        Bound once per layer per backend: static draws (variation factors,
        fault maps) model one physical device for the whole run, and the
        chunk counter advances identically in both engines.
        """
        if self.noise is None:
            return None
        state = self._layer_noise.get(name)
        if state is None:
            state = self.noise.bind_mapped(name, mapped)
            self._layer_noise[name] = state
        return state

    def _stats_for(self, name: str, kind: str, mapped: MappedMVMLayer) -> LayerSimStats:
        if name not in self.layer_stats:
            footprint = mapped.footprint()
            self.layer_stats[name] = LayerSimStats(
                name=name,
                kind=kind,
                crossbar_pairs=footprint.num_crossbar_pairs,
                conversions_per_mvm=footprint.conversions_per_mvm,
            )
        return self.layer_stats[name]

    # ------------------------------------------------------------------ #
    # batched-trials plumbing
    # ------------------------------------------------------------------ #
    def _trial_noise_for(self, name: str, mapped: MappedMVMLayer) -> TrialNoiseStates:
        states = self._trial_noise.get(name)
        if states is None:
            states = TrialNoiseStates(
                [stack.bind_mapped(name, mapped) for stack in self._trial_stacks]
            )
            self._trial_noise[name] = states
        return states

    def _trial_adcs_for(self, name: str) -> Optional[List[object]]:
        """Per-trial ADC instances for one layer (``None`` when ideal).

        Each trial needs its own converter — the perturbed LUT bound and the
        accumulated statistics are trial-specific — but the transfer-LUT
        cache is shared across the siblings: LUT content is a pure function
        of (config, max_value), so trials re-use each other's tabulations.
        """
        if name not in self._trial_adcs:
            config = self._adc_configs.get(name)
            if config is None:
                self._trial_adcs[name] = None
            else:
                shared_cache: Dict[int, object] = {}
                adcs = []
                for _ in self._trial_stacks:
                    adc = build_adc(config)
                    if hasattr(adc, "transfer_lut"):
                        adc._lut_cache = shared_cache
                    adcs.append(adc)
                self._trial_adcs[name] = adcs
        return self._trial_adcs[name]

    def _trial_stats_for(
        self, trial: int, name: str, kind: str, mapped: MappedMVMLayer
    ) -> LayerSimStats:
        stats = self.trial_layer_stats[trial].get(name)
        if stats is None:
            footprint = mapped.footprint()
            stats = self.trial_layer_stats[trial][name] = LayerSimStats(
                name=name,
                kind=kind,
                crossbar_pairs=footprint.num_crossbar_pairs,
                conversions_per_mvm=footprint.conversions_per_mvm,
            )
        return stats

    def _execute_trials(self, name: str, kind: str, x_rows: np.ndarray) -> np.ndarray:
        """Batched Monte Carlo execution of one layer.

        ``x_rows`` is the trial-major tiling of the solo rows: rows
        ``[t·R, (t+1)·R)`` are what a solo run of trial ``t`` would see.
        The layer iterates the *solo* chunk grid — chunk indices key the
        noise draws, so the grid must match the per-trial oracle exactly —
        and advances every trial's chunk counter in lockstep.  Within a
        logical chunk, trials are processed in sub-groups sized by the
        trial-aware :func:`throughput_chunk_size` so the kernel's
        ``(trials, cycles · chunk, columns)`` scratch stays within the solo
        memory budget.  Per-trial outputs, operation counts and region
        statistics are bit-identical to ``trials`` solo executions.
        """
        lq = self.quantized.layer(name)
        if lq.input_params.signed:
            raise NotImplementedError(
                f"layer '{name}' has signed inputs; the differential crossbar "
                "mapping implemented here expects non-negative MVM inputs "
                "(images or post-ReLU activations)"
            )
        mapped = self._mapped_layer(name, kind)
        adcs = self._trial_adcs_for(name)
        noise = self._trial_noise_for(name, mapped)
        trials = noise.trials
        rows = x_rows.shape[0]
        if rows % trials:
            raise ValueError(
                f"trials-mode input rows ({rows}) are not divisible by the "
                f"trial count ({trials})"
            )
        solo_rows = rows // trials

        input_codes = lq.input_params.quantize(x_rows)
        codes = input_codes.reshape(trials, solo_rows, mapped.in_features)
        outputs = np.empty(
            (trials, solo_rows, mapped.out_features), dtype=np.float64
        )
        total_columns = 2 * mapped.num_weight_planes * mapped.out_features
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = throughput_chunk_size(mapped.num_input_cycles, total_columns)
        # Trial sub-grouping: how many trials one kernel invocation carries
        # so that ``group · rows_per_chunk · cycles · columns`` stays within
        # the trials-mode scratch allowance (the solo element budget times
        # ``_TRIAL_SCRATCH_FACTOR`` — same heuristic as the trial-aware
        # :func:`throughput_chunk_size`, inverted for the group dimension and
        # without the logical-chunk clamps).  Sized on the *actual* chunk
        # rows (a small layer execution never fills ``chunk_size``), so small
        # batches keep the whole trial group in one kernel call.
        rows_per_chunk = min(chunk_size, solo_rows)
        per_row = max(1, mapped.num_input_cycles * total_columns)
        budget_rows = max(1, (_TRIAL_SCRATCH_FACTOR * _CHUNK_ELEMENT_BUDGET) // per_row)
        group = max(1, min(trials, budget_rows // max(1, rows_per_chunk)))
        # The sliced group states are cached per (layer, group size): the
        # kernel's per-run conversion setup (stacked noise state, combined
        # trial LUTs) is identity-keyed on these objects, so they must stay
        # stable across forward batches for the setup to amortize.
        group_noise = self._group_noise.get((name, group))
        if group_noise is None:
            group_noise = [
                TrialNoiseStates(noise.states[g : g + group])
                for g in range(0, trials, group)
            ]
            self._group_noise[(name, group)] = group_noise

        stats = [self._trial_stats_for(t, name, kind, mapped) for t in range(trials)]
        prev_regions = [
            self._region_counters(adc) for adc in (adcs or [None] * trials)
        ]
        conversions_per_mvm = mapped.footprint().conversions_per_mvm
        try:
            for start in range(0, solo_rows, chunk_size):
                stop = min(start + chunk_size, solo_rows)
                noise.next_chunk()
                chunk = codes[:, start:stop]
                for index, g in enumerate(range(0, trials, group)):
                    g_stop = min(g + group, trials)
                    merged, ops = mapped.matmul_trials(
                        chunk[g:g_stop],
                        None if adcs is None else adcs[g:g_stop],
                        group_noise[index],
                        engine=self.engine,
                    )
                    outputs[g:g_stop, start:stop] = merged
                    for offset, t in enumerate(range(g, g_stop)):
                        stats[t].mvm_count += stop - start
                        stats[t].conversions += (stop - start) * conversions_per_mvm
                        stats[t].operations += int(ops[offset])
        finally:
            mapped.release_scratch()
        for t in range(trials):
            adc = None if adcs is None else adcs[t]
            new_r1, new_r2 = self._region_counters(adc)
            stats[t].in_r1 += new_r1 - prev_regions[t][0]
            stats[t].in_r2 += new_r2 - prev_regions[t][1]

        return outputs.reshape(rows, mapped.out_features) * lq.output_scale

    # ------------------------------------------------------------------ #
    # core execution
    # ------------------------------------------------------------------ #
    def _execute(self, name: str, kind: str, x_rows: np.ndarray) -> np.ndarray:
        """Run ``x_rows`` (MVM input vectors, one per row) through the datapath."""
        if self._trial_stacks is not None:
            return self._execute_trials(name, kind, x_rows)
        lq = self.quantized.layer(name)
        if lq.input_params.signed:
            raise NotImplementedError(
                f"layer '{name}' has signed inputs; the differential crossbar "
                "mapping implemented here expects non-negative MVM inputs "
                "(images or post-ReLU activations)"
            )
        mapped = self._mapped_layer(name, kind)
        adc = self._adc_for(name)
        noise_state = self._noise_for(name, mapped)
        stats = self._stats_for(name, kind, mapped)
        if self.collector is not None:
            self.collector.set_layer(name)

        input_codes = lq.input_params.quantize(x_rows)
        rows = input_codes.shape[0]
        outputs = np.empty((rows, mapped.out_features), dtype=np.float64)
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = throughput_chunk_size(
                mapped.num_input_cycles,
                2 * mapped.num_weight_planes * mapped.out_features,
            )

        # The collector records the ideal (noise-free) bit-line values the
        # crossbar produces; noise, when enabled, perturbs the blocks after
        # the observer so only the conversion sees it.
        observer = self.collector

        prev_r1, prev_r2 = self._region_counters(adc)
        try:
            for start in range(0, rows, chunk_size):
                chunk = input_codes[start : start + chunk_size]
                if noise_state is not None:
                    noise_state.next_chunk()
                merged, ops = mapped.matmul(
                    chunk,
                    adc=adc,
                    partial_observer=observer,
                    engine=self.engine,
                    noise=noise_state,
                )
                outputs[start : start + chunk.shape[0]] = merged
                conversions = chunk.shape[0] * mapped.footprint().conversions_per_mvm
                stats.mvm_count += chunk.shape[0]
                stats.conversions += conversions
                stats.operations += int(ops)
        finally:
            # Scratch buffers are reused across the chunks above; free them so
            # peak memory is bounded by one layer's working set at a time.
            mapped.release_scratch()
        new_r1, new_r2 = self._region_counters(adc)
        stats.in_r1 += new_r1 - prev_r1
        stats.in_r2 += new_r2 - prev_r2

        return outputs * lq.output_scale

    @staticmethod
    def _region_counters(adc) -> Tuple[int, int]:
        stats = getattr(adc, "stats", None)
        if stats is None:
            return 0, 0
        return stats.in_r1, stats.in_r2

    # ------------------------------------------------------------------ #
    # ComputeBackend protocol
    # ------------------------------------------------------------------ #
    def conv2d(
        self,
        layer: Conv2d,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        name = self._layer_name(layer)
        cols, (oh, ow) = F.im2col(x, layer.kernel_size, stride, padding)
        out = self._execute(name, "conv", cols)
        if bias is not None:
            out = out + bias
        n = x.shape[0]
        return out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)

    def linear(
        self,
        layer: Linear,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> np.ndarray:
        name = self._layer_name(layer)
        out = self._execute(name, "linear", x)
        if bias is not None:
            out = out + bias
        return out

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Clear all accumulated per-layer statistics."""
        self.layer_stats.clear()
        for stats in self.trial_layer_stats:
            stats.clear()
        for adc in self._adcs.values():
            if adc is not None:
                adc.reset_stats()
        for adcs in self._trial_adcs.values():
            for adc in adcs or ():
                adc.reset_stats()

    def mapping_footprints(self) -> Dict[str, object]:
        """Resource footprint of every layer mapped so far."""
        return {name: mapped.footprint() for name, mapped in self._mapped.items()}
