"""Result containers of the PIM simulation and Monte Carlo robustness runs."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.adc.counters import ConversionStats
from repro.utils.numeric import normal_quantile


@dataclasses.dataclass
class LayerSimStats:
    """Per-layer accounting of one simulation run."""

    name: str
    kind: str
    mvm_count: int = 0
    conversions: int = 0
    operations: int = 0
    in_r1: int = 0
    in_r2: int = 0
    crossbar_pairs: int = 0
    conversions_per_mvm: int = 0

    @property
    def mean_ops_per_conversion(self) -> float:
        return self.operations / self.conversions if self.conversions else 0.0

    def remaining_fraction(self, baseline_ops_per_conversion: int) -> float:
        """Fraction of A/D operations relative to the full-resolution baseline."""
        if self.conversions == 0:
            return 0.0
        return self.operations / (self.conversions * baseline_ops_per_conversion)

    def merge_conversion_stats(self, stats: ConversionStats) -> None:
        self.conversions += stats.conversions
        self.operations += stats.operations
        self.in_r1 += stats.in_r1
        self.in_r2 += stats.in_r2

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (exact: every field is an int or str)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LayerSimStats":
        return cls(**data)


@dataclasses.dataclass
class SimulationResult:
    """Outcome of evaluating a model on the PIM datapath."""

    accuracy: float
    num_images: int
    layer_stats: Dict[str, LayerSimStats]
    baseline_ops_per_conversion: int
    logits: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def total_conversions(self) -> int:
        return sum(s.conversions for s in self.layer_stats.values())

    @property
    def total_operations(self) -> int:
        return sum(s.operations for s in self.layer_stats.values())

    @property
    def mean_ops_per_conversion(self) -> float:
        conversions = self.total_conversions
        return self.total_operations / conversions if conversions else 0.0

    @property
    def remaining_ops_fraction(self) -> float:
        """Paper Fig. 6c metric: remaining A/D operations vs. the baseline."""
        conversions = self.total_conversions
        if conversions == 0:
            return 0.0
        baseline = conversions * self.baseline_ops_per_conversion
        return self.total_operations / baseline

    @property
    def ops_reduction_factor(self) -> float:
        """Paper abstract metric: baseline/TRQ A/D-operation ratio (1.6-2.3×)."""
        remaining = self.remaining_ops_fraction
        return 1.0 / remaining if remaining > 0 else float("inf")

    def per_layer_remaining_fraction(self) -> Dict[str, float]:
        return {
            name: stats.remaining_fraction(self.baseline_ops_per_conversion)
            for name, stats in self.layer_stats.items()
        }

    def summary(self) -> Dict[str, float]:
        """Flat dictionary convenient for tabulation and JSON export."""
        return {
            "accuracy": self.accuracy,
            "num_images": float(self.num_images),
            "total_conversions": float(self.total_conversions),
            "total_operations": float(self.total_operations),
            "mean_ops_per_conversion": self.mean_ops_per_conversion,
            "remaining_ops_fraction": self.remaining_ops_fraction,
            "ops_reduction_factor": self.ops_reduction_factor,
        }

    # ------------------------------------------------------------------ #
    # Exact round-trip for the experiment result store: the JSON payload
    # carries the scalar fields and per-layer counters; the float64 arrays
    # (logits/labels) travel separately as NPZ so the restored result is
    # bit-identical — which is what lets a stored clean reference feed
    # ``PimSimulator.run_monte_carlo(clean=...)`` across processes and runs.
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict of everything except the arrays."""
        return {
            "accuracy": self.accuracy,
            "num_images": int(self.num_images),
            "baseline_ops_per_conversion": int(self.baseline_ops_per_conversion),
            "layer_stats": {
                name: stats.to_dict() for name, stats in self.layer_stats.items()
            },
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, object],
        logits: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> "SimulationResult":
        """Inverse of :meth:`to_payload` (arrays supplied separately)."""
        return cls(
            accuracy=float(payload["accuracy"]),
            num_images=int(payload["num_images"]),
            layer_stats={
                name: LayerSimStats.from_dict(stats)
                for name, stats in payload["layer_stats"].items()
            },
            baseline_ops_per_conversion=int(payload["baseline_ops_per_conversion"]),
            logits=None if logits is None else np.asarray(logits, dtype=np.float64),
            labels=None if labels is None else np.asarray(labels),
        )


# --------------------------------------------------------------------- #
# Monte Carlo robustness
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class LayerRobustnessStats:
    """Per-layer degradation statistics across Monte Carlo noise trials.

    Noise shifts which region a twin-range conversion resolves in (changing
    the A/D operation count) and, for integer-domain faults, the converted
    values themselves; this container reports the drift of the per-layer
    operation/region counters relative to the clean run.
    """

    name: str
    clean_remaining_fraction: float
    mean_remaining_fraction: float
    std_remaining_fraction: float
    clean_r1_fraction: float
    mean_r1_fraction: float
    std_r1_fraction: float

    @classmethod
    def from_trials(
        cls,
        name: str,
        clean: Optional["LayerSimStats"],
        trials: List["LayerSimStats"],
        baseline_ops: int,
    ) -> "LayerRobustnessStats":
        def r1_fraction(stats: "LayerSimStats") -> float:
            return stats.in_r1 / stats.conversions if stats.conversions else 0.0

        remaining = np.array(
            [stats.remaining_fraction(baseline_ops) for stats in trials], dtype=np.float64
        )
        r1 = np.array([r1_fraction(stats) for stats in trials], dtype=np.float64)
        ddof = 1 if len(trials) > 1 else 0
        return cls(
            name=name,
            clean_remaining_fraction=(
                clean.remaining_fraction(baseline_ops) if clean is not None else 0.0
            ),
            mean_remaining_fraction=float(remaining.mean()) if remaining.size else 0.0,
            std_remaining_fraction=float(remaining.std(ddof=ddof)) if remaining.size else 0.0,
            clean_r1_fraction=r1_fraction(clean) if clean is not None else 0.0,
            mean_r1_fraction=float(r1.mean()) if r1.size else 0.0,
            std_r1_fraction=float(r1.std(ddof=ddof)) if r1.size else 0.0,
        )


@dataclasses.dataclass
class MonteCarloResult:
    """Outcome of :meth:`repro.sim.PimSimulator.run_monte_carlo`.

    ``accuracies`` and ``flip_rates`` hold one entry per trial; the summary
    statistics use the sample standard deviation and a normal-approximation
    confidence interval on the mean (the trial count is the lever: the
    interval half-width shrinks as ``1/sqrt(trials)``).
    """

    trials: int
    seed: int
    confidence: float
    accuracies: np.ndarray
    flip_rates: np.ndarray
    clean_accuracy: float
    layer_stats: Dict[str, LayerRobustnessStats]
    noise_specs: Optional[List[Dict[str, object]]] = None
    baseline_ops_per_conversion: int = 0

    # ------------------------------------------------------------------ #
    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        ddof = 1 if self.trials > 1 else 0
        return float(np.std(self.accuracies, ddof=ddof))

    @property
    def mean_accuracy_drop(self) -> float:
        """Mean degradation relative to the clean (noise-free) run."""
        return self.clean_accuracy - self.mean_accuracy

    @property
    def mean_flip_rate(self) -> float:
        """Mean fraction of predictions flipped vs the clean run."""
        return float(np.mean(self.flip_rates))

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the confidence interval on the mean accuracy."""
        if self.trials < 2:
            return float("inf")
        z = normal_quantile(0.5 + self.confidence / 2.0)
        return float(z * self.std_accuracy / np.sqrt(self.trials))

    @property
    def accuracy_ci(self) -> Tuple[float, float]:
        half = self.ci_halfwidth
        mean = self.mean_accuracy
        return mean - half, mean + half

    @property
    def worst_accuracy(self) -> float:
        return float(np.min(self.accuracies))

    def summary(self) -> Dict[str, Optional[float]]:
        """Flat dictionary convenient for tabulation and JSON export.

        Non-finite statistics (the confidence interval is undefined for a
        single trial) are reported as ``None`` so the dictionary stays
        strict-JSON serializable.
        """

        def finite(value: float) -> Optional[float]:
            return float(value) if np.isfinite(value) else None

        low, high = self.accuracy_ci
        return {
            "trials": float(self.trials),
            "clean_accuracy": self.clean_accuracy,
            "mean_accuracy": self.mean_accuracy,
            "std_accuracy": self.std_accuracy,
            "mean_accuracy_drop": self.mean_accuracy_drop,
            "worst_accuracy": self.worst_accuracy,
            "accuracy_ci_low": finite(low),
            "accuracy_ci_high": finite(high),
            "ci_halfwidth": finite(self.ci_halfwidth),
            "mean_flip_rate": self.mean_flip_rate,
        }
