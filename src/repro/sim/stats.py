"""Result containers of the PIM simulation."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.adc.counters import ConversionStats


@dataclasses.dataclass
class LayerSimStats:
    """Per-layer accounting of one simulation run."""

    name: str
    kind: str
    mvm_count: int = 0
    conversions: int = 0
    operations: int = 0
    in_r1: int = 0
    in_r2: int = 0
    crossbar_pairs: int = 0
    conversions_per_mvm: int = 0

    @property
    def mean_ops_per_conversion(self) -> float:
        return self.operations / self.conversions if self.conversions else 0.0

    def remaining_fraction(self, baseline_ops_per_conversion: int) -> float:
        """Fraction of A/D operations relative to the full-resolution baseline."""
        if self.conversions == 0:
            return 0.0
        return self.operations / (self.conversions * baseline_ops_per_conversion)

    def merge_conversion_stats(self, stats: ConversionStats) -> None:
        self.conversions += stats.conversions
        self.operations += stats.operations
        self.in_r1 += stats.in_r1
        self.in_r2 += stats.in_r2


@dataclasses.dataclass
class SimulationResult:
    """Outcome of evaluating a model on the PIM datapath."""

    accuracy: float
    num_images: int
    layer_stats: Dict[str, LayerSimStats]
    baseline_ops_per_conversion: int
    logits: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def total_conversions(self) -> int:
        return sum(s.conversions for s in self.layer_stats.values())

    @property
    def total_operations(self) -> int:
        return sum(s.operations for s in self.layer_stats.values())

    @property
    def mean_ops_per_conversion(self) -> float:
        conversions = self.total_conversions
        return self.total_operations / conversions if conversions else 0.0

    @property
    def remaining_ops_fraction(self) -> float:
        """Paper Fig. 6c metric: remaining A/D operations vs. the baseline."""
        conversions = self.total_conversions
        if conversions == 0:
            return 0.0
        baseline = conversions * self.baseline_ops_per_conversion
        return self.total_operations / baseline

    @property
    def ops_reduction_factor(self) -> float:
        """Paper abstract metric: baseline/TRQ A/D-operation ratio (1.6-2.3×)."""
        remaining = self.remaining_ops_fraction
        return 1.0 / remaining if remaining > 0 else float("inf")

    def per_layer_remaining_fraction(self) -> Dict[str, float]:
        return {
            name: stats.remaining_fraction(self.baseline_ops_per_conversion)
            for name, stats in self.layer_stats.items()
        }

    def summary(self) -> Dict[str, float]:
        """Flat dictionary convenient for tabulation and JSON export."""
        return {
            "accuracy": self.accuracy,
            "num_images": float(self.num_images),
            "total_conversions": float(self.total_conversions),
            "total_operations": float(self.total_operations),
            "mean_ops_per_conversion": self.mean_ops_per_conversion,
            "remaining_ops_fraction": self.remaining_ops_fraction,
            "ops_reduction_factor": self.ops_reduction_factor,
        }
