"""Capture of bit-line value distributions (paper Fig. 3a).

The calibration search and the distribution figure both need samples of the
raw analog values appearing at the crossbar bit lines.  A full network
produces hundreds of millions of such values even for a few images, so the
collector keeps a bounded reservoir per layer: every incoming block is
subsampled with a decaying acceptance probability such that the retained set
is an (approximately) uniform sample of everything seen.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, derive_seed, new_rng
from repro.utils.validation import check_in_range, check_integer


class ReservoirSampler:
    """Bounded uniform subsample of a stream of arrays."""

    def __init__(self, capacity: int = 100_000, seed: SeedLike = None) -> None:
        check_in_range(check_integer(capacity, "capacity"), "capacity", low=1)
        self.capacity = int(capacity)
        self._rng = new_rng(seed)
        self._chunks: List[np.ndarray] = []
        self._stored = 0
        self.total_seen = 0

    def add(self, values: np.ndarray) -> None:
        """Offer a block of values to the reservoir."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.total_seen += values.size
        remaining = self.capacity - self._stored
        if remaining >= values.size:
            self._chunks.append(values.copy())
            self._stored += values.size
            return
        # Keep the acceptance rate proportional to capacity / total_seen so
        # early and late blocks end up equally represented.
        rate = self.capacity / self.total_seen
        mask = self._rng.random(values.size) < rate
        accepted = values[mask]
        if accepted.size == 0:
            return
        if accepted.size > self.capacity:
            # A block much larger than everything seen so far can be accepted
            # almost wholesale; clamp it to the capacity bound by a uniform
            # subsample before it displaces the current reservoir.
            keep = self._rng.choice(accepted.size, size=self.capacity, replace=False)
            accepted = accepted[np.sort(keep)]
        if self._stored + accepted.size > self.capacity:
            # Evict uniformly to make room.
            current = self.values
            keep = self._rng.choice(
                current.size, size=self.capacity - accepted.size, replace=False
            )
            self._chunks = [current[np.sort(keep)]]
            self._stored = self._chunks[0].size
        self._chunks.append(accepted)
        self._stored += accepted.size

    @property
    def values(self) -> np.ndarray:
        """Everything currently retained (concatenated copy)."""
        if not self._chunks:
            return np.empty(0, dtype=np.float64)
        if len(self._chunks) > 1:
            merged = np.concatenate(self._chunks)
            self._chunks = [merged]
        return self._chunks[0]

    def __len__(self) -> int:
        return self._stored


class DistributionCollector:
    """Per-layer reservoirs of bit-line values.

    An instance is handed to the PIM backend as the ``partial_observer``; the
    backend tags blocks with the active layer name via :meth:`set_layer`.
    """

    def __init__(self, capacity_per_layer: int = 100_000, seed: SeedLike = None) -> None:
        self.capacity_per_layer = int(capacity_per_layer)
        self._seed = seed
        self._samplers: Dict[str, ReservoirSampler] = {}
        self._active_layer: Optional[str] = None

    def set_layer(self, name: str) -> None:
        """Select which layer subsequent blocks belong to."""
        self._active_layer = name
        if name not in self._samplers:
            self._samplers[name] = ReservoirSampler(
                self.capacity_per_layer, seed=self._layer_seed(name)
            )

    def _layer_seed(self, name: str) -> SeedLike:
        """Derive a per-layer seed so layers subsample *independently*.

        Handing every layer the same seed would make all reservoirs draw
        identical acceptance streams (correlated subsampling across layers);
        deriving a child seed per layer name keeps the overall collection
        reproducible while decorrelating the layers.
        """
        if isinstance(self._seed, np.random.Generator):
            return int(self._seed.integers(0, 2**63 - 1))
        base = 0 if self._seed is None else int(self._seed)
        return derive_seed(base, "collector", name)

    def __call__(self, values: np.ndarray) -> None:
        if self._active_layer is None:
            raise RuntimeError("DistributionCollector used before set_layer()")
        self._samplers[self._active_layer].add(values)

    # ------------------------------------------------------------------ #
    @property
    def layer_names(self) -> List[str]:
        return list(self._samplers)

    def samples(self, layer: str) -> np.ndarray:
        if layer not in self._samplers:
            raise KeyError(f"no samples collected for layer '{layer}'")
        return self._samplers[layer].values

    def all_samples(self) -> Dict[str, np.ndarray]:
        return {name: sampler.values for name, sampler in self._samplers.items()}

    def total_seen(self, layer: str) -> int:
        return self._samplers[layer].total_seen if layer in self._samplers else 0
