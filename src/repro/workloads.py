"""Ready-made workload preparation shared by examples, tests and benchmarks.

The paper's evaluation needs, for every workload, a *trained* model, a
calibration set, a PTQ-quantized model and a simulator.  This module bundles
those steps behind :func:`prepare_workload`, with an optional on-disk cache
for the trained weights so repeated benchmark runs skip the (NumPy) training.

Training budgets per preset are deliberately small; the goal is a model well
above chance accuracy (so ADC-induced degradation is measurable), not state
of the art.  See DESIGN.md for the dataset substitution rationale.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.datasets import DataLoader, SyntheticImageDataset, build_dataset, sample_calibration_set
from repro.datasets.synthetic import DatasetSplit
from repro.nn import Adam, Trainer
from repro.nn.models import build_model, preset_structure, workload_info
from repro.nn.module import Module
from repro.quantization import QuantizedModel, quantize_model
from repro.sim import PimSimulator
from repro.utils.config import stable_digest
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("workloads")

#: Default training budget (epochs) per preset; tuned so each workload trains
#: in seconds-to-a-minute on a laptop CPU while clearly exceeding chance.
_EPOCHS_BY_PRESET = {"tiny": 20, "small": 25, "paper": 30}


def default_epochs(preset: str) -> int:
    """Training budget used when ``epochs=None`` is passed for ``preset``.

    Public so declarative experiment specs (:mod:`repro.experiments`) can
    resolve a job's *effective* epoch count before hashing it.
    """
    return _EPOCHS_BY_PRESET.get(preset, 20)


#: Training hyper-parameter defaults, shared by :func:`train_workload_model`
#: and :func:`workload_fingerprint` so editing them can never serve weights
#: cached under the old values.
_DEFAULT_LEARNING_RATE = 3e-3
_DEFAULT_BATCH_SIZE = 32


@dataclasses.dataclass
class PreparedWorkload:
    """Everything needed to run the paper's experiments on one workload."""

    name: str
    preset: str
    model: Module
    dataset: SyntheticImageDataset
    calibration: DatasetSplit
    quantized: QuantizedModel
    simulator: PimSimulator
    float_accuracy: float

    def eval_split(self, num_images: Optional[int] = None) -> DatasetSplit:
        """Test images used for accuracy evaluation (optionally truncated)."""
        if num_images is None or num_images >= len(self.dataset.test):
            return self.dataset.test
        return self.dataset.test.subset(np.arange(num_images))


def workload_fingerprint(
    name: str,
    preset: str,
    train_size: int,
    epochs: int,
    seed: int,
    learning_rate: float = _DEFAULT_LEARNING_RATE,
    batch_size: int = _DEFAULT_BATCH_SIZE,
) -> Dict[str, object]:
    """The *full* configuration that determines a workload's trained weights.

    Beyond the obvious training knobs this resolves the preset's structural
    parameters (width multiplier, block counts) and the workload's dataset
    shape from the registries, so the returned dict changes whenever any of
    them is edited.  Both the trained-weight cache below and the experiment
    result store (:mod:`repro.experiments`) hash this dict — a stale artefact
    can therefore never be served for a modified configuration.
    """
    return {
        "name": str(name),
        "preset": str(preset),
        "preset_structure": preset_structure(preset),
        "workload_info": workload_info(name),
        "train_size": int(train_size),
        "epochs": int(epochs),
        "learning_rate": float(learning_rate),
        "batch_size": int(batch_size),
        "seed": int(seed),
    }


def _cache_path(cache_dir: Path, name: str, preset: str, train_size: int, epochs: int, seed: int) -> Path:
    # The filename keeps the human-readable knobs, but the cache *key* is the
    # digest of the full resolved configuration: editing a preset's structure
    # (or a workload's dataset shape) changes the digest, so a stale weight
    # file can never be loaded for the new configuration.
    digest = stable_digest(
        workload_fingerprint(name, preset, train_size, epochs, seed), length=12
    )
    return cache_dir / f"{name}_{preset}_n{train_size}_e{epochs}_s{seed}_{digest}.npz"


def _save_state(model: Module, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **model.state_dict())


def _load_state(model: Module, path: Path) -> bool:
    if not path.exists():
        return False
    try:
        with np.load(path) as data:
            model.load_state_dict({key: data[key] for key in data.files})
        return True
    except (KeyError, ValueError, OSError) as error:
        logger.warning("ignoring incompatible cache %s (%s)", path, error)
        return False


def train_workload_model(
    name: str,
    dataset: SyntheticImageDataset,
    preset: str = "tiny",
    epochs: Optional[int] = None,
    learning_rate: float = _DEFAULT_LEARNING_RATE,
    batch_size: int = _DEFAULT_BATCH_SIZE,
    seed: int = 0,
) -> Module:
    """Train one of the paper's model topologies on a synthetic dataset."""
    model = build_model(name, preset=preset, num_classes=dataset.num_classes, rng=seed)
    epochs = epochs if epochs is not None else _EPOCHS_BY_PRESET.get(preset, 20)
    trainer = Trainer(model, Adam(model.parameters(), lr=learning_rate))
    trainer.fit(
        lambda: DataLoader(
            dataset.train, batch_size, shuffle=True, seed=derive_seed(seed, "loader")
        ),
        epochs=epochs,
    )
    model.eval()
    return model


def prepare_workload(
    name: str,
    preset: str = "tiny",
    train_size: int = 384,
    test_size: int = 128,
    calibration_images: int = 32,
    epochs: Optional[int] = None,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> PreparedWorkload:
    """Build the full evaluation stack for one paper workload.

    Parameters
    ----------
    name:
        ``lenet5``, ``resnet20``, ``resnet18`` or ``squeezenet1_1``.
    preset:
        Structural scale (``tiny``/``small``/``paper``) — see the model
        registry.
    calibration_images:
        Size of the calibration set (32 in the paper).
    cache_dir:
        When given, trained weights are cached there keyed by the training
        configuration, so repeated runs skip training.
    """
    info = workload_info(name)
    dataset = build_dataset(
        info["dataset"],
        train_size=train_size,
        test_size=test_size,
        seed=derive_seed(seed, "dataset", name),
    )
    epochs_resolved = epochs if epochs is not None else _EPOCHS_BY_PRESET.get(preset, 20)

    model = build_model(name, preset=preset, num_classes=dataset.num_classes, rng=seed)
    loaded = False
    cache_file: Optional[Path] = None
    if cache_dir is not None:
        cache_file = _cache_path(Path(cache_dir), name, preset, train_size, epochs_resolved, seed)
        loaded = _load_state(model, cache_file)
    if not loaded:
        model = train_workload_model(
            name, dataset, preset=preset, epochs=epochs_resolved, seed=seed
        )
        if cache_file is not None:
            _save_state(model, cache_file)
    model.eval()

    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
    float_accuracy = trainer.evaluate(DataLoader(dataset.test, 64))["accuracy"]

    calibration = sample_calibration_set(
        dataset.train, num_images=calibration_images, seed=derive_seed(seed, "calib")
    )
    quantized = quantize_model(model, calibration.images)
    simulator = PimSimulator(quantized, chunk_size=chunk_size)
    return PreparedWorkload(
        name=name,
        preset=preset,
        model=model,
        dataset=dataset,
        calibration=calibration,
        quantized=quantized,
        simulator=simulator,
        float_accuracy=float_accuracy,
    )


def prepare_all_workloads(
    preset: str = "tiny",
    train_size: int = 384,
    test_size: int = 128,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    names: Optional[list] = None,
) -> Dict[str, PreparedWorkload]:
    """Prepare every workload of the paper's evaluation (Section V-A)."""
    names = names or ["lenet5", "resnet20", "resnet18", "squeezenet1_1"]
    return {
        name: prepare_workload(
            name,
            preset=preset,
            train_size=train_size,
            test_size=test_size,
            seed=seed,
            cache_dir=cache_dir,
        )
        for name in names
    }
