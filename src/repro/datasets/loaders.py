"""Mini-batch iteration over dataset splits."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.datasets.synthetic import DatasetSplit
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


class DataLoader:
    """Iterates ``(images, labels)`` mini-batches over a :class:`DatasetSplit`.

    Iterating the loader twice yields the same order unless ``shuffle`` is
    enabled, in which case each pass re-shuffles with the loader's generator
    (so epochs differ but the whole sequence is reproducible from the seed).
    """

    def __init__(
        self,
        split: DatasetSplit,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: SeedLike = None,
    ) -> None:
        check_positive(batch_size, "batch_size")
        self.split = split
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        n = len(self.split)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.split)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and idx.shape[0] < self.batch_size:
                break
            yield self.split.images[idx], self.split.labels[idx]
