"""Calibration-set sampling.

The paper calibrates ADC configurations on 32 images randomly selected from
the training set (Section V-A).  This module reproduces that protocol and
also provides stratified sampling so small calibration sets still cover all
classes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DatasetSplit
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


def sample_calibration_set(
    split: DatasetSplit,
    num_images: int = 32,
    stratified: bool = True,
    seed: SeedLike = None,
) -> DatasetSplit:
    """Select ``num_images`` calibration images from ``split``.

    Parameters
    ----------
    split:
        Typically the training split (the paper calibrates on training data).
    num_images:
        Calibration-set size; the paper uses 32.
    stratified:
        When True, samples are spread as evenly as possible over the classes
        present in the split; remaining slots are filled uniformly at random.
    """
    check_positive(num_images, "num_images")
    if num_images > len(split):
        raise ValueError(
            f"requested {num_images} calibration images but split has {len(split)}"
        )
    rng = new_rng(seed)

    if not stratified:
        indices = rng.choice(len(split), size=num_images, replace=False)
        return split.subset(np.sort(indices))

    labels = split.labels
    classes = np.unique(labels)
    per_class = max(1, num_images // len(classes))
    chosen: list = []
    for cls in classes:
        cls_indices = np.flatnonzero(labels == cls)
        take = min(per_class, cls_indices.shape[0])
        chosen.extend(rng.choice(cls_indices, size=take, replace=False).tolist())
    chosen = chosen[:num_images]
    if len(chosen) < num_images:
        remaining = np.setdiff1d(np.arange(len(split)), np.array(chosen, dtype=np.int64))
        extra = rng.choice(remaining, size=num_images - len(chosen), replace=False)
        chosen.extend(extra.tolist())
    return split.subset(np.sort(np.array(chosen, dtype=np.int64)))
