"""Synthetic dataset substrates standing in for MNIST / CIFAR-10 / ImageNet."""

from repro.datasets.calibration import sample_calibration_set
from repro.datasets.generators import ImageSpec, build_prototypes, make_class_prototype, sample_images
from repro.datasets.loaders import DataLoader
from repro.datasets.synthetic import (
    DatasetSplit,
    SyntheticImageDataset,
    build_dataset,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)

__all__ = [
    "DataLoader",
    "DatasetSplit",
    "ImageSpec",
    "SyntheticImageDataset",
    "build_dataset",
    "build_prototypes",
    "make_class_prototype",
    "sample_calibration_set",
    "sample_images",
    "synthetic_cifar10",
    "synthetic_imagenet",
    "synthetic_mnist",
]
