"""Procedural image generators for the synthetic classification datasets.

The paper evaluates on MNIST, CIFAR-10 and ImageNet.  None of these can be
downloaded in this environment, so each dataset is replaced by a synthetic
classification task of the same tensor shape: every class gets a procedurally
generated *prototype* composed of localized blobs, oriented gratings and a
class-specific colour cast, and samples are produced by jittering the
prototype (random shift, amplitude scaling, additive noise, occlusion).

Why this preserves the relevant behaviour: the co-design pipeline only needs
(1) a model that reaches well-above-chance accuracy so that accuracy
degradation under ADC quantization is measurable, and (2) realistic sparse,
skewed post-ReLU activations feeding the crossbars.  Both properties depend
on the model and datapath, not on natural-image semantics.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, derive_seed, new_rng
from repro.utils.validation import check_in_range, check_positive


@dataclasses.dataclass(frozen=True)
class ImageSpec:
    """Shape and perturbation parameters of a synthetic image distribution."""

    num_classes: int
    channels: int
    height: int
    width: int
    noise_std: float = 0.15
    max_shift: int = 2
    amplitude_jitter: float = 0.2
    occlusion_probability: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.num_classes, "num_classes")
        check_positive(self.channels, "channels")
        check_positive(self.height, "height")
        check_positive(self.width, "width")
        check_in_range(self.noise_std, "noise_std", low=0.0)
        check_in_range(self.max_shift, "max_shift", low=0)
        check_in_range(self.occlusion_probability, "occlusion_probability", 0.0, 1.0)

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.height, self.width)


def _grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    ys = np.linspace(-1.0, 1.0, height)
    xs = np.linspace(-1.0, 1.0, width)
    return np.meshgrid(ys, xs, indexing="ij")


def make_class_prototype(spec: ImageSpec, class_index: int, seed: int) -> np.ndarray:
    """Deterministic prototype image for ``class_index``.

    The prototype mixes 2-3 Gaussian blobs, one oriented sinusoidal grating
    and a per-channel offset, all drawn from a seed derived from the class
    index — so the same (seed, class) pair always produces the same pattern.
    """
    rng = new_rng(derive_seed(seed, "prototype", class_index))
    yy, xx = _grid(spec.height, spec.width)
    canvas = np.zeros((spec.channels, spec.height, spec.width), dtype=np.float64)

    num_blobs = int(rng.integers(2, 4))
    for _ in range(num_blobs):
        cy, cx = rng.uniform(-0.6, 0.6, size=2)
        sigma = rng.uniform(0.15, 0.45)
        amplitude = rng.uniform(0.5, 1.0)
        blob = amplitude * np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2)))
        channel = int(rng.integers(0, spec.channels))
        canvas[channel] += blob

    # Oriented grating shared across channels with per-channel phase.
    frequency = rng.uniform(1.5, 4.0)
    angle = rng.uniform(0.0, np.pi)
    direction = np.cos(angle) * xx + np.sin(angle) * yy
    for channel in range(spec.channels):
        phase = rng.uniform(0.0, 2 * np.pi)
        canvas[channel] += 0.35 * np.sin(2 * np.pi * frequency * direction + phase)

    # Class-specific colour cast keeps channels informative for RGB datasets.
    cast = rng.uniform(-0.3, 0.3, size=(spec.channels, 1, 1))
    canvas += cast

    # Normalise prototypes to a comparable dynamic range.
    canvas -= canvas.mean()
    scale = np.abs(canvas).max()
    if scale > 0:
        canvas /= scale
    return canvas


def _random_shift(rng: np.random.Generator, image: np.ndarray, max_shift: int) -> np.ndarray:
    if max_shift <= 0:
        return image
    dy = int(rng.integers(-max_shift, max_shift + 1))
    dx = int(rng.integers(-max_shift, max_shift + 1))
    return np.roll(np.roll(image, dy, axis=1), dx, axis=2)


def _random_occlusion(rng: np.random.Generator, image: np.ndarray, probability: float) -> np.ndarray:
    if rng.random() >= probability:
        return image
    _, h, w = image.shape
    oh = max(1, h // 4)
    ow = max(1, w // 4)
    top = int(rng.integers(0, h - oh + 1))
    left = int(rng.integers(0, w - ow + 1))
    occluded = image.copy()
    occluded[:, top : top + oh, left : left + ow] = 0.0
    return occluded


def sample_images(
    spec: ImageSpec,
    labels: np.ndarray,
    prototypes: np.ndarray,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw one jittered sample per label from the class prototypes.

    Returns an array of shape ``(len(labels), C, H, W)`` with values roughly
    in ``[-1.5, 1.5]``; the dataset wrapper rescales to ``[0, 1]``.
    """
    rng = new_rng(rng)
    labels = np.asarray(labels, dtype=np.int64)
    images = np.empty((labels.shape[0],) + spec.shape, dtype=np.float64)
    for i, label in enumerate(labels):
        image = prototypes[label].copy()
        amplitude = 1.0 + rng.uniform(-spec.amplitude_jitter, spec.amplitude_jitter)
        image *= amplitude
        image = _random_shift(rng, image, spec.max_shift)
        image = _random_occlusion(rng, image, spec.occlusion_probability)
        image += rng.normal(0.0, spec.noise_std, size=image.shape)
        images[i] = image
    return images


def build_prototypes(spec: ImageSpec, seed: int) -> np.ndarray:
    """All class prototypes stacked into ``(num_classes, C, H, W)``."""
    return np.stack(
        [make_class_prototype(spec, c, seed) for c in range(spec.num_classes)], axis=0
    )
