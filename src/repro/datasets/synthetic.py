"""Synthetic stand-ins for the paper's datasets (MNIST, CIFAR-10, ImageNet).

Each factory returns a :class:`SyntheticImageDataset` with deterministic
train/test splits generated from a single seed.  Images are scaled to
``[0, 1]`` like normalised natural images so that the 8-bit symmetric
activation quantization of the paper's datapath applies unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.datasets.generators import ImageSpec, build_prototypes, sample_images
from repro.utils.rng import SeedLike, derive_seed, new_rng
from repro.utils.validation import check_positive


@dataclasses.dataclass
class DatasetSplit:
    """A materialised split: ``images`` (N, C, H, W) float64 and ``labels`` (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels must have the same length")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def subset(self, indices: np.ndarray) -> "DatasetSplit":
        """A new split containing only ``indices`` (copies, never views)."""
        indices = np.asarray(indices, dtype=np.int64)
        return DatasetSplit(self.images[indices].copy(), self.labels[indices].copy())


class SyntheticImageDataset:
    """A deterministic synthetic classification dataset.

    Parameters
    ----------
    spec:
        Image geometry and perturbation parameters.
    train_size, test_size:
        Number of samples per split.
    seed:
        Single seed controlling prototypes and both splits.
    name:
        Human-readable name used in reports (e.g. ``"synthetic-cifar10"``).
    """

    def __init__(
        self,
        spec: ImageSpec,
        train_size: int = 512,
        test_size: int = 256,
        seed: int = 0,
        name: str = "synthetic",
    ) -> None:
        check_positive(train_size, "train_size")
        check_positive(test_size, "test_size")
        self.spec = spec
        self.name = name
        self.seed = int(seed)
        self._prototypes = build_prototypes(spec, seed=derive_seed(seed, "prototypes"))
        self.train = self._make_split(train_size, "train")
        self.test = self._make_split(test_size, "test")

    # ------------------------------------------------------------------ #
    def _make_split(self, size: int, split: str) -> DatasetSplit:
        rng = new_rng(derive_seed(self.seed, "split", split))
        labels = rng.integers(0, self.spec.num_classes, size=size)
        images = sample_images(self.spec, labels, self._prototypes, rng=rng)
        # Rescale to [0, 1]; post-ReLU activations then behave like those of
        # normalised natural images.
        low, high = images.min(), images.max()
        if high > low:
            images = (images - low) / (high - low)
        return DatasetSplit(images=images, labels=labels)

    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.spec.shape

    def __repr__(self) -> str:
        return (
            f"SyntheticImageDataset(name={self.name!r}, classes={self.num_classes}, "
            f"shape={self.image_shape}, train={len(self.train)}, test={len(self.test)})"
        )


# ---------------------------------------------------------------------- #
# Factories matching the paper's workloads
# ---------------------------------------------------------------------- #
def synthetic_mnist(
    train_size: int = 512,
    test_size: int = 256,
    seed: int = 0,
    image_size: int = 28,
) -> SyntheticImageDataset:
    """Grayscale 28×28, 10 classes — stands in for MNIST (LeNet-5 workload)."""
    spec = ImageSpec(num_classes=10, channels=1, height=image_size, width=image_size,
                     noise_std=0.12, max_shift=2)
    return SyntheticImageDataset(spec, train_size, test_size, seed, name="synthetic-mnist")


def synthetic_cifar10(
    train_size: int = 512,
    test_size: int = 256,
    seed: int = 0,
    image_size: int = 32,
) -> SyntheticImageDataset:
    """RGB 32×32, 10 classes — stands in for CIFAR-10 (ResNet-20 workload)."""
    spec = ImageSpec(num_classes=10, channels=3, height=image_size, width=image_size,
                     noise_std=0.15, max_shift=2)
    return SyntheticImageDataset(spec, train_size, test_size, seed, name="synthetic-cifar10")


def synthetic_imagenet(
    train_size: int = 512,
    test_size: int = 256,
    seed: int = 0,
    image_size: int = 32,
    num_classes: int = 10,
) -> SyntheticImageDataset:
    """RGB ``image_size``², ``num_classes`` classes — downscaled ImageNet stand-in
    (ResNet-18 and SqueezeNet1.1 workloads).  The paper uses 224×224/1000
    classes; see DESIGN.md for the substitution rationale."""
    spec = ImageSpec(num_classes=num_classes, channels=3, height=image_size,
                     width=image_size, noise_std=0.18, max_shift=3)
    return SyntheticImageDataset(spec, train_size, test_size, seed, name="synthetic-imagenet")


_FACTORIES = {
    "mnist": synthetic_mnist,
    "cifar10": synthetic_cifar10,
    "imagenet": synthetic_imagenet,
}


def build_dataset(
    name: str,
    train_size: int = 512,
    test_size: int = 256,
    seed: int = 0,
    **kwargs,
) -> SyntheticImageDataset:
    """Build a dataset by the paper's workload name (mnist/cifar10/imagenet)."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown dataset '{name}', available: {sorted(_FACTORIES)}")
    return _FACTORIES[name](train_size=train_size, test_size=test_size, seed=seed, **kwargs)
