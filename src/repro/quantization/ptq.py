"""Post-training quantization (PTQ) of a trained float model.

This reproduces the algorithm-level quantization the paper assumes as its
starting point (Section V-A): 8-bit symmetric uniform quantization of weights
and input activations with max-abs scaling calibrated on a handful of images,
no retraining.  The result — per-layer integer weights plus input/weight
scales — is exactly what the crossbar mapper consumes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quantization.observers import MinMaxObserver
from repro.quantization.qconfig import DEFAULT_QUANT_CONFIG, QuantizationConfig
from repro.quantization.uniform import QuantParams, symmetric_quant_params
from repro.utils.logging import get_logger

logger = get_logger("quantization.ptq")

#: Layer types that are executed as matrix-vector multiplications on crossbars.
MVM_LAYER_TYPES = (Conv2d, Linear)


@dataclasses.dataclass
class LayerQuantization:
    """Quantization artefacts of one MVM layer.

    Attributes
    ----------
    name:
        Dotted module path inside the model (e.g. ``"stage1.0.conv1"``).
    kind:
        ``"conv"`` or ``"linear"``.
    weight_params / input_params:
        Affine quantization parameters for the weights and the layer input.
    weight_codes:
        Integer weight codes with the same shape as the float weights.
    """

    name: str
    kind: str
    weight_params: QuantParams
    input_params: QuantParams
    weight_codes: np.ndarray

    @property
    def output_scale(self) -> float:
        """Scale of the integer MVM result (`input_scale × weight_scale`)."""
        return self.weight_params.scale * self.input_params.scale


@dataclasses.dataclass
class QuantizedModel:
    """A float model plus the per-layer PTQ artefacts needed by the PIM path."""

    model: Module
    layers: Dict[str, LayerQuantization]
    config: QuantizationConfig

    def layer(self, name: str) -> LayerQuantization:
        if name not in self.layers:
            raise KeyError(f"no quantization recorded for layer '{name}'")
        return self.layers[name]

    @property
    def layer_names(self) -> List[str]:
        return list(self.layers)


def find_mvm_layers(model: Module) -> List[Tuple[str, Module]]:
    """All (name, layer) pairs that map onto crossbars, in forward order."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, MVM_LAYER_TYPES)
    ]


def _observe_inputs(
    model: Module, calibration_images: np.ndarray, batch_size: int
) -> Dict[str, MinMaxObserver]:
    """Run calibration batches, recording each MVM layer's input range."""
    observers: Dict[str, MinMaxObserver] = {}
    handles = []
    for name, layer in find_mvm_layers(model):
        observer = MinMaxObserver()
        observers[name] = observer

        def hook(module, inputs, output, _observer=observer):
            _observer.observe(inputs)

        handles.append(layer.register_forward_hook(hook))

    model.eval()
    try:
        for start in range(0, calibration_images.shape[0], batch_size):
            model(calibration_images[start : start + batch_size])
    finally:
        for handle in handles:
            handle.remove()
    return observers


def quantize_model(
    model: Module,
    calibration_images: np.ndarray,
    config: Optional[QuantizationConfig] = None,
    batch_size: int = 32,
) -> QuantizedModel:
    """Apply max-abs PTQ to every Conv2d/Linear layer of ``model``.

    Parameters
    ----------
    model:
        A trained float model (left unmodified).
    calibration_images:
        ``(N, C, H, W)`` images used only to record activation ranges — the
        paper uses 32 training images.
    config:
        Bit-width configuration; defaults to the paper's 8/8/16 datapath.
    """
    if calibration_images.ndim != 4:
        raise ValueError(
            f"calibration_images must be (N, C, H, W), got {calibration_images.shape}"
        )
    config = config or DEFAULT_QUANT_CONFIG
    observers = _observe_inputs(model, calibration_images, batch_size)

    layers: Dict[str, LayerQuantization] = {}
    for name, layer in find_mvm_layers(model):
        observer = observers[name]
        weight = layer.weight.data
        weight_params = symmetric_quant_params(
            float(np.abs(weight).max()), config.weight_bits, signed=config.signed_weights
        )
        # MVM-layer inputs are non-negative in the supported topologies
        # (images and post-ReLU activations); fall back to a signed grid if a
        # custom model violates that assumption.
        signed_input = observer.min_value is not None and observer.min_value < -1e-9
        input_params = symmetric_quant_params(
            observer.max_abs, config.activation_bits, signed=signed_input
        )
        layers[name] = LayerQuantization(
            name=name,
            kind="conv" if isinstance(layer, Conv2d) else "linear",
            weight_params=weight_params,
            input_params=input_params,
            weight_codes=weight_params.quantize(weight),
        )
        logger.debug(
            "quantized %s: w_scale=%.3g in_scale=%.3g signed_in=%s",
            name, weight_params.scale, input_params.scale, signed_input,
        )
    return QuantizedModel(model=model, layers=layers, config=config)
