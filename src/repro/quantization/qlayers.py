"""Fake-quantized compute backend for algorithm-level accuracy references.

The paper's Fig. 6 includes an "8/f" reference point: the model with 8-bit
quantized weights and activations but an *ideal* (lossless) MVM datapath.
:class:`FakeQuantBackend` reproduces that reference by routing each MVM layer
through quantize → exact matmul → dequantize, without any crossbar or ADC
effects.  It plugs into ``Conv2d.compute_backend`` / ``Linear.compute_backend``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quantization.ptq import QuantizedModel, find_mvm_layers


class FakeQuantBackend:
    """Compute backend applying per-layer fake quantization to weights/inputs."""

    def __init__(self, quantized: QuantizedModel) -> None:
        self._quantized = quantized
        self._layer_names: Dict[int, str] = {
            id(layer): name for name, layer in find_mvm_layers(quantized.model)
        }

    def _params_for(self, layer: Module):
        name = self._layer_names.get(id(layer))
        if name is None:
            raise KeyError(
                "layer is not part of the quantized model this backend was built from"
            )
        return self._quantized.layer(name)

    def conv2d(
        self,
        layer: Conv2d,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        lq = self._params_for(layer)
        x_q = lq.input_params.quantize_dequantize(x)
        w_q = lq.weight_params.dequantize(lq.weight_codes)
        out, _, _ = F.conv2d_forward(x_q, w_q, bias, stride, padding)
        return out

    def linear(
        self,
        layer: Linear,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> np.ndarray:
        lq = self._params_for(layer)
        x_q = lq.input_params.quantize_dequantize(x)
        w_q = lq.weight_params.dequantize(lq.weight_codes)
        return F.linear_forward(x_q, w_q, bias)


def attach_backend(model: Module, backend) -> list:
    """Attach ``backend`` to every MVM layer of ``model``; returns the layers
    touched so the caller can detach later with :func:`detach_backend`."""
    touched = []
    for _, layer in find_mvm_layers(model):
        layer.compute_backend = backend
        touched.append(layer)
    return touched


def detach_backend(model: Module) -> None:
    """Remove any compute backend from every MVM layer of ``model``."""
    for _, layer in find_mvm_layers(model):
        layer.compute_backend = None
