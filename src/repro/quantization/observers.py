"""Observers collect activation statistics during calibration passes.

The paper's PTQ scheme determines weight/activation scaling factors from the
maximum absolute values seen on a 32-image calibration set (Section V-A).
Observers are attached to layers via forward hooks and accumulate the
statistics needed to derive those scales.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quantization.uniform import QuantParams, symmetric_quant_params
from repro.utils.validation import check_in_range, check_integer


class MinMaxObserver:
    """Tracks running min / max / max-abs of every tensor it observes."""

    def __init__(self, num_bits: int = 8, signed: bool = True) -> None:
        self.num_bits = check_integer(num_bits, "num_bits")
        check_in_range(self.num_bits, "num_bits", low=1, high=32)
        self.signed = bool(signed)
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.count = 0

    def observe(self, x: np.ndarray) -> None:
        """Update statistics with a new tensor."""
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            return
        batch_min = float(x.min())
        batch_max = float(x.max())
        self.min_value = batch_min if self.min_value is None else min(self.min_value, batch_min)
        self.max_value = batch_max if self.max_value is None else max(self.max_value, batch_max)
        self.count += int(x.size)

    @property
    def max_abs(self) -> float:
        if self.min_value is None or self.max_value is None:
            return 0.0
        return max(abs(self.min_value), abs(self.max_value))

    def quant_params(self) -> QuantParams:
        """Derive max-abs symmetric quantization parameters."""
        if self.count == 0:
            raise RuntimeError("observer has seen no data; run a calibration pass first")
        return symmetric_quant_params(self.max_abs, self.num_bits, self.signed)

    def reset(self) -> None:
        self.min_value = None
        self.max_value = None
        self.count = 0


class HistogramObserver(MinMaxObserver):
    """Min/max observer that also accumulates a value histogram.

    Used by the distribution-analysis step of the co-design search to judge
    whether a layer's values are skewed/unimodal/multimodal without keeping
    every sample in memory.
    """

    def __init__(
        self,
        num_bits: int = 8,
        signed: bool = True,
        num_bins: int = 128,
        range_hint: Optional[tuple] = None,
    ) -> None:
        super().__init__(num_bits=num_bits, signed=signed)
        if num_bins <= 1:
            raise ValueError(f"num_bins must be > 1, got {num_bins}")
        self.num_bins = int(num_bins)
        self._range_hint = range_hint
        self._counts: Optional[np.ndarray] = None
        self._edges: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        super().observe(x)
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size == 0:
            return
        if self._edges is None:
            low, high = self._range_hint if self._range_hint else (x.min(), x.max())
            if high <= low:
                high = low + 1.0
            # Widen slightly so later batches rarely fall outside.
            span = high - low
            self._edges = np.linspace(low - 0.5 * span, high + 0.5 * span, self.num_bins + 1)
            self._counts = np.zeros(self.num_bins, dtype=np.int64)
        counts, _ = np.histogram(np.clip(x, self._edges[0], self._edges[-1]), bins=self._edges)
        self._counts += counts

    @property
    def histogram(self) -> tuple:
        """``(counts, bin_edges)`` of everything observed so far."""
        if self._counts is None or self._edges is None:
            raise RuntimeError("observer has seen no data; run a calibration pass first")
        return self._counts.copy(), self._edges.copy()
