"""Uniform quantization primitives (paper Eq. 1).

Two flavours are used throughout the datapath:

* **Unsigned uniform quantization** ``Qk(x, Δ)`` — maps a non-negative real
  value onto ``{0, Δ, 2Δ, …, (2^k − 1)Δ}`` by rounding and clamping.  This is
  the paper's Eq. 1 and also the transfer function of an ideal ``k``-bit ADC
  whose LSB equals ``Δ``.
* **Symmetric signed quantization** — used for weights and (signed)
  activations at the algorithm level: an 8-bit integer grid centred on zero
  whose scale is set from the maximum absolute value (paper Section V-A).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.utils.numeric import round_half_up
from repro.utils.validation import check_in_range, check_integer, check_positive


def quantize_uniform(
    x: np.ndarray, delta: float, num_bits: int, dequantize: bool = True
) -> np.ndarray:
    """Paper Eq. 1: ``Qk(x, Δ) = Δ · clamp(round(x / Δ), 0, 2^k − 1)``.

    Parameters
    ----------
    x:
        Non-negative values (scalars or arrays).  Negative inputs are clamped
        to the bottom code, mirroring a single-ended ADC front end.
    delta:
        The quantization step ``Δ``.
    num_bits:
        The code width ``k``; the grid has ``2^k`` points (codes 0 … 2^k − 1).
    dequantize:
        When True (default) return values on the real grid (``code · Δ``);
        when False return the integer codes.
    """
    num_bits = check_integer(num_bits, "num_bits")
    check_in_range(num_bits, "num_bits", low=1, high=32)
    check_positive(delta, "delta")
    x = np.asarray(x, dtype=np.float64)
    max_code = (1 << num_bits) - 1
    codes = np.clip(round_half_up(x / delta), 0, max_code)
    if dequantize:
        return codes * delta
    return codes.astype(np.int64)


def uniform_grid(delta: float, num_bits: int) -> np.ndarray:
    """All representable values of :func:`quantize_uniform`."""
    max_code = (1 << check_integer(num_bits, "num_bits")) - 1
    return np.arange(max_code + 1, dtype=np.float64) * float(delta)


def delta_from_range(low: float, high: float, num_bits: int) -> float:
    """Step size for a ``num_bits`` uniform quantizer covering ``[low, high]``
    (paper Eq. 1: ``Δ = (b − a) / (2^k − 1)``)."""
    num_bits = check_integer(num_bits, "num_bits")
    if high <= low:
        raise ValueError(f"invalid range [{low}, {high}]")
    return (float(high) - float(low)) / ((1 << num_bits) - 1)


@dataclasses.dataclass(frozen=True)
class QuantParams:
    """Scale/zero-point pair describing an affine integer quantization.

    ``signed`` selects between a symmetric signed grid (weights) and an
    unsigned grid (post-ReLU activations).
    """

    scale: float
    num_bits: int
    signed: bool
    zero_point: int = 0

    def __post_init__(self) -> None:
        check_positive(self.scale, "scale")
        check_in_range(self.num_bits, "num_bits", low=1, high=32)

    @property
    def qmin(self) -> int:
        if self.signed:
            return -(1 << (self.num_bits - 1)) + 1
        return 0

    @property
    def qmax(self) -> int:
        if self.signed:
            return (1 << (self.num_bits - 1)) - 1
        return (1 << self.num_bits) - 1

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Real values -> integer codes (int64)."""
        x = np.asarray(x, dtype=np.float64)
        codes = round_half_up(x / self.scale) + self.zero_point
        return np.clip(codes, self.qmin, self.qmax).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return (np.asarray(codes, dtype=np.float64) - self.zero_point) * self.scale

    def quantize_dequantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip (the "fake quantization" used for accuracy evaluation)."""
        return self.dequantize(self.quantize(x))


def symmetric_quant_params(
    max_abs: float, num_bits: int = 8, signed: bool = True
) -> QuantParams:
    """Max-abs calibration used by the paper for weights and activations.

    For signed data the scale maps ``±max_abs`` onto ``±(2^(k−1) − 1)``; for
    unsigned data it maps ``[0, max_abs]`` onto ``[0, 2^k − 1]``.  A zero or
    negative ``max_abs`` falls back to a unit scale so that all-zero tensors
    quantize to all-zero codes instead of raising.
    """
    num_bits = check_integer(num_bits, "num_bits")
    levels = (1 << (num_bits - 1)) - 1 if signed else (1 << num_bits) - 1
    max_abs = float(max_abs)
    scale = max_abs / levels if max_abs > 0 else 1.0
    return QuantParams(scale=scale, num_bits=num_bits, signed=signed)


def quantization_mse(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Mean-squared quantization error between a tensor and its reconstruction."""
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    if x.shape != x_hat.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {x_hat.shape}")
    if x.size == 0:
        return 0.0
    return float(np.mean((x - x_hat) ** 2))
