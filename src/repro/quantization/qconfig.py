"""Quantization configuration shared by PTQ and the PIM datapath."""

from __future__ import annotations

import dataclasses

from repro.utils.validation import check_in_range, check_integer


@dataclasses.dataclass(frozen=True)
class QuantizationConfig:
    """Bit-widths of the algorithm-level datapath (paper Section V-A).

    Attributes
    ----------
    weight_bits:
        ``Kw`` — bit-width of the stored weights (8 in the paper).
    activation_bits:
        ``Ki`` — bit-width of the input activations fed to the DACs (8).
    partial_sum_bits:
        Width of the digital accumulator holding merged partial sums (16).
    signed_weights:
        Weights are signed and mapped differentially onto positive/negative
        crossbars; activations entering MVM layers are non-negative
        (post-ReLU / normalised images) and use an unsigned grid.
    """

    weight_bits: int = 8
    activation_bits: int = 8
    partial_sum_bits: int = 16
    signed_weights: bool = True

    def __post_init__(self) -> None:
        for name in ("weight_bits", "activation_bits", "partial_sum_bits"):
            value = check_integer(getattr(self, name), name)
            check_in_range(value, name, low=1, high=32)

    @property
    def weight_magnitude_bits(self) -> int:
        """Bits needed for the weight magnitude on a differential mapping."""
        return self.weight_bits - 1 if self.signed_weights else self.weight_bits


DEFAULT_QUANT_CONFIG = QuantizationConfig()
