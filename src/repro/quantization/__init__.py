"""Algorithm-level quantization datapath (paper Section II-B, V-A)."""

from repro.quantization.observers import HistogramObserver, MinMaxObserver
from repro.quantization.ptq import (
    LayerQuantization,
    MVM_LAYER_TYPES,
    QuantizedModel,
    find_mvm_layers,
    quantize_model,
)
from repro.quantization.qconfig import DEFAULT_QUANT_CONFIG, QuantizationConfig
from repro.quantization.qlayers import FakeQuantBackend, attach_backend, detach_backend
from repro.quantization.uniform import (
    QuantParams,
    delta_from_range,
    quantization_mse,
    quantize_uniform,
    symmetric_quant_params,
    uniform_grid,
)

__all__ = [
    "DEFAULT_QUANT_CONFIG",
    "FakeQuantBackend",
    "HistogramObserver",
    "LayerQuantization",
    "MVM_LAYER_TYPES",
    "MinMaxObserver",
    "QuantParams",
    "QuantizationConfig",
    "QuantizedModel",
    "attach_backend",
    "delta_from_range",
    "detach_backend",
    "find_mvm_layers",
    "quantization_mse",
    "quantize_model",
    "quantize_uniform",
    "symmetric_quant_params",
    "uniform_grid",
]
