"""Low-level tensor operations backing the NumPy DNN framework.

All convolution/pooling layers are implemented on top of an ``im2col``
transformation so that the inner loop is a single BLAS ``matmul``.  This is
the same lowering a ReRAM-crossbar mapping performs (a sliding window becomes
one matrix-vector multiplication per output position, paper Fig. 1), which is
why the PIM simulator in :mod:`repro.sim` can reuse these helpers verbatim.

Shapes follow the PyTorch convention ``(N, C, H, W)`` for activations and
``(F, C, KH, KW)`` for convolution weights.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

IntOrPair = Union[int, Tuple[int, int]]


def as_pair(value: IntOrPair, name: str = "value") -> Tuple[int, int]:
    """Normalise an int-or-pair argument (kernel size, stride, padding)."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"{name} must be an int or a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size {out} for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: Tuple[int, int], value: float = 0.0) -> np.ndarray:
    """Zero-pad (or constant-pad) the spatial dimensions of an NCHW tensor."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant", constant_values=value
    )


def im2col(
    x: np.ndarray,
    kernel_size: IntOrPair,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold sliding windows of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        Input activations of shape ``(N, C, H, W)``.
    kernel_size, stride, padding:
        Convolution geometry.

    Returns
    -------
    cols:
        Array of shape ``(N * OH * OW, C * KH * KW)``.  Row ``i`` holds the
        flattened receptive field of output pixel ``i`` (N-major, then OH,
        then OW), which is exactly the input vector fed to the crossbar word
        lines for that sliding window.
    out_hw:
        The spatial output size ``(OH, OW)``.
    """
    if x.ndim != 4:
        raise ValueError(f"im2col expects NCHW input, got shape {x.shape}")
    kh, kw = as_pair(kernel_size, "kernel_size")
    sh, sw = as_pair(stride, "stride")
    ph, pw = as_pair(padding, "padding")

    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)

    xp = pad_nchw(x, (ph, pw))
    # Strided view: (N, C, OH, OW, KH, KW) without copying.
    s0, s1, s2, s3 = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_size: IntOrPair,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> np.ndarray:
    """Fold an ``im2col`` matrix back into an NCHW tensor (adjoint of im2col).

    Overlapping windows are *summed*, which is what the convolution backward
    pass requires.
    """
    kh, kw = as_pair(kernel_size, "kernel_size")
    sh, sw = as_pair(stride, "stride")
    ph, pw = as_pair(padding, "padding")
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)

    expected_rows = n * oh * ow
    expected_cols = c * kh * kw
    if cols.shape != (expected_rows, expected_cols):
        raise ValueError(
            f"col2im expected shape {(expected_rows, expected_cols)}, got {cols.shape}"
        )

    xp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    windows = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        i_max = i + sh * oh
        for j in range(kw):
            j_max = j + sw * ow
            xp[:, :, i:i_max:sh, j:j_max:sw] += windows[:, :, :, :, i, j]
    if ph == 0 and pw == 0:
        return xp
    return xp[:, :, ph : ph + h, pw : pw + w]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """2-D convolution via im2col.

    Returns ``(output, cols, (oh, ow))``; ``cols`` is cached by layers for the
    backward pass and reused by the PIM simulator as the per-window input
    vectors.
    """
    f, c, kh, kw = weight.shape
    cols, (oh, ow) = im2col(x, (kh, kw), stride, padding)
    w_mat = weight.reshape(f, c * kh * kw)
    out = cols @ w_mat.T
    if bias is not None:
        out = out + bias
    n = x.shape[0]
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    return out, cols, (oh, ow)


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    cols: np.ndarray,
    weight: np.ndarray,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    f, c, kh, kw = weight.shape
    n, _, oh, ow = grad_out.shape
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, f)
    grad_bias = grad_mat.sum(axis=0)
    grad_weight = (grad_mat.T @ cols).reshape(f, c, kh, kw)
    grad_cols = grad_mat @ weight.reshape(f, c * kh * kw)
    grad_x = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return grad_x, grad_weight, grad_bias


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Fully-connected forward: ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def linear_backward(
    grad_out: np.ndarray, x: np.ndarray, weight: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`linear_forward` -> ``(grad_x, grad_w, grad_b)``."""
    grad_x = grad_out @ weight
    grad_w = grad_out.T @ x
    grad_b = grad_out.sum(axis=0)
    return grad_x, grad_w, grad_b


def max_pool2d_forward(
    x: np.ndarray, kernel_size: IntOrPair, stride: IntOrPair | None = None
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """Max pooling; returns ``(out, argmax, (oh, ow))`` for the backward pass."""
    kh, kw = as_pair(kernel_size, "kernel_size")
    if stride is None:
        stride = (kh, kw)
    sh, sw = as_pair(stride, "stride")
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, sh, 0)
    ow = conv_output_size(w, kw, sw, 0)

    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    flat = windows.reshape(n, c, oh, ow, kh * kw)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    return out, argmax, (oh, ow)


def max_pool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_size: IntOrPair,
    stride: IntOrPair | None = None,
) -> np.ndarray:
    """Backward pass of max pooling: route gradients to the argmax positions."""
    kh, kw = as_pair(kernel_size, "kernel_size")
    if stride is None:
        stride = (kh, kw)
    sh, sw = as_pair(stride, "stride")
    n, c, h, w = x_shape
    _, _, oh, ow = grad_out.shape

    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    # argmax indexes within the kh*kw window.
    ki = argmax // kw
    kj = argmax % kw
    oh_idx, ow_idx = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
    rows = oh_idx[None, None] * sh + ki
    cols_ = ow_idx[None, None] * sw + kj
    n_idx = np.arange(n)[:, None, None, None]
    c_idx = np.arange(c)[None, :, None, None]
    np.add.at(grad_x, (n_idx, c_idx, rows, cols_), grad_out)
    return grad_x


def avg_pool2d_forward(
    x: np.ndarray, kernel_size: IntOrPair, stride: IntOrPair | None = None
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Average pooling forward; returns ``(out, (oh, ow))``."""
    kh, kw = as_pair(kernel_size, "kernel_size")
    if stride is None:
        stride = (kh, kw)
    sh, sw = as_pair(stride, "stride")
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, sh, 0)
    ow = conv_output_size(w, kw, sw, 0)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    out = windows.mean(axis=(-1, -2))
    return out, (oh, ow)


def avg_pool2d_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_size: IntOrPair,
    stride: IntOrPair | None = None,
) -> np.ndarray:
    """Backward pass of average pooling (uniform gradient spread)."""
    kh, kw = as_pair(kernel_size, "kernel_size")
    if stride is None:
        stride = (kh, kw)
    sh, sw = as_pair(stride, "stride")
    n, c, h, w = x_shape
    _, _, oh, ow = grad_out.shape
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    scale = 1.0 / (kh * kw)
    for i in range(kh):
        for j in range(kw):
            grad_x[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += grad_out * scale
    return grad_x


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` -> one-hot matrix ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
