"""Activation layers.

ReLU matters beyond accuracy here: rectified activations are exactly what
makes the crossbar bit-line distribution skewed towards zero (paper
Section III-A) — most input bits are zero, so most partial sums are small.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("ReLU.backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Module):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("LeakyReLU.backward called before forward")
        return np.where(self._mask, grad_out, self.negative_slope * grad_out)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-x))
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("Sigmoid.backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("Tanh.backward called before forward")
        return grad_out * (1.0 - self._out**2)
