"""Core trainable layers: convolution, fully-connected, flatten, dropout.

``Conv2d`` and ``Linear`` are the two layer types that a ReRAM accelerator
maps onto crossbars.  Both expose a ``compute_backend`` attribute: when it is
``None`` the layer computes its output with NumPy matmuls; when the PIM
simulator attaches a backend (any object implementing ``conv2d``/``linear``
with the same signature) the forward pass is routed through the crossbar +
ADC models instead.  Training always uses the NumPy path.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class ComputeBackend(Protocol):
    """Protocol for objects that can replace the MVM datapath of a layer."""

    def conv2d(
        self,
        layer: "Conv2d",
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        ...  # pragma: no cover - protocol definition

    def linear(
        self,
        layer: "Linear",
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> np.ndarray:
        ...  # pragma: no cover - protocol definition


class Conv2d(Module):
    """2-D convolution layer (NCHW activations, ``(F, C, KH, KW)`` weights)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = F.as_pair(kernel_size, "kernel_size")
        self.stride = F.as_pair(stride, "stride")
        self.padding = F.as_pair(padding, "padding")
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kh, kw), rng=new_rng(rng))
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None
        self.compute_backend: Optional[ComputeBackend] = None
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        if self.compute_backend is not None and not self.training:
            return self.compute_backend.conv2d(
                self, x, self.weight.data, bias, self.stride, self.padding
            )
        out, cols, _ = F.conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding
        )
        if self.training:
            self._cache = (cols, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Conv2d.backward called before a training forward pass")
        cols, x_shape = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_out, x_shape, cols, self.weight.data, self.stride, self.padding
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_x

    def output_shape(self, input_hw: Tuple[int, int]) -> Tuple[int, int]:
        """Spatial output size for an ``(H, W)`` input — used by the mapper."""
        h, w = input_hw
        oh = F.conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        ow = F.conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return oh, ow

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )


class Linear(Module):
    """Fully-connected layer: ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng=new_rng(rng))
        )
        self.bias = Parameter(init.zeros(out_features)) if bias else None
        self.compute_backend: Optional[ComputeBackend] = None
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        if self.compute_backend is not None and not self.training:
            return self.compute_backend.linear(self, x, self.weight.data, bias)
        out = F.linear_forward(x, self.weight.data, bias)
        if self.training:
            self._cache = x
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Linear.backward called before a training forward pass")
        grad_x, grad_w, grad_b = F.linear_backward(grad_out, self._cache, self.weight.data)
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_x

    def __repr__(self) -> str:
        return (
            f"Linear({self.in_features}, {self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("Flatten.backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = new_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
