"""Model zoo: the four CNN workloads evaluated in the paper."""

from repro.nn.models.lenet import LeNet5
from repro.nn.models.registry import (
    WORKLOADS,
    available_models,
    available_presets,
    build_model,
    preset_structure,
    workload_info,
)
from repro.nn.models.resnet import BasicBlock, ResNet18, ResNet20
from repro.nn.models.squeezenet import Fire, SqueezeNet11

__all__ = [
    "BasicBlock",
    "Fire",
    "LeNet5",
    "ResNet18",
    "ResNet20",
    "SqueezeNet11",
    "WORKLOADS",
    "available_models",
    "available_presets",
    "build_model",
    "preset_structure",
    "workload_info",
]
