"""Residual networks: ResNet-20 (CIFAR-style) and ResNet-18 (ImageNet-style).

Both are workloads of the paper's evaluation.  The topologies follow He et
al.; a ``width_multiplier`` and configurable input size let tests and quick
examples run scaled-down instances while keeping the layer structure (and
hence the crossbar-mapping behaviour) identical.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import Conv2d, Flatten, Linear
from repro.nn.module import Identity, Module, Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d, MaxPool2d
from repro.utils.rng import SeedLike, derive_seed, new_rng


class BasicBlock(Module):
    """Standard two-convolution residual block with optional downsampling.

    ``forward``/``backward`` handle the skip connection explicitly since the
    framework has no tape-based autograd.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(
            in_channels, out_channels, kernel_size=3, stride=stride, padding=1,
            bias=False, rng=derive_seed(seed, "conv1"),
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(
            out_channels, out_channels, kernel_size=3, stride=1, padding=1,
            bias=False, rng=derive_seed(seed, "conv2"),
        )
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(
                    in_channels, out_channels, kernel_size=1, stride=stride,
                    padding=0, bias=False, rng=derive_seed(seed, "down"),
                ),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self.downsample(x)
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(out + identity)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_out)
        # Residual branch.
        grad_branch = self.bn2.backward(grad_sum)
        grad_branch = self.conv2.backward(grad_branch)
        grad_branch = self.relu1.backward(grad_branch)
        grad_branch = self.bn1.backward(grad_branch)
        grad_branch = self.conv1.backward(grad_branch)
        # Skip branch.
        grad_skip = self.downsample.backward(grad_sum)
        return grad_branch + grad_skip


class _ResNetBase(Module):
    """Shared stem/stage/head plumbing for the two ResNet variants."""

    def __init__(self) -> None:
        super().__init__()

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        for stage in self._stages():
            x = stage(x)
        return self.head(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_out)
        for stage in reversed(self._stages()):
            grad = stage.backward(grad)
        return self.stem.backward(grad)

    def _stages(self) -> List[Sequential]:
        raise NotImplementedError


class ResNet20(_ResNetBase):
    """CIFAR-style ResNet-20: 3 stages × 3 basic blocks, 16/32/64 channels."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        blocks_per_stage: int = 3,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        seed = int(new_rng(rng).integers(0, 2**31 - 1))
        widths = [max(4, int(round(w * width_multiplier))) for w in (16, 32, 64)]
        self.num_classes = int(num_classes)
        self.in_channels = int(in_channels)

        self.stem = Sequential(
            Conv2d(in_channels, widths[0], kernel_size=3, stride=1, padding=1,
                   bias=False, rng=derive_seed(seed, "stem")),
            BatchNorm2d(widths[0]),
            ReLU(),
        )
        self.stage1 = self._make_stage(widths[0], widths[0], blocks_per_stage, 1,
                                       derive_seed(seed, "s1"))
        self.stage2 = self._make_stage(widths[0], widths[1], blocks_per_stage, 2,
                                       derive_seed(seed, "s2"))
        self.stage3 = self._make_stage(widths[1], widths[2], blocks_per_stage, 2,
                                       derive_seed(seed, "s3"))
        self.head = Sequential(
            GlobalAvgPool2d(),
            Linear(widths[2], num_classes, rng=derive_seed(seed, "fc")),
        )

    @staticmethod
    def _make_stage(in_ch: int, out_ch: int, blocks: int, stride: int, seed: int) -> Sequential:
        layers: List[Module] = [BasicBlock(in_ch, out_ch, stride, seed=derive_seed(seed, 0))]
        for i in range(1, blocks):
            layers.append(BasicBlock(out_ch, out_ch, 1, seed=derive_seed(seed, i)))
        return Sequential(*layers)

    def _stages(self) -> List[Sequential]:
        return [self.stage1, self.stage2, self.stage3]


class ResNet18(_ResNetBase):
    """ImageNet-style ResNet-18: 4 stages × 2 basic blocks, 64..512 channels.

    The default configuration keeps the original topology but accepts small
    input images (32×32 or 64×64 synthetic ImageNet) by making the stem's
    7×7/stride-2 convolution and max-pool optional via ``small_input``.
    """

    def __init__(
        self,
        num_classes: int = 100,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        small_input: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        seed = int(new_rng(rng).integers(0, 2**31 - 1))
        widths = [max(4, int(round(w * width_multiplier))) for w in (64, 128, 256, 512)]
        self.num_classes = int(num_classes)
        self.in_channels = int(in_channels)
        self.small_input = bool(small_input)

        if small_input:
            self.stem = Sequential(
                Conv2d(in_channels, widths[0], kernel_size=3, stride=1, padding=1,
                       bias=False, rng=derive_seed(seed, "stem")),
                BatchNorm2d(widths[0]),
                ReLU(),
            )
        else:
            self.stem = Sequential(
                Conv2d(in_channels, widths[0], kernel_size=7, stride=2, padding=3,
                       bias=False, rng=derive_seed(seed, "stem")),
                BatchNorm2d(widths[0]),
                ReLU(),
                MaxPool2d(3, stride=2),
            )
        self.stage1 = ResNet20._make_stage(widths[0], widths[0], 2, 1, derive_seed(seed, "s1"))
        self.stage2 = ResNet20._make_stage(widths[0], widths[1], 2, 2, derive_seed(seed, "s2"))
        self.stage3 = ResNet20._make_stage(widths[1], widths[2], 2, 2, derive_seed(seed, "s3"))
        self.stage4 = ResNet20._make_stage(widths[2], widths[3], 2, 2, derive_seed(seed, "s4"))
        self.head = Sequential(
            GlobalAvgPool2d(),
            Linear(widths[3], num_classes, rng=derive_seed(seed, "fc")),
        )

    def _stages(self) -> List[Sequential]:
        return [self.stage1, self.stage2, self.stage3, self.stage4]
