"""LeNet-5, the MNIST workload of the paper's evaluation (Section V-A)."""

from __future__ import annotations

from repro.nn.activations import ReLU
from repro.nn.layers import Conv2d, Flatten, Linear
from repro.nn.module import Module, Sequential
from repro.nn.pooling import MaxPool2d
from repro.utils.rng import SeedLike, derive_seed, new_rng


class LeNet5(Module):
    """Classic LeNet-5 topology (conv-pool-conv-pool-fc-fc-fc).

    Parameters
    ----------
    num_classes:
        Number of output classes (10 for MNIST-style data).
    in_channels:
        Input channels (1 for grayscale digits).
    image_size:
        Spatial size of the (square) input image; the classifier input size
        is derived from it so the same class serves 28×28 and 32×32 inputs.
    width_multiplier:
        Scales the channel counts; ``1.0`` reproduces the original 6/16
        feature maps.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 1,
        image_size: int = 28,
        width_multiplier: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        seed = new_rng(rng).integers(0, 2**31 - 1)
        c1 = max(2, int(round(6 * width_multiplier)))
        c2 = max(4, int(round(16 * width_multiplier)))
        self.num_classes = int(num_classes)
        self.in_channels = int(in_channels)
        self.image_size = int(image_size)

        self.features = Sequential(
            Conv2d(in_channels, c1, kernel_size=5, padding=2,
                   rng=derive_seed(seed, "conv1")),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=5, padding=0,
                   rng=derive_seed(seed, "conv2")),
            ReLU(),
            MaxPool2d(2),
        )
        # Spatial size after conv/pool stack: image_size -> /2 -> -4 -> /2.
        spatial = ((image_size // 2) - 4) // 2
        if spatial <= 0:
            raise ValueError(f"image_size={image_size} too small for LeNet-5")
        flat = c2 * spatial * spatial
        f1 = max(8, int(round(120 * width_multiplier)))
        f2 = max(8, int(round(84 * width_multiplier)))
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, f1, rng=derive_seed(seed, "fc1")),
            ReLU(),
            Linear(f1, f2, rng=derive_seed(seed, "fc2")),
            ReLU(),
            Linear(f2, num_classes, rng=derive_seed(seed, "fc3")),
        )

    def forward(self, x):
        return self.classifier(self.features(x))

    def backward(self, grad_out):
        grad = self.classifier.backward(grad_out)
        return self.features.backward(grad)
