"""SqueezeNet v1.1, the third ImageNet workload in the paper's evaluation.

The Fire module (squeeze 1×1 → parallel expand 1×1 / expand 3×3 → channel
concatenation) is implemented with explicit forward/backward because the
framework has no autograd; the concatenation split is undone in ``backward``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import Conv2d, Dropout
from repro.nn.module import Module, Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d, MaxPool2d
from repro.utils.rng import SeedLike, derive_seed, new_rng


class Fire(Module):
    """SqueezeNet Fire module."""

    def __init__(
        self,
        in_channels: int,
        squeeze_channels: int,
        expand1x1_channels: int,
        expand3x3_channels: int,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.squeeze = Conv2d(in_channels, squeeze_channels, kernel_size=1,
                              rng=derive_seed(seed, "squeeze"))
        self.squeeze_relu = ReLU()
        self.expand1x1 = Conv2d(squeeze_channels, expand1x1_channels, kernel_size=1,
                                rng=derive_seed(seed, "e1"))
        self.expand1x1_relu = ReLU()
        self.expand3x3 = Conv2d(squeeze_channels, expand3x3_channels, kernel_size=3,
                                padding=1, rng=derive_seed(seed, "e3"))
        self.expand3x3_relu = ReLU()
        self.out_channels = expand1x1_channels + expand3x3_channels
        self._split = expand1x1_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = self.squeeze_relu(self.squeeze(x))
        left = self.expand1x1_relu(self.expand1x1(squeezed))
        right = self.expand3x3_relu(self.expand3x3(squeezed))
        return np.concatenate([left, right], axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_left = grad_out[:, : self._split]
        grad_right = grad_out[:, self._split :]
        grad_left = self.expand1x1.backward(self.expand1x1_relu.backward(grad_left))
        grad_right = self.expand3x3.backward(self.expand3x3_relu.backward(grad_right))
        grad_squeezed = grad_left + grad_right
        return self.squeeze.backward(self.squeeze_relu.backward(grad_squeezed))


class SqueezeNet11(Module):
    """SqueezeNet v1.1 adapted for configurable input sizes and class counts.

    ``width_multiplier`` scales all channel counts; ``small_input`` replaces
    the stride-2 stem with a stride-1 stem so 32×32 synthetic-ImageNet images
    survive the three max-pool stages.
    """

    def __init__(
        self,
        num_classes: int = 100,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        small_input: bool = True,
        dropout: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        seed = int(new_rng(rng).integers(0, 2**31 - 1))
        self.num_classes = int(num_classes)
        self.in_channels = int(in_channels)

        def scaled(value: int) -> int:
            return max(2, int(round(value * width_multiplier)))

        stem_stride = 1 if small_input else 2
        self.features = Sequential(
            Conv2d(in_channels, scaled(64), kernel_size=3, stride=stem_stride,
                   padding=1, rng=derive_seed(seed, "stem")),
            ReLU(),
            MaxPool2d(2),
            Fire(scaled(64), scaled(16), scaled(64), scaled(64), seed=derive_seed(seed, "f2")),
            Fire(scaled(128), scaled(16), scaled(64), scaled(64), seed=derive_seed(seed, "f3")),
            MaxPool2d(2),
            Fire(scaled(128), scaled(32), scaled(128), scaled(128), seed=derive_seed(seed, "f4")),
            Fire(scaled(256), scaled(32), scaled(128), scaled(128), seed=derive_seed(seed, "f5")),
            MaxPool2d(2),
            Fire(scaled(256), scaled(48), scaled(192), scaled(192), seed=derive_seed(seed, "f6")),
            Fire(scaled(384), scaled(48), scaled(192), scaled(192), seed=derive_seed(seed, "f7")),
            Fire(scaled(384), scaled(64), scaled(256), scaled(256), seed=derive_seed(seed, "f8")),
            Fire(scaled(512), scaled(64), scaled(256), scaled(256), seed=derive_seed(seed, "f9")),
        )
        classifier_layers: List[Module] = []
        if dropout > 0.0:
            classifier_layers.append(Dropout(dropout, rng=derive_seed(seed, "drop")))
        classifier_layers.extend(
            [
                Conv2d(scaled(512), num_classes, kernel_size=1,
                       rng=derive_seed(seed, "conv10")),
                ReLU(),
                GlobalAvgPool2d(),
            ]
        )
        self.classifier = Sequential(*classifier_layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        return self.features.backward(grad)
