"""Model registry mapping the paper's workload names to constructors.

The paper evaluates four (network, dataset) pairs (Section V-A):

* ResNet-20 on CIFAR-10
* ResNet-18 on ImageNet
* SqueezeNet1.1 on ImageNet
* LeNet-5 on MNIST

``build_model(name, ...)`` creates the corresponding topology; a
``preset="tiny"`` variant shrinks widths so tests and quick examples finish
in seconds while exercising exactly the same code paths.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.nn.models.lenet import LeNet5
from repro.nn.models.resnet import ResNet18, ResNet20
from repro.nn.models.squeezenet import SqueezeNet11
from repro.nn.module import Module
from repro.utils.rng import SeedLike

# Width multipliers and structural knobs per preset.
_PRESETS = {
    "paper": {"width": 1.0, "blocks": 3},
    "small": {"width": 0.5, "blocks": 2},
    "tiny": {"width": 0.25, "blocks": 1},
}

# The four paper workloads with their dataset shapes.
WORKLOADS: Dict[str, Dict] = {
    "lenet5": {"dataset": "mnist", "in_channels": 1, "image_size": 28, "num_classes": 10},
    "resnet20": {"dataset": "cifar10", "in_channels": 3, "image_size": 32, "num_classes": 10},
    "resnet18": {"dataset": "imagenet", "in_channels": 3, "image_size": 32, "num_classes": 10},
    "squeezenet1_1": {"dataset": "imagenet", "in_channels": 3, "image_size": 32, "num_classes": 10},
}


def available_models() -> list:
    """Names accepted by :func:`build_model`."""
    return sorted(WORKLOADS)


def available_presets() -> list:
    """Preset names accepted by :func:`build_model`."""
    return sorted(_PRESETS)


def preset_structure(preset: str) -> Dict:
    """Structural knobs of a preset (width multiplier, block counts, ...).

    This is part of a workload's *configuration fingerprint*: the trained
    weight cache (:mod:`repro.workloads`) and the experiment result store
    (:mod:`repro.experiments`) hash it so editing a preset can never serve
    results produced under the old structure.
    """
    if preset not in _PRESETS:
        raise KeyError(f"unknown preset '{preset}', available: {sorted(_PRESETS)}")
    return dict(_PRESETS[preset])


def workload_info(name: str) -> Dict:
    """Dataset / shape metadata for a workload name."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown model '{name}', available: {available_models()}")
    return dict(WORKLOADS[name])


def build_model(
    name: str,
    preset: str = "small",
    num_classes: Optional[int] = None,
    rng: SeedLike = None,
) -> Module:
    """Instantiate one of the paper's workloads.

    Parameters
    ----------
    name:
        One of ``lenet5``, ``resnet20``, ``resnet18``, ``squeezenet1_1``.
    preset:
        ``paper`` (full width), ``small`` (half width) or ``tiny`` (quarter
        width, fewer blocks) — structural scaling for constrained runtimes.
    num_classes:
        Override the class count (defaults to the workload's).
    """
    if name not in WORKLOADS:
        raise KeyError(f"unknown model '{name}', available: {available_models()}")
    if preset not in _PRESETS:
        raise KeyError(f"unknown preset '{preset}', available: {sorted(_PRESETS)}")
    info = WORKLOADS[name]
    cfg = _PRESETS[preset]
    classes = num_classes if num_classes is not None else info["num_classes"]

    if name == "lenet5":
        return LeNet5(
            num_classes=classes,
            in_channels=info["in_channels"],
            image_size=info["image_size"],
            width_multiplier=cfg["width"],
            rng=rng,
        )
    if name == "resnet20":
        return ResNet20(
            num_classes=classes,
            in_channels=info["in_channels"],
            width_multiplier=cfg["width"],
            blocks_per_stage=cfg["blocks"],
            rng=rng,
        )
    if name == "resnet18":
        return ResNet18(
            num_classes=classes,
            in_channels=info["in_channels"],
            width_multiplier=cfg["width"],
            small_input=True,
            rng=rng,
        )
    if name == "squeezenet1_1":
        return SqueezeNet11(
            num_classes=classes,
            in_channels=info["in_channels"],
            width_multiplier=cfg["width"],
            small_input=True,
            rng=rng,
        )
    raise AssertionError("unreachable")  # pragma: no cover
