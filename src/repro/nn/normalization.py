"""Normalisation layers (2-D batch normalisation)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of NCHW tensors.

    Running statistics are kept as buffers so that a trained model can be
    evaluated (and mapped to crossbars) deterministically.  In the paper's
    datapath, BatchNorm is folded into the digital post-processing after the
    shift-and-add stage, so it stays a float operation in the PIM simulator.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self._buffers = {
            "running_mean": np.zeros(num_features, dtype=np.float64),
            "running_var": np.ones(num_features, dtype=np.float64),
        }
        self.running_mean = self._buffers["running_mean"]
        self.running_var = self._buffers["running_var"]
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * var
            )
            self.running_mean = self._buffers["running_mean"]
            self.running_var = self._buffers["running_var"]
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]

        std_inv = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * std_inv[None, :, None, None]
        out = (
            self.weight.data[None, :, None, None] * x_hat
            + self.bias.data[None, :, None, None]
        )
        if self.training:
            self._cache = (x_hat, std_inv, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BatchNorm2d.backward called before a training forward")
        x_hat, std_inv, x_shape = self._cache
        n, _, h, w = x_shape
        m = n * h * w

        self.weight.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_out.sum(axis=(0, 2, 3))

        gamma = self.weight.data[None, :, None, None]
        grad_xhat = grad_out * gamma
        sum_grad_xhat = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (
            std_inv[None, :, None, None]
            / m
            * (m * grad_xhat - sum_grad_xhat - x_hat * sum_grad_xhat_xhat)
        )
        return grad_x

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"
