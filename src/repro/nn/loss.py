"""Loss functions for training the reproduction's model zoo."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F


class Loss:
    """Base class: ``forward`` returns the scalar loss, ``backward`` the
    gradient with respect to the predictions."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over integer class labels (mean reduction)."""

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
        n, num_classes = logits.shape
        targets = F.one_hot(labels, num_classes)
        if self.label_smoothing > 0.0:
            targets = (
                targets * (1.0 - self.label_smoothing)
                + self.label_smoothing / num_classes
            )
        log_probs = F.log_softmax(logits, axis=1)
        loss = -(targets * log_probs).sum(axis=1).mean()
        probs = np.exp(log_probs)
        self._cache = (probs, targets)
        return float(loss)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("CrossEntropyLoss.backward called before forward")
        probs, targets = self._cache
        n = probs.shape[0]
        return (probs - targets) / n


class MSELoss(Loss):
    """Mean-squared-error loss (mean reduction over all elements)."""

    def __init__(self) -> None:
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MSELoss.backward called before forward")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / predictions.size
