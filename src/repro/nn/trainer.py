"""A small training loop for the reproduction's model zoo.

The paper uses *pretrained* networks and applies post-training quantization
only.  Because this environment has no pretrained weights, we train compact
versions of the same topologies on synthetic datasets with this trainer; the
co-design pipeline then treats the result exactly like a pretrained model.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.loss import CrossEntropyLoss, Loss
from repro.nn.metrics import top1_accuracy
from repro.nn.module import Module
from repro.nn.optim import LRScheduler, Optimizer
from repro.utils.logging import get_logger

logger = get_logger("nn.trainer")


@dataclasses.dataclass
class EpochStats:
    """Summary of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_loss: Optional[float] = None
    val_accuracy: Optional[float] = None
    learning_rate: Optional[float] = None
    seconds: float = 0.0


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch statistics collected by :class:`Trainer.fit`."""

    epochs: List[EpochStats] = dataclasses.field(default_factory=list)

    @property
    def final_train_accuracy(self) -> float:
        return self.epochs[-1].train_accuracy if self.epochs else 0.0

    @property
    def final_val_accuracy(self) -> Optional[float]:
        return self.epochs[-1].val_accuracy if self.epochs else None

    def as_dict(self) -> Dict[str, List[float]]:
        """Column-oriented view convenient for tabulation."""
        return {
            "epoch": [e.epoch for e in self.epochs],
            "train_loss": [e.train_loss for e in self.epochs],
            "train_accuracy": [e.train_accuracy for e in self.epochs],
            "val_accuracy": [
                e.val_accuracy if e.val_accuracy is not None else float("nan")
                for e in self.epochs
            ],
        }


class Trainer:
    """Minimal supervised-classification training loop.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` mapping ``(N, C, H, W)`` images to
        ``(N, num_classes)`` logits.
    optimizer:
        Optimiser over ``model.parameters()``.
    loss_fn:
        Defaults to :class:`CrossEntropyLoss`.
    scheduler:
        Optional learning-rate schedule stepped once per epoch.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Optional[Loss] = None,
        scheduler: Optional[LRScheduler] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn if loss_fn is not None else CrossEntropyLoss()
        self.scheduler = scheduler

    def train_epoch(self, loader) -> EpochStats:
        """Run one pass over ``loader`` (an iterable of ``(images, labels)``)."""
        self.model.train()
        losses: List[float] = []
        accuracies: List[float] = []
        start = time.perf_counter()
        for images, labels in loader:
            self.optimizer.zero_grad()
            logits = self.model(images)
            loss = self.loss_fn(logits, labels)
            grad = self.loss_fn.backward()
            self.model.backward(grad)
            self.optimizer.step()
            losses.append(loss)
            accuracies.append(top1_accuracy(logits, labels))
        return EpochStats(
            epoch=0,
            train_loss=float(np.mean(losses)) if losses else float("nan"),
            train_accuracy=float(np.mean(accuracies)) if accuracies else 0.0,
            seconds=time.perf_counter() - start,
        )

    def evaluate(self, loader) -> Dict[str, float]:
        """Evaluate loss and accuracy on an iterable of ``(images, labels)``."""
        self.model.eval()
        losses: List[float] = []
        correct = 0
        total = 0
        for images, labels in loader:
            logits = self.model(images)
            losses.append(self.loss_fn(logits, labels))
            correct += int((logits.argmax(axis=1) == labels).sum())
            total += labels.shape[0]
        accuracy = correct / total if total else 0.0
        return {
            "loss": float(np.mean(losses)) if losses else float("nan"),
            "accuracy": float(accuracy),
        }

    def fit(
        self,
        train_loader_fn: Callable[[], object],
        epochs: int,
        val_loader_fn: Optional[Callable[[], object]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs.

        ``train_loader_fn``/``val_loader_fn`` are zero-argument callables
        returning a fresh iterable each epoch (so shuffling can differ per
        epoch).
        """
        history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            stats = self.train_epoch(train_loader_fn())
            stats.epoch = epoch
            stats.learning_rate = self.optimizer.lr
            if val_loader_fn is not None:
                val = self.evaluate(val_loader_fn())
                stats.val_loss = val["loss"]
                stats.val_accuracy = val["accuracy"]
            if self.scheduler is not None:
                self.scheduler.step()
            history.epochs.append(stats)
            if verbose:
                logger.warning(
                    "epoch %d: train_loss=%.4f train_acc=%.3f val_acc=%s",
                    epoch,
                    stats.train_loss,
                    stats.train_accuracy,
                    f"{stats.val_accuracy:.3f}" if stats.val_accuracy is not None else "n/a",
                )
        self.model.eval()
        return history
