"""Pooling layers (max, average, global average)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(self, kernel_size, stride=None) -> None:
        super().__init__()
        self.kernel_size = F.as_pair(kernel_size, "kernel_size")
        self.stride = F.as_pair(stride, "stride") if stride is not None else self.kernel_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax, _ = F.max_pool2d_forward(x, self.kernel_size, self.stride)
        self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MaxPool2d.backward called before forward")
        argmax, x_shape = self._cache
        return F.max_pool2d_backward(grad_out, argmax, x_shape, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling over windows."""

    def __init__(self, kernel_size, stride=None) -> None:
        super().__init__()
        self.kernel_size = F.as_pair(kernel_size, "kernel_size")
        self.stride = F.as_pair(stride, "stride") if stride is not None else self.kernel_size
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, _ = F.avg_pool2d_forward(x, self.kernel_size, self.stride)
        self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("AvgPool2d.backward called before forward")
        return F.avg_pool2d_backward(grad_out, self._x_shape, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over the entire spatial extent, producing ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("GlobalAvgPool2d.backward called before forward")
        n, c, h, w = self._x_shape
        grad = grad_out[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, self._x_shape).copy()
