"""Evaluation metrics used throughout the reproduction."""

from __future__ import annotations

from typing import Dict

import numpy as np


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose arg-max prediction matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("logits and labels batch sizes differ")
    if logits.shape[0] == 0:
        return 0.0
    predictions = logits.argmax(axis=1)
    return float(np.mean(predictions == labels))


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is within the top-``k`` predictions."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, logits.shape[1])
    if logits.shape[0] == 0:
        return 0.0
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(topk == labels[:, None], axis=1)))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def classification_report(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> Dict[str, float]:
    """Macro precision/recall/F1 plus accuracy as a flat dictionary."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    true_pos = np.diag(matrix).astype(np.float64)
    support = matrix.sum(axis=1).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        recall = np.where(support > 0, true_pos / support, 0.0)
        precision = np.where(predicted > 0, true_pos / predicted, 0.0)
        f1 = np.where(
            precision + recall > 0, 2 * precision * recall / (precision + recall), 0.0
        )
    total = matrix.sum()
    accuracy = float(true_pos.sum() / total) if total else 0.0
    return {
        "accuracy": accuracy,
        "macro_precision": float(precision.mean()),
        "macro_recall": float(recall.mean()),
        "macro_f1": float(f1.mean()),
    }
