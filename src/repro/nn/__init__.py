"""A compact NumPy deep-learning framework.

This subpackage is a from-scratch substrate standing in for PyTorch in the
reproduction: it provides the layers, losses, optimisers and a trainer needed
to obtain the CNN models the paper quantises (LeNet-5, ResNet-20, ResNet-18,
SqueezeNet1.1), plus the hooks the PIM simulator and the calibration pipeline
need (forward hooks and pluggable compute backends on MVM layers).
"""

from repro.nn import functional, init
from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers import Conv2d, Dropout, Flatten, Linear
from repro.nn.loss import CrossEntropyLoss, Loss, MSELoss
from repro.nn.metrics import (
    classification_report,
    confusion_matrix,
    top1_accuracy,
    topk_accuracy,
)
from repro.nn.module import HookHandle, Identity, Module, Parameter, Sequential
from repro.nn.normalization import BatchNorm2d
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, LRScheduler, Optimizer, StepLR
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.trainer import EpochStats, Trainer, TrainingHistory

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CosineAnnealingLR",
    "CrossEntropyLoss",
    "Dropout",
    "EpochStats",
    "Flatten",
    "GlobalAvgPool2d",
    "HookHandle",
    "Identity",
    "LeakyReLU",
    "LRScheduler",
    "Linear",
    "Loss",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "StepLR",
    "Tanh",
    "Trainer",
    "TrainingHistory",
    "classification_report",
    "confusion_matrix",
    "functional",
    "init",
    "top1_accuracy",
    "topk_accuracy",
]
