"""Optimisers and learning-rate schedules."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser over a list of :class:`Parameter` objects."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = [p for p in parameters if p is not None]
        if not self.parameters:
            raise ValueError("optimiser received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (used for the quick example trainings)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        if not (0.0 <= self.beta1 < 1.0 and 0.0 <= self.beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Base learning-rate schedule operating on an optimiser in place."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)
        return self.optimizer.lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * progress)
        )
