"""Weight-initialisation schemes for the NumPy DNN framework."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _fan_in_out(shape) -> tuple[int, int]:
    """Compute fan-in / fan-out of a weight tensor.

    Linear weights are ``(out, in)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape for init: {shape}")
    return fan_in, fan_out


def kaiming_normal(shape, rng: SeedLike = None) -> np.ndarray:
    """He-normal initialisation (suitable for ReLU networks)."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: SeedLike = None) -> np.ndarray:
    """He-uniform initialisation."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, rng: SeedLike = None) -> np.ndarray:
    """Glorot-uniform initialisation (suitable for tanh/sigmoid networks)."""
    rng = new_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (biases, BatchNorm shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    """All-one initialisation (BatchNorm scale)."""
    return np.ones(shape, dtype=np.float64)
