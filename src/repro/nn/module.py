"""Parameter and Module abstractions of the NumPy DNN framework.

The design mirrors a small subset of ``torch.nn``: a :class:`Module` owns
:class:`Parameter` objects and child modules, exposes recursive traversal
(``named_modules``, ``parameters``), a training/eval switch, forward hooks and
state-dict (de)serialisation.  Layers implement explicit ``forward`` and
``backward`` methods (no tape autograd) which is sufficient for training the
reproduction's model zoo and keeps behaviour easy to audit.

Two extension points matter for the rest of the library:

* ``register_forward_hook`` — used by the calibration pipeline to capture
  per-layer activations.
* ``compute_backend`` on MVM layers (``Conv2d``/``Linear``) — used by the PIM
  simulator to re-route the matrix multiplication through the crossbar + ADC
  models without touching the model definition.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor: value plus accumulated gradient."""

    def __init__(self, data: np.ndarray, requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.requires_grad = requires_grad

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, requires_grad={self.requires_grad})"


ForwardHook = Callable[["Module", np.ndarray, np.ndarray], None]


class HookHandle:
    """Handle returned by ``register_forward_hook``; ``remove()`` detaches it."""

    def __init__(self, hooks: Dict[int, ForwardHook], hook_id: int) -> None:
        self._hooks = hooks
        self._id = hook_id

    def remove(self) -> None:
        self._hooks.pop(self._id, None)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._forward_hooks: Dict[int, ForwardHook] = {}
        self._hook_counter = 0
        self.training = True

    # ------------------------------------------------------------------ #
    # registration / attribute plumbing
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            if not hasattr(self, "_parameters"):
                raise AttributeError(
                    "call Module.__init__() before assigning parameters"
                )
            self._parameters[name] = value
        elif isinstance(value, Module):
            if not hasattr(self, "_modules"):
                raise AttributeError("call Module.__init__() before assigning modules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (used by containers)."""
        if not isinstance(module, Module):
            raise TypeError(f"{name} is not a Module: {type(module)!r}")
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}{child_name}."
            yield from child.named_modules(prefix=child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(
            p.size
            for p in self.parameters()
            if p.requires_grad or not trainable_only
        )

    # ------------------------------------------------------------------ #
    # train / eval, grads
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def register_forward_hook(self, hook: ForwardHook) -> HookHandle:
        """Register ``hook(module, input, output)`` called after ``forward``."""
        self._hook_counter += 1
        self._forward_hooks[self._hook_counter] = hook
        return HookHandle(self._forward_hooks, self._hook_counter)

    # ------------------------------------------------------------------ #
    # forward / backward interface
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``grad_out`` through the layer, accumulating parameter
        gradients.  Layers that are inference-only may leave this
        unimplemented."""
        raise NotImplementedError(f"{type(self).__name__} has no backward pass")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        for hook in list(self._forward_hooks.values()):
            hook(self, x, out)
        return out

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter (and buffer) names to copies of values."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, module in self.named_modules():
            prefix = f"{name}." if name else ""
            for buf_name, value in getattr(module, "_buffers", {}).items():
                state[f"{prefix}{buf_name}"] = np.array(value, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load a mapping produced by :meth:`state_dict`."""
        own_params = dict(self.named_parameters())
        own_buffers: Dict[str, Tuple[Module, str]] = {}
        for name, module in self.named_modules():
            prefix = f"{name}." if name else ""
            for buf_name in getattr(module, "_buffers", {}):
                own_buffers[f"{prefix}{buf_name}"] = (module, buf_name)

        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for key, value in state.items():
            if key in own_params:
                param = own_params[key]
                value = np.asarray(value, dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {value.shape} vs {param.data.shape}"
                    )
                param.data[...] = value
            elif key in own_buffers:
                module, buf_name = own_buffers[key]
                module._buffers[buf_name] = np.array(value, copy=True)
                object.__setattr__(module, buf_name, module._buffers[buf_name])

    def __repr__(self) -> str:
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Chain of modules executed (and back-propagated) in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        for idx, layer in enumerate(layers):
            self.add_module(str(idx), layer)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._modules.values():
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(list(self._modules.values())):
            grad_out = layer.backward(grad_out)
        return grad_out


class Identity(Module):
    """Pass-through layer (useful for optional residual downsampling paths)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
