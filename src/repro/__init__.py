"""Reproduction of "Algorithm-Hardware Co-Design for Energy-Efficient A/D
Conversion in ReRAM-Based Accelerators" (DATE 2024).

The package is organised bottom-up:

* :mod:`repro.nn`, :mod:`repro.datasets` -- NumPy DNN framework and synthetic
  datasets (substitutes for PyTorch and MNIST/CIFAR/ImageNet).
* :mod:`repro.quantization` -- the 8-bit post-training quantization datapath.
* :mod:`repro.crossbar`, :mod:`repro.adc` -- ReRAM crossbar and SAR-ADC
  behavioural models, including the paper's Twin-Range SAR ADC.
* :mod:`repro.core` -- the paper's contribution: Twin Range Quantization,
  bit-line distribution analysis and the algorithm-hardware co-design search
  (Algorithm 1).
* :mod:`repro.nonideal` -- composable, registry-driven device non-ideality
  models with counter-based keyed sampling (bit-identical across engines).
* :mod:`repro.arch`, :mod:`repro.sim` -- ISAAC-style accelerator model and the
  end-to-end PIM simulator used by the evaluation benchmarks, including
  Monte Carlo robustness runs (``PimSimulator.run_monte_carlo``).
* :mod:`repro.report` -- tabulation helpers that regenerate the paper's
  figures as text series.
* :mod:`repro.workloads` -- one-call preparation of the paper's four
  evaluation workloads (train, calibrate, quantize, simulate).

Quickstart::

    from repro.workloads import prepare_workload
    from repro.core import CoDesignOptimizer

    wl = prepare_workload("lenet5", preset="tiny")
    optimizer = CoDesignOptimizer(wl.model, wl.calibration.images, wl.calibration.labels)
    result = optimizer.run(wl.dataset.test.images[:64], wl.dataset.test.labels[:64])
    print(result.final_accuracy, result.ops_reduction_factor)

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from repro.core.co_design import CoDesignOptimizer, CoDesignResult
from repro.core.trq import TRQParams, twin_range_quantize
from repro.nonideal import NonIdealityStack
from repro.workloads import PreparedWorkload, prepare_all_workloads, prepare_workload

__version__ = "1.1.0"

__all__ = [
    "CoDesignOptimizer",
    "CoDesignResult",
    "NonIdealityStack",
    "PreparedWorkload",
    "TRQParams",
    "__version__",
    "prepare_all_workloads",
    "prepare_workload",
    "twin_range_quantize",
]
