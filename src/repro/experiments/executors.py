"""The executor layer: pluggable strategies for running scheduled waves.

The scheduler (:mod:`repro.experiments.scheduler`) decides *what* runs and
in *which order*; an :class:`Executor` decides *where*.  Four built-ins:

* :class:`SerialExecutor` — in-process, one job at a time.  The per-process
  workload/artifact memos make consecutive jobs cheap; this is the
  byte-reference every other executor is tested against.
* :class:`ProcessPoolExecutor` — a ``concurrent.futures`` process pool.
  Derived-seed determinism makes worker results bit-identical to in-process
  ones; the store's atomic writes make concurrent completion safe.
* :class:`ShardedExecutor` — partitions each wave round-robin into N
  *shard manifests* (JSON job lists) and runs each as an independent
  ``python -m repro.experiments shard run`` subprocess against the same
  content-addressed store.  The same manifest format drives the explicit
  multi-machine flow (``shard emit`` → N × ``shard run`` → ``shard
  merge``): because artifacts are content-addressed and writes are atomic,
  shards never coordinate — at worst two shards compute the same shared
  sibling and store identical bytes.
* :class:`RemoteExecutor` — the cluster-shaped strategy: shard manifests
  dispatched over a pluggable :class:`Transport`
  (:class:`LocalSubprocessTransport` today, SSH later) to workers with
  *private* per-task stores, synced before dispatch and merged on return
  (:meth:`ResultStore.merge_from`), with dropped-shard retry and two-gate
  straggler re-dispatch — duplicate execution is harmless by construction
  (content addressing + the store's cross-process locking).

Executors are context managers, and **cancellation lives here**: leaving
the ``with`` block on an exception (Ctrl-C, first-failure abort,
``MaxFailuresExceeded``) is the one place pending work is torn down —
``shutdown(wait=False, cancel_futures=True)`` for the pool, terminated
subprocesses for the shards.  The runner used to repeat that handling
inline around every fan-out.

An executor's :meth:`~Executor.run_wave` receives mutually-independent
:class:`~repro.experiments.scheduler.ScheduledJob` nodes (the scheduler
guarantees their dependencies are already stored) and yields
``(node, error-or-None)`` as each completes.  Completion order is
irrelevant to results: rows are read back from the store in grid order.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.scheduler import ScheduledJob, UpstreamFailed
from repro.experiments.spec import ExperimentSpec, JobSpec, SweepSpec
from repro.experiments.store import (
    FailureLog,
    ResultStore,
    _stage_tmp,
    code_version_salt,
    job_key,
)
from repro.telemetry import events as telemetry_events
from repro.telemetry.resources import ensure_process_sampler
from repro.telemetry.tracer import NULL_TRACER, Tracer, process_tracer
from repro.utils.logging import get_logger

logger = get_logger("experiments.executors")

EXECUTOR_NAMES = ("serial", "process", "sharded", "remote")

#: Manifest schema marker (bump on incompatible manifest layout changes).
SHARD_MANIFEST_FORMAT = "repro-shard-manifest/v1"

WaveOutcome = Tuple[ScheduledJob, Optional[BaseException]]


class ShardJobFailed(RuntimeError):
    """A job failed inside a shard subprocess.

    ``logged`` tells the failure policy whether the shard already persisted
    the real traceback to the store's failure log (it did, unless the
    subprocess itself died before writing results).
    """

    def __init__(self, message: str, logged: bool = True) -> None:
        super().__init__(message)
        self.logged = logged


@dataclasses.dataclass
class ExecutionContext:
    """Everything an executor needs to run jobs against one store.

    The telemetry fields travel in two forms: ``tracer`` is the *live*
    tracer of the driving process (never pickled — executors that fan out
    to other processes must not ship it), while ``trace_dir`` /
    ``trace_run_id`` are the plain-string coordinates a worker or shard
    subprocess uses to open its **own** stream in the same run directory.
    ``wave`` is maintained by :func:`repro.experiments.runner.execute_graph`
    as it walks the topology; ``wave_override`` pins it instead when this
    context executes one wave of a *parent* graph (a ``ShardedExecutor``
    child), so shard-local wave numbering never shadows the parent's and
    wave lifecycle events are not emitted twice.
    """

    store: ResultStore
    weights_cache_dir: Optional[str] = None
    salt: Optional[str] = None
    inject: frozenset = frozenset()
    tracer: Tracer = NULL_TRACER
    trace_dir: Optional[str] = None
    trace_run_id: Optional[str] = None
    wave: Optional[int] = None
    shard: Optional[int] = None
    wave_override: Optional[int] = None
    #: Monte Carlo trials per batched kernel invocation.  ``1`` keeps the
    #: per-trial loop; ``N > 1`` additionally lets the in-process serial
    #: executor coalesce sibling per-seed MC jobs of one wave into a single
    #: batched execution.  Purely an execution knob — job hashes and store
    #: bytes are invariant under it.
    trial_batch: int = 1

    def should_inject(self, node: ScheduledJob) -> bool:
        return any(index in self.inject for index in node.indices)

    # ------------------------------------------------------------------ #
    def job_trace_fields(
        self, node: ScheduledJob, submitted_mono: Optional[float] = None
    ) -> Dict[str, object]:
        """The per-job event fields for an in-process ``execute_job`` call."""
        return {
            "index": node.index,
            "wave": self.wave,
            "shard": self.shard,
            "deps": list(node.dependencies),
            "submitted_mono": submitted_mono,
        }

    def worker_trace(
        self, node: ScheduledJob, submitted_mono: Optional[float] = None
    ) -> Optional[Dict[str, object]]:
        """The picklable trace handle for an out-of-process worker.

        ``None`` when the run is untraced — workers then skip telemetry
        entirely.  ``submitted_mono`` lets the worker compute its
        ``queue_wait_s`` (its clock and ours are the same
        ``CLOCK_MONOTONIC``).
        """
        if self.trace_dir is None:
            return None
        return {
            "dir": self.trace_dir,
            "run_id": self.trace_run_id,
            **self.job_trace_fields(node, submitted_mono=submitted_mono),
        }


def _injected_error(job: JobSpec) -> RuntimeError:
    return RuntimeError(
        f"injected failure (--inject-failure) for {job.kind} job {job.label_dict}"
    )


# --------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------- #
class Executor:
    """Base executor: a context manager that runs waves of scheduled jobs.

    Subclasses implement :meth:`run_wave`; lifecycle (resource setup in
    ``__enter__``, teardown *and cancellation* in ``__exit__``) is the
    base contract the runner relies on.  The runner :meth:`bind`\\ s the
    execution context before entering, which lets an exceptional
    ``__exit__`` emit the terminal ``sweep_abort`` event — without it,
    a Ctrl-C'd trace would leave its in-flight jobs looking
    forever-running to ``trace watch``/``trace show``.
    """

    name: str = "executor"
    #: Whether worker processes benefit from the parent pre-training the
    #: workload weights into the on-disk cache before fan-out.
    needs_prewarm: bool = False
    _context: Optional[ExecutionContext] = None

    def bind(self, context: ExecutionContext) -> "Executor":
        """Attach the execution context for the duration of one graph run."""
        self._context = context
        return self

    def _emit_abort(self, exc_type, exc) -> None:
        """Record the abnormal unwind on the trace (once), then flush.

        Idempotent: the bound context is consumed, so a subclass calling
        this before its teardown suppresses the base ``__exit__``'s call.
        """
        context, self._context = self._context, None
        if exc_type is None or context is None:
            return
        tracer = context.tracer
        if not tracer.enabled:
            return
        tracer.emit(
            telemetry_events.SWEEP_ABORT,
            reason=exc_type.__name__,
            error=str(exc) or None,
        )
        tracer.flush()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._emit_abort(exc_type, exc)
        return False

    def run_wave(
        self,
        wave: Sequence[ScheduledJob],
        context: ExecutionContext,
    ) -> Iterator[WaveOutcome]:
        """Execute one wave of mutually-independent jobs.

        Yields ``(node, None)`` for each success and ``(node, error)`` for
        each failure, in completion order.  Must not raise for ordinary
        job failures — only for executor-level problems (and
        ``KeyboardInterrupt``, which the runner turns into cancellation
        via ``__exit__``).
        """
        raise NotImplementedError


def resolve_executor(
    executor: Union[str, Executor, None] = None,
    jobs: int = 1,
    shards: int = 2,
    workers: int = 2,
) -> Executor:
    """Resolve the ``run_sweep`` executor argument to an instance.

    ``None`` keeps the historical behaviour: a process pool when
    ``jobs > 1``, in-process otherwise.  ``workers`` sizes the ``remote``
    executor's dispatch fan-out (ignored otherwise).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        executor = "process" if jobs > 1 else "serial"
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessPoolExecutor(max_workers=jobs)
    if executor == "sharded":
        return ShardedExecutor(shards=shards)
    if executor == "remote":
        return RemoteExecutor(workers=workers)
    raise ValueError(
        f"unknown executor {executor!r} (expected one of {EXECUTOR_NAMES})"
    )


# --------------------------------------------------------------------- #
# Serial
# --------------------------------------------------------------------- #
class SerialExecutor(Executor):
    """In-process execution, one job at a time, in scheduler order.

    With ``context.trial_batch > 1``, sibling per-seed Monte Carlo jobs of
    one wave (same :func:`~repro.experiments.runner.mc_group_signature` —
    they differ only in ``mc_seed``) are coalesced into a single batched
    execution: one clean reference, one prepared workload, and all trials
    flattened through the batched trials kernel.  Store artifacts stay
    byte-identical to per-job execution; grouping only changes wall time.
    """

    name = "serial"

    def run_wave(
        self, wave: Sequence[ScheduledJob], context: ExecutionContext
    ) -> Iterator[WaveOutcome]:
        from repro.experiments.runner import (  # lazy: cycle
            execute_job,
            execute_mc_group_nodes,
            mc_group_signature,
        )

        # The whole wave is "submitted" when it is handed over, so a serial
        # job's queue wait honestly includes its predecessors' run time.
        submitted = time.monotonic()
        groups: Dict[str, List[ScheduledJob]] = {}
        if context.trial_batch > 1:
            for node in wave:
                signature = mc_group_signature(node.job)
                if signature is not None:
                    groups.setdefault(signature, []).append(node)
            groups = {
                signature: nodes
                for signature, nodes in groups.items()
                if len(nodes) > 1
            }
        grouped = {id(node) for nodes in groups.values() for node in nodes}
        for node in wave:
            if id(node) in grouped:
                continue
            try:
                if context.should_inject(node):
                    raise _injected_error(node.job)
                execute_job(
                    node.job, context.store, context.weights_cache_dir, context.salt,
                    tracer=context.tracer,
                    trace_fields=context.job_trace_fields(node, submitted_mono=submitted),
                    trial_batch=context.trial_batch,
                )
            except KeyboardInterrupt:
                raise
            except Exception as error:  # noqa: BLE001 - the policy decides
                yield node, error
            else:
                yield node, None
        for nodes in groups.values():
            yield from execute_mc_group_nodes(nodes, context, submitted_mono=submitted)


# --------------------------------------------------------------------- #
# Process pool
# --------------------------------------------------------------------- #
class ProcessPoolExecutor(Executor):
    """A ``concurrent.futures`` process-pool executor.

    The pool lives for the whole sweep (workers keep their workload memos
    warm across waves).  ``__exit__`` is the single cancellation point: a
    clean exit drains the pool, an exceptional one drops queued futures
    and abandons the workers (``wait=False, cancel_futures=True``).
    """

    name = "process"
    needs_prewarm = True

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def __enter__(self) -> "ProcessPoolExecutor":
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Abort is recorded before teardown so its timestamp marks the
        # unwind instant, not the (possibly slow) worker shutdown.
        self._emit_abort(exc_type, exc)
        pool, self._pool = self._pool, None
        if pool is not None:
            if exc_type is None:
                pool.shutdown(wait=True)
            else:
                # The one cancellation path: Ctrl-C, first-failure abort and
                # MaxFailuresExceeded all unwind through here.
                pool.shutdown(wait=False, cancel_futures=True)
        return False

    def run_wave(
        self, wave: Sequence[ScheduledJob], context: ExecutionContext
    ) -> Iterator[WaveOutcome]:
        from repro.experiments.runner import _worker_execute  # lazy: cycle

        if self._pool is None:
            raise RuntimeError("ProcessPoolExecutor used outside its context")
        submitted = time.monotonic()
        futures = {
            self._pool.submit(
                _worker_execute,
                node.job.to_dict(),
                str(context.store.root),
                context.weights_cache_dir,
                context.salt,
                context.should_inject(node),
                context.worker_trace(node, submitted_mono=submitted),
            ): node
            for node in wave
        }
        for future in concurrent.futures.as_completed(futures):
            node = futures[future]
            try:
                future.result()
            except Exception as error:  # noqa: BLE001 - the policy decides
                yield node, error
            else:
                yield node, None


# --------------------------------------------------------------------- #
# Shard manifests (shared by ShardedExecutor and the `shard` CLI)
# --------------------------------------------------------------------- #
def _round_robin(items: Sequence, shards: int) -> List[List]:
    """The one partition policy, shared by ``plan_shards`` (the
    emit/run/merge flow) and ``ShardedExecutor`` (per-wave groups), so the
    two sharding paths can never balance work differently."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [list(items[i::shards]) for i in range(shards)]


def plan_shards(
    jobs: Sequence[JobSpec], shards: int
) -> List[List[Tuple[int, JobSpec]]]:
    """Partition a sweep's expanded jobs round-robin into ``shards`` groups.

    Round-robin over the expansion index balances the expensive kinds
    (which presets tend to list contiguously) across shards, and makes the
    partition a pure function of (sweep, shard count).
    """
    return _round_robin(list(enumerate(jobs)), shards)


def shard_manifest_dict(
    entries: Sequence[Tuple[Optional[int], JobSpec, bool]],
    shard_index: int,
    shard_count: int,
    salt: Optional[str] = None,
    sweep: Optional[SweepSpec] = None,
    experiment: Optional[ExperimentSpec] = None,
    telemetry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON manifest of one shard: a job-key list plus the specs.

    ``entries`` are ``(sweep index or None, job, inject_failure)``.  The
    resolved salt rides along so every shard (and the merge) addresses the
    same artifacts; the sweep spec and experiment identity are included
    when known so ``shard merge`` can rebuild the full aggregate —
    byte-identical to a single-process ``run`` — without the original
    command line.  ``telemetry`` (``{"dir", "run_id", "wave"}``) tells the
    ``shard run`` subprocess to append its own event stream to the
    parent's trace run — ``wave`` pins the parent's wave number so the
    shard's jobs attribute to the wave that scheduled them.
    """
    manifest: Dict[str, object] = {
        "format": SHARD_MANIFEST_FORMAT,
        "shard_index": int(shard_index),
        "shard_count": int(shard_count),
        "salt": salt if salt is not None else code_version_salt(),
        "jobs": [
            {
                "index": index,
                "key": job_key(job, salt),
                "spec": job.to_dict(),
                "inject_failure": bool(inject),
            }
            for index, job, inject in entries
        ],
    }
    if telemetry is not None:
        manifest["telemetry"] = {
            key: value for key, value in telemetry.items() if value is not None
        }
    if sweep is not None:
        manifest["sweep"] = sweep.to_dict()
    if experiment is not None:
        manifest["experiment"] = {
            "experiment_id": experiment.experiment_id,
            "description": experiment.description,
            "paper_reference": experiment.paper_reference,
        }
    return manifest


def write_shard_manifests(
    sweep: SweepSpec,
    shards: int,
    directory: Union[str, Path],
    salt: Optional[str] = None,
    experiment: Optional[ExperimentSpec] = None,
) -> List[Path]:
    """Emit one manifest per shard for a full sweep (the ``shard emit`` CLI).

    Every shard is self-contained: ``shard run`` resolves dependencies
    through the scheduler at run time, loading shared siblings from the
    store when another shard (or an earlier run) already computed them and
    computing them itself otherwise — identical bytes either way.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = (experiment.experiment_id if experiment else sweep.name).replace("/", "_")
    paths: List[Path] = []
    for shard_index, group in enumerate(plan_shards(sweep.expand(), shards)):
        manifest = shard_manifest_dict(
            [(index, job, False) for index, job in group],
            shard_index,
            shards,
            salt=salt,
            sweep=sweep,
            experiment=experiment,
        )
        path = directory / f"{stem}-shard{shard_index}of{shards}.json"
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        paths.append(path)
    return paths


def load_shard_manifest(path: Union[str, Path]) -> Dict[str, object]:
    manifest = json.loads(Path(path).read_text())
    if manifest.get("format") != SHARD_MANIFEST_FORMAT:
        raise ValueError(
            f"{path} is not a shard manifest (format "
            f"{manifest.get('format')!r}, expected {SHARD_MANIFEST_FORMAT!r})"
        )
    return manifest


def manifest_result_path(manifest_path: Union[str, Path]) -> Path:
    """Where ``shard run`` persists its per-job statuses."""
    manifest_path = Path(manifest_path)
    return manifest_path.with_name(f"{manifest_path.stem}.result.json")


def shard_status_outcome(
    node: ScheduledJob,
    status: Optional[Dict[str, object]],
    returncode: Optional[int],
    stderr: bytes = b"",
) -> Optional[BaseException]:
    """Map one ``shard run`` status row to the runner-facing outcome.

    The single translation both shard-dispatching executors
    (:class:`ShardedExecutor` and :class:`RemoteExecutor`) apply, so a
    status can never mean two different things depending on where the
    shard ran.  ``None`` status means the shard produced no row for this
    node (the subprocess died or the transport lost it): that is a
    *not-logged* failure — the shard never got to persist a traceback.
    """
    if status is None:
        detail = (stderr or b"").decode("utf-8", "replace").strip()
        return ShardJobFailed(
            f"shard subprocess exited {returncode} without a "
            f"result for {node.key[:12]}"
            + (f": {detail[-300:]}" if detail else ""),
            logged=False,
        )
    if status["status"] in ("done", "cached"):
        return None
    if status["status"] == "upstream_failed":
        upstream = UpstreamFailed(
            str(status.get("error", "upstream failed")),
            str(status.get("cause_key", node.key)),
        )
        upstream.logged = True  # the shard persisted the entry
        return upstream
    return ShardJobFailed(str(status.get("error", "failed")))


def run_shard_manifest(
    manifest: Dict[str, object],
    store: ResultStore,
    weights_cache_dir: Optional[str] = None,
    progress=None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> List[Dict[str, object]]:
    """Execute one shard manifest's jobs serially against ``store``.

    Dependencies are resolved through the scheduler exactly like a normal
    run (stored siblings are loaded, missing ones computed), failures are
    tolerated — each is persisted to the store's failure log, dependents
    are marked ``upstream_failed`` with the root cause — and a status row
    per job (plus any extra shared artifacts) is returned for the caller
    to persist.  Budget enforcement (``--max-failures``) is the *parent's*
    responsibility: a shard cannot see its siblings' failures.

    Tracing: the manifest's ``telemetry`` block (written by a traced
    parent) or an explicit ``trace_dir`` (the standalone ``shard run
    --trace-dir`` flow) makes this process append its own event stream to
    that run directory.  Untraced manifests pay nothing.
    """
    from repro.experiments.runner import execute_graph  # lazy: cycle
    from repro.experiments.scheduler import build_job_graph
    from repro.experiments.store import FailureLog

    salt = manifest.get("salt")
    entries = list(manifest.get("jobs", ()))
    shard_index = manifest.get("shard_index")
    telemetry = dict(manifest.get("telemetry") or {})
    if trace_dir is not None:  # the explicit flag wins over the manifest
        telemetry["dir"] = str(trace_dir)
    tracer: Tracer = NULL_TRACER
    if telemetry.get("dir"):
        tracer = process_tracer(telemetry["dir"], telemetry.get("run_id"))
        # Each shard subprocess contributes its own resource_sample stream.
        ensure_process_sampler(tracer)
    failure_log = FailureLog(store)
    statuses: List[Dict[str, object]] = []
    pending: List[Tuple[Optional[int], JobSpec]] = []
    inject: set = set()
    synthetic = -1  # distinct negative pseudo-indices for index-less entries
    for entry in entries:
        job = JobSpec.from_dict(entry["spec"])
        index = entry.get("index")
        key = job_key(job, salt)
        if store.has(key):
            if failure_log.has(key):  # healed on an earlier (re)run
                failure_log.clear(key)
            statuses.append(
                {"key": key, "index": index, "kind": job.kind, "status": "cached"}
            )
            tracer.emit(
                telemetry_events.JOB_CACHED,
                key=key, kind=job.kind, index=index, shard=shard_index,
            )
            continue
        if index is None:
            index = synthetic
            synthetic -= 1
        if entry.get("inject_failure"):
            inject.add(index)
        pending.append((index, job))

    graph = build_job_graph(pending, store, salt)
    context = ExecutionContext(
        store=store,
        weights_cache_dir=weights_cache_dir,
        salt=salt,
        inject=frozenset(inject),
        tracer=tracer,
        trace_dir=telemetry.get("dir"),
        trace_run_id=telemetry.get("run_id"),
        shard=shard_index,
        wave_override=telemetry.get("wave"),
    )

    def on_result(node: ScheduledJob, error: Optional[BaseException]) -> None:
        index = node.index if (node.index is None or node.index >= 0) else None
        status = {
            "key": node.key,
            "index": index,
            "kind": node.job.kind,
            "status": "done",
        }
        if error is None and failure_log.has(node.key):
            failure_log.clear(node.key)  # a success heals the stale entry
        if error is not None:
            if isinstance(error, UpstreamFailed):
                status["status"] = "upstream_failed"
                status["cause_key"] = error.cause_key
            else:
                status["status"] = "failed"
            status["error"] = f"{type(error).__name__}: {error}"
            cause_key = getattr(error, "cause_key", None)
            failure_log.record(
                node.key, node.job, error, index=index, cause_key=cause_key
            )
        if progress is not None:
            progress(f"  shard job {node.describe()}: {status['status']}")
        statuses.append(status)

    execute_graph(graph, SerialExecutor(), context, on_result)
    return statuses


# --------------------------------------------------------------------- #
# Sharded executor
# --------------------------------------------------------------------- #
def _shard_subprocess_env() -> Dict[str, str]:
    """The child environment: the running ``repro`` package on PYTHONPATH."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


class ShardedExecutor(Executor):
    """Run each wave as N independent ``shard run`` subprocesses.

    Every wave is partitioned round-robin into ``shards`` manifests; each
    subprocess executes its manifest serially against the same store and
    writes a result file of per-job statuses.  This is the in-process face
    of the multi-machine flow — the manifests it writes are exactly what
    ``shard emit`` produces, just one wave at a time.

    Subprocess teardown on an exceptional exit (Ctrl-C, budget exceeded)
    happens in ``__exit__`` — the same centralised cancellation contract as
    the process pool.
    """

    name = "sharded"
    needs_prewarm = True

    def __init__(self, shards: int = 2) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._procs: List[subprocess.Popen] = []
        self._wave = 0

    def __enter__(self) -> "ShardedExecutor":
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._emit_abort(exc_type, exc)
        procs, self._procs = self._procs, []
        if exc_type is not None:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    proc.kill()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        return False

    def run_wave(
        self, wave: Sequence[ScheduledJob], context: ExecutionContext
    ) -> Iterator[WaveOutcome]:
        if self._tmpdir is None:
            raise RuntimeError("ShardedExecutor used outside its context")
        self._wave += 1
        groups = [group for group in _round_robin(list(wave), self.shards) if group]
        launches: List[
            Tuple[subprocess.Popen, Path, Path, List[ScheduledJob]]
        ] = []
        env = _shard_subprocess_env()
        for shard_index, group in enumerate(groups):
            manifest = shard_manifest_dict(
                [
                    (node.index, node.job, context.should_inject(node))
                    for node in group
                ],
                shard_index,
                len(groups),
                salt=context.salt,
                telemetry=(
                    {
                        "dir": context.trace_dir,
                        "run_id": context.trace_run_id,
                        "wave": context.wave,
                    }
                    if context.trace_dir is not None
                    else None
                ),
            )
            path = Path(self._tmpdir.name) / (
                f"wave{self._wave}-shard{shard_index}of{len(groups)}.json"
            )
            path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
            stderr_path = path.with_name(f"{path.stem}.stderr")
            # Always pin --cache-dir: the child CLI's default is a path
            # relative to its cwd (benchmarks/.cache), which a library
            # caller with no cache configured must not inherit — a
            # throwaway cache inside the executor's tempdir keeps the
            # subprocesses hermetic (weights are deterministic either way).
            cache_dir = context.weights_cache_dir or str(
                Path(self._tmpdir.name) / "weights-cache"
            )
            command = [
                sys.executable, "-m", "repro.experiments", "shard", "run",
                str(path), "--store", str(context.store.root),
                "--cache-dir", cache_dir,
            ]
            # stderr goes to a file, not a pipe: a verbose shard must never
            # stall on pipe backpressure while the parent drains its
            # siblings in launch order.
            with open(stderr_path, "wb") as stderr_handle:
                proc = subprocess.Popen(
                    command, env=env,
                    stdout=subprocess.DEVNULL, stderr=stderr_handle,
                )
            launches.append((proc, path, stderr_path, group))
            # Registered as launched (not after the loop): an interrupt or a
            # failed later Popen must let __exit__ terminate the live ones.
            self._procs.append(proc)
        for proc, path, stderr_path, group in launches:
            proc.wait()
            stderr = stderr_path.read_bytes() if stderr_path.exists() else b""
            result_path = manifest_result_path(path)
            statuses: Dict[str, Dict[str, object]] = {}
            if result_path.exists():
                for status in json.loads(result_path.read_text()).get("statuses", ()):
                    statuses[status["key"]] = status
            elif proc.returncode != 0:
                logger.warning(
                    "shard subprocess exited %d without results: %s",
                    proc.returncode,
                    (stderr or b"").decode("utf-8", "replace").strip()[-500:],
                )
            for node in group:
                yield node, shard_status_outcome(
                    node, statuses.get(node.key), proc.returncode, stderr
                )
        self._procs = []


# --------------------------------------------------------------------- #
# Transports + the remote executor
# --------------------------------------------------------------------- #
class Transport:
    """Where a dispatched shard command actually runs.

    The seam that keeps :class:`RemoteExecutor` host-agnostic:
    :meth:`submit` launches one ``shard run`` command and returns a
    *handle* exposing the small ``Popen``-shaped surface the executor
    polls — ``poll() -> Optional[int]`` (the exit code once finished),
    ``wait(timeout)``, ``terminate()`` and a ``returncode`` attribute.
    :class:`LocalSubprocessTransport` returns the ``Popen`` itself; an
    SSH transport would return a wrapper that also ships the workspace
    both ways; the chaos transports in ``tests/harness`` return handles
    that drop, kill or duplicate shards to prove the executor's retry
    and merge paths.
    """

    name = "transport"

    def submit(
        self,
        command: Sequence[str],
        stderr_path: Path,
        env: Dict[str, str],
    ):
        """Start ``command`` with stderr captured to ``stderr_path``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (connections, agents); idempotent."""


class LocalSubprocessTransport(Transport):
    """Workers are plain subprocesses of the coordinating host.

    The degenerate — but fully honest — transport: every dispatch runs
    the real ``shard run`` CLI in its own process against the task's
    private worker store, exactly as a multi-host transport would on a
    remote machine that happens to share the filesystem.
    """

    name = "local"

    def submit(
        self,
        command: Sequence[str],
        stderr_path: Path,
        env: Dict[str, str],
    ) -> subprocess.Popen:
        # stderr to a file, not a pipe: a verbose shard must never stall
        # on pipe backpressure while the coordinator is polling siblings.
        with open(stderr_path, "wb") as stderr_handle:
            return subprocess.Popen(
                list(command), env=env,
                stdout=subprocess.DEVNULL, stderr=stderr_handle,
            )


@dataclasses.dataclass
class _ShardAttempt:
    """One dispatch of a shard manifest over the transport."""

    handle: object
    result_path: Path
    stderr_path: Path
    started: float
    live: bool = True


@dataclasses.dataclass
class _ShardTask:
    """One shard of a wave: its manifest, worker store and attempts."""

    shard_index: int
    group: List[ScheduledJob]
    workspace: Path
    manifest_path: Path
    worker_store: ResultStore
    attempts: List[_ShardAttempt] = dataclasses.field(default_factory=list)
    statuses: Optional[Dict[str, Dict[str, object]]] = None
    returncode: Optional[int] = None
    stderr: bytes = b""
    done: bool = False


def _absorb_failures(
    worker_store: ResultStore, main_store: ResultStore, keys: Sequence[str]
) -> None:
    """Copy a worker's failure-log entries (real tracebacks) into the main
    store, so the runner's failure policy reads the worker's record instead
    of re-wrapping a summary exception."""
    src = FailureLog(worker_store)
    dst = FailureLog(main_store)
    for key in keys:
        if not src.has(key):
            continue
        entry = src.path(key).read_bytes()
        dst.root.mkdir(parents=True, exist_ok=True)
        tmp = _stage_tmp(dst.path(key), lambda handle, _b=entry: handle.write(_b))
        try:
            with dst.lock.held():
                os.replace(tmp, dst.path(key))
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise


class RemoteExecutor(Executor):
    """Dispatch each wave's shard manifests to workers over a transport.

    The cluster-shaped executor: every wave is partitioned round-robin
    into at most ``workers`` shard manifests, and each manifest is
    dispatched over the pluggable :class:`Transport` to run against a
    *private per-task worker store* — never directly against the main
    store.  Before dispatch, the coordinator syncs the task's stored
    inputs (its nodes' satisfied and previously-computed dependencies)
    into the worker store; when an attempt returns a result file, the
    worker store is merged back (:meth:`ResultStore.merge_from`) and the
    worker's failure-log entries are absorbed.  With the local transport
    the sync is a file copy; the same two hooks are where an SSH
    transport would rsync.

    Fault tolerance, all proven by the chaos harness in ``tests/``:

    * **Dropped shards** — an attempt that exits without a readable
      result file is re-dispatched, up to ``max_dispatches`` attempts
      per shard; only then does the shard report not-logged failures.
    * **Stragglers** — once at least one shard of the wave has finished,
      a still-running shard whose elapsed time trips the shared two-gate
      threshold (:func:`repro.telemetry.analysis.exceeds_gates`:
      ``straggler_factor`` × the median finished duration **and**
      ``straggler_min_gap_s`` slower) gets a *backup* attempt dispatched
      while the original keeps running; first attempt to produce a
      result wins and the loser is terminated.  ``force_redispatch``
      dispatches the backup immediately for every shard — the CI smoke
      uses it to prove duplicate execution end to end.
    * **Duplicate execution is harmless** — two attempts of one manifest
      run concurrently against one worker store; content addressing plus
      the store's cross-process locking make their writes identical and
      atomic, so the merge result is byte-identical to a serial run.

    Telemetry: dispatches emit ``shard_dispatch``/``shard_redispatch``
    on the coordinator's stream, and (with the local transport) each
    worker process appends its own event stream to the same
    ``telemetry/<run-id>/`` directory, exactly like ``shard run``.
    """

    name = "remote"
    needs_prewarm = True

    def __init__(
        self,
        workers: int = 2,
        transport: Optional[Transport] = None,
        max_dispatches: int = 3,
        straggler_factor: float = 2.0,
        straggler_min_gap_s: float = 30.0,
        poll_interval_s: float = 0.05,
        force_redispatch: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_dispatches < 1:
            raise ValueError(f"max_dispatches must be >= 1, got {max_dispatches}")
        self.workers = workers
        self.transport = transport if transport is not None else LocalSubprocessTransport()
        self.max_dispatches = max_dispatches
        self.straggler_factor = straggler_factor
        self.straggler_min_gap_s = straggler_min_gap_s
        self.poll_interval_s = poll_interval_s
        self.force_redispatch = force_redispatch
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._handles: List[object] = []
        self._wave = 0

    def __enter__(self) -> "RemoteExecutor":
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-remote-")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._emit_abort(exc_type, exc)
        handles, self._handles = self._handles, []
        if exc_type is not None:
            for handle in handles:
                if handle.poll() is None:
                    handle.terminate()
            for handle in handles:
                try:
                    handle.wait(timeout=5)
                except Exception:  # pragma: no cover - last resort
                    pass
        self.transport.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        return False

    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        task: _ShardTask,
        context: ExecutionContext,
        cache_dir: str,
        env: Dict[str, str],
        reason: Optional[str] = None,
    ) -> None:
        """Launch one (re-)attempt of a shard over the transport."""
        attempt_index = len(task.attempts)
        # Per-attempt result/stderr paths: two live attempts of one shard
        # must never race on their reporting files (the worker *store* is
        # shared on purpose — that race is the one the store resolves).
        result_path = task.workspace / f"attempt{attempt_index}.result.json"
        stderr_path = task.workspace / f"attempt{attempt_index}.stderr"
        command = [
            sys.executable, "-m", "repro.experiments", "shard", "run",
            str(task.manifest_path),
            "--store", str(task.worker_store.root),
            "--cache-dir", cache_dir,
            "--result", str(result_path),
        ]
        handle = self.transport.submit(command, stderr_path, env)
        task.attempts.append(
            _ShardAttempt(
                handle=handle, result_path=result_path,
                stderr_path=stderr_path, started=time.monotonic(),
            )
        )
        self._handles.append(handle)
        context.tracer.emit(
            telemetry_events.SHARD_DISPATCH if reason is None
            else telemetry_events.SHARD_REDISPATCH,
            wave=context.wave, shard=task.shard_index, attempt=attempt_index,
            transport=self.transport.name, jobs=len(task.group),
            **({} if reason is None else {"reason": reason}),
        )
        if reason is not None:
            logger.info(
                "re-dispatching shard %d (attempt %d, reason=%s)",
                task.shard_index, attempt_index, reason,
            )

    @staticmethod
    def _read_statuses(attempt: _ShardAttempt) -> Optional[Dict[str, Dict[str, object]]]:
        """The attempt's status rows keyed by artifact, ``None`` if unusable.

        A missing or torn result file (the transport dropped the shard,
        the worker died mid-write) is indistinguishable from "never ran"
        on purpose: both re-dispatch.
        """
        if not attempt.result_path.exists():
            return None
        try:
            rows = json.loads(attempt.result_path.read_text()).get("statuses")
        except json.JSONDecodeError:
            return None
        if rows is None:
            return None
        return {str(row["key"]): row for row in rows}

    def _finish_losers(self, task: _ShardTask) -> None:
        """Terminate a finished task's still-live backup attempts."""
        for attempt in task.attempts:
            if not attempt.live:
                continue
            attempt.live = False
            if attempt.handle.poll() is None:
                attempt.handle.terminate()
            try:
                attempt.handle.wait(timeout=5)
            except Exception:  # pragma: no cover - last resort
                pass

    def _poll(
        self,
        tasks: List[_ShardTask],
        context: ExecutionContext,
        cache_dir: str,
        env: Dict[str, str],
    ) -> None:
        """Drive every task to completion: reap, retry drops, back up stragglers."""
        durations: List[float] = []
        while True:
            pending = [task for task in tasks if not task.done]
            if not pending:
                return
            for task in pending:
                for attempt in task.attempts:
                    if not attempt.live:
                        continue
                    code = attempt.handle.poll()
                    if code is None:
                        continue
                    attempt.live = False
                    task.returncode = code
                    if attempt.stderr_path.exists():
                        task.stderr = attempt.stderr_path.read_bytes()
                    statuses = self._read_statuses(attempt)
                    if statuses is not None and task.statuses is None:
                        task.statuses = statuses
                        task.done = True
                        durations.append(time.monotonic() - attempt.started)
                if task.done:
                    self._finish_losers(task)
                    continue
                if not any(attempt.live for attempt in task.attempts):
                    # Every attempt died without a result: a dropped shard.
                    if len(task.attempts) < self.max_dispatches:
                        self._dispatch(task, context, cache_dir, env, reason="no_result")
                    else:
                        task.done = True  # exhausted: reported as failures
                    continue
                if (
                    durations
                    and len(task.attempts) < self.max_dispatches
                    and sum(1 for attempt in task.attempts if attempt.live) == 1
                ):
                    busy = time.monotonic() - min(
                        attempt.started for attempt in task.attempts if attempt.live
                    )
                    from repro.telemetry.analysis import exceeds_gates  # lazy: cycle-free but heavy

                    if exceeds_gates(
                        busy, statistics.median(durations),
                        self.straggler_factor, self.straggler_min_gap_s,
                    ):
                        self._dispatch(task, context, cache_dir, env, reason="straggler")
            time.sleep(self.poll_interval_s)

    # ------------------------------------------------------------------ #
    def run_wave(
        self, wave: Sequence[ScheduledJob], context: ExecutionContext
    ) -> Iterator[WaveOutcome]:
        if self._tmpdir is None:
            raise RuntimeError("RemoteExecutor used outside its context")
        self._wave += 1
        groups = [group for group in _round_robin(list(wave), self.workers) if group]
        env = _shard_subprocess_env()
        # Pin --cache-dir like ShardedExecutor: hermetic throwaway cache
        # when the caller configured none (weights are deterministic).
        cache_dir = context.weights_cache_dir or str(
            Path(self._tmpdir.name) / "weights-cache"
        )
        tasks: List[_ShardTask] = []
        for shard_index, group in enumerate(groups):
            workspace = Path(self._tmpdir.name) / (
                f"wave{self._wave}-shard{shard_index}"
            )
            workspace.mkdir(parents=True, exist_ok=True)
            worker_store = ResultStore(workspace / "store")
            # Per-shard store sync, main -> worker: every stored artifact
            # the shard's jobs will read (store-satisfied dependencies and
            # dependencies computed in earlier waves).  Anything missed is
            # recomputed by the worker — identical bytes either way.
            inputs = sorted({
                key
                for node in group
                for key in (*node.dependencies, *node.satisfied)
                if context.store.has(key)
            })
            if inputs:
                worker_store.merge_from(context.store, keys=inputs)
            manifest = shard_manifest_dict(
                [
                    (node.index, node.job, context.should_inject(node))
                    for node in group
                ],
                shard_index,
                len(groups),
                salt=context.salt,
                telemetry=(
                    {
                        "dir": context.trace_dir,
                        "run_id": context.trace_run_id,
                        "wave": context.wave,
                    }
                    if context.trace_dir is not None
                    else None
                ),
            )
            manifest_path = workspace / "manifest.json"
            manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
            task = _ShardTask(
                shard_index=shard_index, group=list(group), workspace=workspace,
                manifest_path=manifest_path, worker_store=worker_store,
            )
            tasks.append(task)
            self._dispatch(task, context, cache_dir, env)
            if self.force_redispatch:
                self._dispatch(task, context, cache_dir, env, reason="forced")
        self._poll(tasks, context, cache_dir, env)
        self._handles = []
        for task in tasks:
            # Merge-on-return: fold the worker's artifacts into the main
            # store (keys already present are skipped — identical bytes by
            # content addressing), then absorb failure entries so the
            # runner's policy reads the worker's real tracebacks.
            context.store.merge_from(task.worker_store)
            statuses = task.statuses or {}
            _absorb_failures(
                task.worker_store, context.store,
                [
                    key for key, row in statuses.items()
                    if row.get("status") in ("failed", "upstream_failed")
                ],
            )
            for node in task.group:
                yield node, shard_status_outcome(
                    node, statuses.get(node.key), task.returncode, task.stderr
                )
