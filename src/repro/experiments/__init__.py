"""Parallel experiment orchestration.

Declarative sweep specs over (workload × ADC config × non-ideality stack ×
Monte Carlo seed), a content-addressed result store keyed on the
fully-resolved job spec plus a code-version salt, and a resumable
serial/parallel executor with deterministic aggregation.  See
:mod:`repro.experiments.spec`, :mod:`repro.experiments.store` and
:mod:`repro.experiments.runner`; ``python -m repro.experiments`` is the CLI.

Quickstart::

    from repro.experiments import build_preset, run_sweep

    experiment = build_preset("multi-workload-robustness", smoke=True)
    run = run_sweep(experiment.sweep, "benchmarks/results/store", jobs=2,
                    weights_cache_dir="benchmarks/.cache")
    print(run.record.to_table())
"""

from repro.experiments.executors import (
    ExecutionContext,
    Executor,
    LocalSubprocessTransport,
    ProcessPoolExecutor,
    RemoteExecutor,
    SerialExecutor,
    ShardJobFailed,
    ShardedExecutor,
    Transport,
    load_shard_manifest,
    manifest_result_path,
    plan_shards,
    resolve_executor,
    run_shard_manifest,
    shard_status_outcome,
    write_shard_manifests,
)
from repro.experiments.presets import available_presets, build_preset
from repro.experiments.runner import (
    MaxFailuresExceeded,
    SweepRun,
    SweepRunStats,
    aggregate_sweep,
    clear_runner_memos,
    execute_graph,
    execute_job,
    prewarm_workloads,
    run_sweep,
    worker_name,
)
from repro.experiments.scheduler import (
    JobGraph,
    ScheduledJob,
    UpstreamFailed,
    build_job_graph,
    expanded_artifacts,
)
from repro.experiments.spec import (
    AdcSpec,
    CalibrationParams,
    DistributionParams,
    ExperimentSpec,
    JobSpec,
    NoiseScenario,
    PowerSpec,
    SweepSpec,
    WorkloadSpec,
)
from repro.experiments.store import (
    FailureLog,
    ResultStore,
    StoreLock,
    code_version_salt,
    job_key,
)

__all__ = [
    "AdcSpec",
    "CalibrationParams",
    "DistributionParams",
    "ExecutionContext",
    "Executor",
    "ExperimentSpec",
    "FailureLog",
    "JobGraph",
    "JobSpec",
    "LocalSubprocessTransport",
    "MaxFailuresExceeded",
    "NoiseScenario",
    "PowerSpec",
    "ProcessPoolExecutor",
    "RemoteExecutor",
    "ResultStore",
    "ScheduledJob",
    "SerialExecutor",
    "ShardJobFailed",
    "ShardedExecutor",
    "StoreLock",
    "SweepRun",
    "SweepRunStats",
    "SweepSpec",
    "Transport",
    "UpstreamFailed",
    "WorkloadSpec",
    "aggregate_sweep",
    "available_presets",
    "build_job_graph",
    "build_preset",
    "clear_runner_memos",
    "code_version_salt",
    "execute_graph",
    "execute_job",
    "expanded_artifacts",
    "job_key",
    "load_shard_manifest",
    "manifest_result_path",
    "plan_shards",
    "prewarm_workloads",
    "resolve_executor",
    "run_shard_manifest",
    "run_sweep",
    "shard_status_outcome",
    "worker_name",
    "write_shard_manifests",
]
