"""Parallel experiment orchestration.

Declarative sweep specs over (workload × ADC config × non-ideality stack ×
Monte Carlo seed), a content-addressed result store keyed on the
fully-resolved job spec plus a code-version salt, and a resumable
serial/parallel executor with deterministic aggregation.  See
:mod:`repro.experiments.spec`, :mod:`repro.experiments.store` and
:mod:`repro.experiments.runner`; ``python -m repro.experiments`` is the CLI.

Quickstart::

    from repro.experiments import build_preset, run_sweep

    experiment = build_preset("multi-workload-robustness", smoke=True)
    run = run_sweep(experiment.sweep, "benchmarks/results/store", jobs=2,
                    weights_cache_dir="benchmarks/.cache")
    print(run.record.to_table())
"""

from repro.experiments.presets import available_presets, build_preset
from repro.experiments.runner import (
    MaxFailuresExceeded,
    SweepRun,
    SweepRunStats,
    clear_runner_memos,
    execute_job,
    prewarm_workloads,
    run_sweep,
)
from repro.experiments.spec import (
    AdcSpec,
    CalibrationParams,
    DistributionParams,
    ExperimentSpec,
    JobSpec,
    NoiseScenario,
    PowerSpec,
    SweepSpec,
    WorkloadSpec,
)
from repro.experiments.store import (
    FailureLog,
    ResultStore,
    code_version_salt,
    job_key,
)

__all__ = [
    "AdcSpec",
    "CalibrationParams",
    "DistributionParams",
    "ExperimentSpec",
    "FailureLog",
    "JobSpec",
    "MaxFailuresExceeded",
    "NoiseScenario",
    "PowerSpec",
    "ResultStore",
    "SweepRun",
    "SweepRunStats",
    "SweepSpec",
    "WorkloadSpec",
    "available_presets",
    "build_preset",
    "clear_runner_memos",
    "code_version_salt",
    "execute_job",
    "job_key",
    "prewarm_workloads",
    "run_sweep",
]
