"""The orchestration layer: compose scheduler + executor + failure policy.

:func:`run_sweep` is a thin pipeline over three explicit layers:

1. **Dependency layer** (:mod:`repro.experiments.scheduler`) — the sweep's
   pending jobs plus the transitive closure of their declared dependencies
   (:meth:`JobSpec.dependencies`) become a deduplicated, content-addressed
   job graph, scheduled as topological waves of arbitrary depth.
2. **Executor layer** (:mod:`repro.experiments.executors`) — a pluggable
   strategy (``serial`` / ``process`` / ``sharded``) runs each wave;
   cancellation on abort lives in the executor, not here.
3. **Failure policy** (this module) — failed jobs are logged to the
   store's :class:`~repro.experiments.store.FailureLog`; transitive
   dependents of a failed job are marked *failed-with-cause* instead of
   recomputing and crashing, and a whole failure subtree counts **once**
   against ``max_failures``.

Jobs whose address already exists in the
:class:`~repro.experiments.store.ResultStore` are skipped.  Three
properties hold regardless of executor:

* **Determinism** — every stochastic input is derived from the specs
  (trained weights from the workload seed, Monte Carlo trials from
  ``utils.rng.derive_seed`` via the keyed noise stacks), so a worker process
  computes bit-identical results to an in-process run.
* **Order independence** — the aggregate table is assembled from the store
  in job-index order after execution, so completion order (and worker
  count) cannot reorder or change the rows.
* **Crash safety** — each finished job is atomically persisted before the
  next is scheduled; Ctrl-C (or a crash) loses at most the in-flight jobs,
  and a rerun resumes from the store.

The noise-free clean reference of Monte Carlo jobs is itself a store
artifact (see :meth:`JobSpec.clean_job`): computed once per (workload, ADC
config) by whichever job needs it first, then shared by every sibling —
across grid points, worker processes, and resumed runs.  The same
load-or-compute sharing applies to the other cross-job artifacts: the
bit-line distribution capture behind ``uniform_calibrated`` evaluations
(:meth:`JobSpec.distribution_job`) and the Algorithm 1 search behind
``power`` jobs (:meth:`JobSpec.calibration_job`).

* **Failure policy** — a job that raises leaves no store artifact (writes
  are atomic and happen only on success); the exception and traceback are
  recorded in the store's :class:`~repro.experiments.store.FailureLog`.
  With ``max_failures=None`` (default) the first failure aborts the sweep;
  ``max_failures=N`` tolerates up to ``N`` failed *root* jobs — their rows
  (and their dependents', marked failed-with-cause) are simply absent from
  the aggregate — and aborts with :class:`MaxFailuresExceeded` beyond
  that.  A later successful run of a previously-failed key clears its log
  entry, so rerunning a sweep heals transient failures exactly like it
  resumes interrupted ones.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Callable, Collection, Dict, List, Optional, Union

import numpy as np

from repro.backend import active_backend_name
from repro.experiments.executors import (
    ExecutionContext,
    Executor,
    resolve_executor,
)
from repro.telemetry import events as telemetry_events
from repro.telemetry.resources import (
    JobResourceProbe,
    ResourceSampler,
    ensure_process_sampler,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    Tracer,
    merge_events,
    process_tracer,
    resolve_tracer,
    write_graph,
    write_run_manifest,
)
from repro.experiments.scheduler import (
    JobGraph,
    ScheduledJob,
    UpstreamFailed,
    build_job_graph,
    expanded_artifacts,
)
from repro.experiments.spec import ExperimentSpec, JobSpec, SweepSpec
from repro.experiments.store import FailureLog, ResultStore, code_version_salt, job_key
from repro.report.experiments import ExperimentRecord
from repro.sim.stats import SimulationResult
from repro.utils.logging import get_logger

logger = get_logger("experiments.runner")


class MaxFailuresExceeded(RuntimeError):
    """Raised when a sweep's failed-job count exceeds its ``max_failures``."""


# Per-process memos (workers inherit empty copies; an in-process serial run
# reuses prepared workloads and shared artifacts across its jobs).
_WORKLOAD_MEMO: Dict[str, object] = {}
_CLEAN_MEMO: Dict[str, SimulationResult] = {}
_DISTRIBUTION_MEMO: Dict[str, Dict[str, np.ndarray]] = {}


def clear_runner_memos() -> None:
    """Drop the per-process workload/clean-reference memos (for benchmarks
    that need successive timed runs to start cold)."""
    _WORKLOAD_MEMO.clear()
    _CLEAN_MEMO.clear()
    _DISTRIBUTION_MEMO.clear()


# --------------------------------------------------------------------- #
# Single-job execution
# --------------------------------------------------------------------- #
def _prepared_workload(job: JobSpec, weights_cache_dir: Optional[str]):
    from repro.workloads import prepare_workload

    spec = job.workload
    memo_key = f"{spec!r}|{weights_cache_dir}"
    prepared = _WORKLOAD_MEMO.get(memo_key)
    if prepared is None:
        prepared = prepare_workload(
            spec.name,
            preset=spec.preset,
            train_size=spec.train_size,
            test_size=spec.test_size,
            calibration_images=spec.calibration_images,
            epochs=spec.epochs,
            seed=spec.seed,
            cache_dir=weights_cache_dir,
        )
        _WORKLOAD_MEMO[memo_key] = prepared
    return prepared


def _clean_reference(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> SimulationResult:
    """Load-or-compute the shared deterministic reference of a MC job."""
    clean_job = job.clean_job()
    key = job_key(clean_job, salt)
    # Memoised per (store, key): the reference must be *persisted* into the
    # store this sweep is writing, or its MC artifacts would carry a
    # dangling clean_key when one process runs sweeps against two stores.
    memo_key = (str(store.root.resolve()), key)
    memo = _CLEAN_MEMO.get(memo_key)
    if memo is not None:
        return memo
    if store.has(key):
        payload = store.load(key)
        arrays = store.load_arrays(key)
        result = SimulationResult.from_payload(
            payload["result"], arrays.get("logits"), arrays.get("labels")
        )
    else:
        result = _execute_evaluate(clean_job, store, weights_cache_dir, salt, key)
    _CLEAN_MEMO[memo_key] = result
    return result


def _distribution_samples(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> Dict[str, np.ndarray]:
    """Load-or-compute the shared bit-line capture of a calibrated-uniform
    evaluation (one artifact per (workload, capture params), shared by every
    sensing precision)."""
    dist_job = job.distribution_job()
    key = job_key(dist_job, salt)
    memo_key = f"{store.root.resolve()}|{key}"
    memo = _DISTRIBUTION_MEMO.get(memo_key)
    if memo is not None:
        return memo
    if store.has(key):
        samples = store.load_arrays(key)
    else:
        samples = _execute_distribution(dist_job, store, weights_cache_dir, salt, key)
    _DISTRIBUTION_MEMO[memo_key] = samples
    return samples


def _execute_distribution(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> Dict[str, np.ndarray]:
    prepared = _prepared_workload(job, weights_cache_dir)
    params = job.distribution
    images = prepared.calibration.images[: params.images]
    samples = prepared.simulator.collect_bitline_distributions(
        images,
        batch_size=params.batch_size,
        capacity_per_layer=params.capacity_per_layer,
        seed=params.seed,
    )
    layers = {}
    for name, values in samples.items():
        values = np.asarray(values, dtype=np.float64)
        maximum = float(values.max()) if values.size else 0.0
        layers[name] = {
            "count": int(values.size),
            "median": float(np.median(values)) if values.size else 0.0,
            "p95": float(np.percentile(values, 95)) if values.size else 0.0,
            "max": maximum,
            "frac_below_max_over_8": (
                float(np.mean(values <= maximum / 8.0)) if maximum > 0 else 1.0
            ),
        }
    pooled = (
        np.concatenate([np.asarray(v, dtype=np.float64) for v in samples.values()])
        if samples else np.empty(0)
    )
    pooled_max = float(pooled.max()) if pooled.size else 0.0
    row = {
        "layers": len(samples),
        "total_samples": int(pooled.size),
        "pooled_median": float(np.median(pooled)) if pooled.size else 0.0,
        "pooled_max": pooled_max,
        "pooled_frac_below_max_over_4": (
            float(np.mean(pooled <= pooled_max / 4.0)) if pooled_max > 0 else 1.0
        ),
    }
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "layer_summaries": layers,
    }
    arrays = {name: np.asarray(values, dtype=np.float64) for name, values in samples.items()}
    store.save(key, payload, arrays)
    return arrays


def _execute_reference_evaluate(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    """``datapath="float"``/``"fakequant"``: one forward pass of the trained
    (or fake-quantized) model — the paper's f/f and 8/f reference points."""
    from repro.nn import top1_accuracy
    from repro.quantization import FakeQuantBackend, attach_backend, detach_backend

    prepared = _prepared_workload(job, weights_cache_dir)
    split = prepared.eval_split(job.images)
    model = prepared.model
    model.eval()
    if job.datapath == "fakequant":
        attach_backend(model, FakeQuantBackend(prepared.quantized))
        try:
            accuracy = top1_accuracy(model(split.images), split.labels)
        finally:
            detach_backend(model)
    else:
        accuracy = top1_accuracy(model(split.images), split.labels)
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": {"accuracy": float(accuracy), "num_images": float(len(split.labels))},
    }
    store.save(key, payload)


def _execute_evaluate(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> SimulationResult:
    prepared = _prepared_workload(job, weights_cache_dir)
    simulator = prepared.simulator
    split = prepared.eval_split(job.images)
    if job.adc.needs_distributions:
        samples = _distribution_samples(job, store, weights_cache_dir, salt)
        configs = job.adc.build_configs_from_samples(samples)
    else:
        configs = job.adc.build_configs(simulator.layer_names())
    result = simulator.evaluate(
        split.images, split.labels, configs, batch_size=job.batch_size
    )
    # Rows are stored label-free (labels are reporting metadata merged in at
    # aggregation time), so the artifact is identical no matter which sweep
    # — or which grid point — computed it first.
    row = result.summary()
    row["float_accuracy"] = prepared.float_accuracy
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "result": result.to_payload(),
    }
    arrays = {"logits": result.logits}
    if result.labels is not None:
        arrays["labels"] = result.labels
    store.save(key, payload, arrays)
    return result


def _save_monte_carlo(
    job: JobSpec,
    store: ResultStore,
    salt: Optional[str],
    key: str,
    result,
) -> None:
    """Persist one Monte Carlo artifact.

    Shared by the per-job path and the cross-job trial coalescer so both
    construct the payload through the same code — the store bytes of a
    coalesced job are identical to its solo execution by construction.
    """
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": result.summary(),
        "clean_key": job_key(job.clean_job(), salt),
        "layer_stats": {
            name: dataclasses.asdict(stats)
            for name, stats in result.layer_stats.items()
        },
    }
    arrays = {"accuracies": result.accuracies, "flip_rates": result.flip_rates}
    store.save(key, payload, arrays)


def _monte_carlo_inputs(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
):
    """The shared execution inputs of one MC job (or one sibling group)."""
    clean = _clean_reference(job, store, weights_cache_dir, salt)
    prepared = _prepared_workload(job, weights_cache_dir)
    simulator = prepared.simulator
    split = prepared.eval_split(job.images)
    if job.adc.needs_distributions:
        samples = _distribution_samples(job, store, weights_cache_dir, salt)
        configs = job.adc.build_configs_from_samples(samples)
    else:
        configs = job.adc.build_configs(simulator.layer_names())
    stack = job.noise.build_stack()
    return clean, simulator, split, configs, stack


def _execute_monte_carlo(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
    trial_batch: int = 1,
) -> None:
    clean, simulator, split, configs, stack = _monte_carlo_inputs(
        job, store, weights_cache_dir, salt
    )
    result = simulator.run_monte_carlo(
        split.images,
        split.labels,
        stack,
        adc_configs=configs,
        trials=job.trials,
        batch_size=job.batch_size,
        seed=job.mc_seed,
        confidence=job.confidence,
        clean=clean,
        trial_batch=trial_batch,
    )
    _save_monte_carlo(job, store, salt, key, result)


def mc_group_signature(job: JobSpec) -> Optional[str]:
    """Coalescing signature of a Monte Carlo job, or ``None``.

    Jobs sharing a signature differ **only** in ``mc_seed`` — same
    workload, images, ADC, engine, noise stack, trial count and confidence
    — so their per-trial noise stacks are siblings of one base stack and
    their trials can ride through one batched execution
    (:meth:`~repro.sim.simulator.PimSimulator.monte_carlo_trial_results`).
    ``trial_batch`` itself never enters the signature (or any job hash):
    it is purely an execution knob, invisible to content addressing.
    """
    if job.kind != "monte_carlo":
        return None
    resolved = dict(job.resolved())
    resolved.pop("mc_seed", None)
    return json.dumps(resolved, sort_keys=True)


def execute_mc_group(
    jobs: List[JobSpec],
    store: ResultStore,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    trial_batch: int = 1,
) -> List[str]:
    """Execute sibling per-seed Monte Carlo jobs as one batched run.

    ``jobs`` must share one :func:`mc_group_signature`.  All their trials
    are flattened into one ``(job, trial)`` sequence and executed through
    the batched trials kernel in groups of ``trial_batch`` — clean
    reference, prepared workload, ADC configs and the base noise stack are
    resolved once for the whole group.  Each job's artifact is then
    assembled and persisted exactly as its solo execution would: per-trial
    results are **bit-identical** regardless of grouping (each trial's
    stack is derived from ``(job.mc_seed, trial)`` alone), so the stored
    payload and array bytes match the per-job path byte for byte.

    Returns the jobs' store keys in input order.
    """
    if not jobs:
        return []
    signatures = {mc_group_signature(job) for job in jobs}
    if len(signatures) != 1 or None in signatures:
        raise ValueError(
            "execute_mc_group needs sibling monte_carlo jobs differing only "
            "in mc_seed"
        )
    job0 = jobs[0]
    keys = [job_key(job, salt) for job in jobs]
    clean, simulator, split, configs, stack = _monte_carlo_inputs(
        job0, store, weights_cache_dir, salt
    )
    pairs = [(job, trial) for job in jobs for trial in range(job.trials)]
    trial_results: List[SimulationResult] = []
    for start in range(0, len(pairs), max(1, trial_batch)):
        chunk = pairs[start : start + max(1, trial_batch)]
        chunk_stacks = [stack.derive_trial(job.mc_seed, trial) for job, trial in chunk]
        if len(chunk_stacks) == 1:
            trial_results.append(
                simulator.evaluate(
                    split.images,
                    split.labels,
                    configs,
                    batch_size=job0.batch_size,
                    noise=chunk_stacks[0],
                )
            )
        else:
            trial_results.extend(
                simulator.monte_carlo_trial_results(
                    split.images, split.labels, chunk_stacks, configs, job0.batch_size
                )
            )
    offset = 0
    for job, key in zip(jobs, keys):
        result = simulator.assemble_monte_carlo(
            clean,
            trial_results[offset : offset + job.trials],
            seed=job.mc_seed,
            confidence=job.confidence,
            stack=stack,
        )
        offset += job.trials
        _save_monte_carlo(job, store, salt, key, result)
    return keys


def execute_mc_group_nodes(nodes, context, submitted_mono=None):
    """Run one wave's group of sibling MC nodes coalesced; yield outcomes.

    The executor-facing wrapper around :func:`execute_mc_group`: store
    cache hits short-circuit per node (``job_cached``), a single remaining
    node runs the ordinary per-job path, and a genuine group computes once
    for everyone.  Lifecycle telemetry is emitted per node **after** the
    group completes (a failed group falls back to per-job execution, which
    owns its own full lifecycle — so no node ever records two attempts):
    each node's ``job_finish`` carries the amortised ``duration_s``
    (group wall time / group size) plus the whole-group ``group_duration_s``
    and ``coalesced`` count, so per-kind timing aggregates stay meaningful.

    Yields ``(node, error-or-None)`` per node, like ``Executor.run_wave``.
    """
    store, salt, tracer = context.store, context.salt, context.tracer

    def run_solo(node):
        try:
            if context.should_inject(node):
                from repro.experiments.executors import _injected_error

                raise _injected_error(node.job)
            execute_job(
                node.job, store, context.weights_cache_dir, salt,
                tracer=tracer,
                trace_fields=context.job_trace_fields(
                    node, submitted_mono=submitted_mono
                ),
                trial_batch=context.trial_batch,
            )
        except KeyboardInterrupt:
            raise
        except Exception as error:  # noqa: BLE001 - the policy decides
            return node, error
        return node, None

    remaining = []
    for node in nodes:
        if store.has(node.key):
            tracer.emit(
                telemetry_events.JOB_CACHED,
                key=node.key, kind=node.job.kind, index=node.index,
                wave=context.wave, shard=context.shard,
            )
            yield node, None
        elif context.should_inject(node):
            yield run_solo(node)
        else:
            remaining.append(node)
    if not remaining:
        return
    if len(remaining) == 1:
        yield run_solo(remaining[0])
        return

    probe = JobResourceProbe()
    started = time.perf_counter()
    try:
        execute_mc_group(
            [node.job for node in remaining], store,
            context.weights_cache_dir, salt,
            trial_batch=context.trial_batch,
        )
    except KeyboardInterrupt:
        raise
    except Exception as error:  # noqa: BLE001 - fall back to solo execution
        logger.warning(
            "coalesced Monte Carlo group failed (%s: %s); retrying jobs "
            "individually", type(error).__name__, error,
        )
        for node in remaining:
            yield run_solo(node)
        return
    duration = time.perf_counter() - started
    resources = probe.finish()
    if "cpu_s" in resources:
        resources = {
            **resources,
            "cpu_s": round(resources["cpu_s"] / len(remaining), 6),
        }
    share = duration / len(remaining)
    execution = {
        "backend": active_backend_name(),
        "trial_batch": int(context.trial_batch),
        "coalesced": len(remaining),
        "group_duration_s": duration,
    }
    for node in remaining:
        fields = context.job_trace_fields(node, submitted_mono=submitted_mono)
        submitted = fields.pop("submitted_mono", None)
        tracer.emit(
            telemetry_events.JOB_START,
            key=node.key, kind=node.job.kind,
            queue_wait_s=(
                max(time.monotonic() - submitted - duration, 0.0)
                if submitted is not None else None
            ),
            **fields,
        )
        tracer.emit(
            telemetry_events.JOB_FINISH,
            key=node.key, kind=node.job.kind, duration_s=share,
            outcome="computed",
            **execution,
            **resources,
            **fields,
        )
        store.save_meta(
            node.key,
            {
                "kind": node.job.kind, "duration_s": share,
                "worker": worker_name(tracer), **execution, **resources,
            },
        )
        yield node, None


def _execute_calibration(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> Dict[str, object]:
    from repro.core import CoDesignOptimizer, SearchSpaceConfig
    from repro.datasets import sample_calibration_set

    prepared = _prepared_workload(job, weights_cache_dir)
    split = prepared.eval_split(job.images)
    params = job.calibration
    if params.source == "workload":
        # The prepared calibration split — what the figure benchmarks feed
        # the optimizer, making these jobs bit-identical to the pre-port
        # pipeline.
        calibration = prepared.calibration
        if params.calibration_size < len(calibration.labels):
            calibration = calibration.subset(np.arange(params.calibration_size))
    else:
        calibration = sample_calibration_set(
            prepared.dataset.train,
            num_images=params.calibration_size,
            seed=params.resolved_calib_seed,
        )
    optimizer = CoDesignOptimizer(
        prepared.model,
        calibration.images,
        calibration.labels,
        search_space=SearchSpaceConfig(
            num_v_grid_candidates=params.num_v_grid_candidates
        ),
        max_samples_per_layer=params.max_samples_per_layer,
    )
    result = optimizer.run(
        split.images,
        split.labels,
        batch_size=job.batch_size,
        use_accuracy_loop=params.use_accuracy_loop,
        initial_n_max=params.initial_n_max,
    )
    row = {
        "baseline_accuracy": result.baseline_accuracy,
        "accuracy": result.final_accuracy,
        "accuracy_drop": result.accuracy_drop,
        "remaining_ops_fraction": result.remaining_ops_fraction,
        "ops_reduction_factor": result.ops_reduction_factor,
    }
    evaluation = result.evaluation
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        # Per-layer data for downstream consumers: the Fig. 6c per-layer
        # table and the Fig. 7 power model (measured A/D ops per conversion).
        "per_layer_remaining_fraction": evaluation.per_layer_remaining_fraction(),
        "per_layer_ops_per_conversion": {
            name: stats.mean_ops_per_conversion
            for name, stats in evaluation.layer_stats.items()
        },
        "evaluation": evaluation.to_payload(),
    }
    store.save(key, payload)
    return payload


def _calibration_payload(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> Dict[str, object]:
    """Load-or-compute the Algorithm 1 sibling a power job consumes."""
    cal_job = job.calibration_job()
    key = job_key(cal_job, salt)
    if store.has(key):
        return store.load(key)
    return _execute_calibration(cal_job, store, weights_cache_dir, salt, key)


def _execute_power(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    from repro.arch import AcceleratorMapping, breakdown_table, compare_configurations
    from repro.nn.models import workload_info

    cal_payload = _calibration_payload(job, store, weights_cache_dir, salt)
    trq_ops = {
        name: float(value)
        for name, value in cal_payload["per_layer_ops_per_conversion"].items()
    }
    prepared = _prepared_workload(job, weights_cache_dir)
    name = job.workload.name
    info = workload_info(name)
    image_shape = (info["in_channels"], info["image_size"], info["image_size"])
    mapping = AcceleratorMapping(prepared.quantized, image_shape)
    spec = job.power
    comparison = compare_configurations(
        name,
        mapping,
        trq_ops,
        uniform_bits=spec.uniform_bits,
        power_model=spec.build_power_model(),
        trq_label=spec.trq_label,
    )
    breakdown_rows = breakdown_table([comparison])
    baseline = comparison.by_label("ISAAC")
    ours = comparison.by_label(spec.trq_label)
    row = {
        "workload": name,
        "isaac_total_J": baseline.total,
        "trq_total_J": ours.total,
        "uniform_total_J": comparison.by_label(f"UQ({spec.uniform_bits}b)").total,
        "adc_reduction_vs_isaac": comparison.adc_reduction_vs_baseline(spec.trq_label),
        "total_reduction_vs_isaac": comparison.total_reduction_vs_baseline(spec.trq_label),
        "baseline_adc_fraction": baseline.fraction("ADC"),
    }
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "breakdown_rows": breakdown_rows,
        "calibration_key": job_key(job.calibration_job(), salt),
    }
    store.save(key, payload)


def worker_name(tracer: Tracer = NULL_TRACER) -> str:
    """This process's worker identity for execution metadata.

    The tracer's stream name when tracing (so meta sidecars and event
    streams name the same worker), a pid marker otherwise.
    """
    stream = getattr(tracer, "stream", None)
    return str(stream) if stream else f"pid-{os.getpid()}"


def execute_job(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    tracer: Tracer = NULL_TRACER,
    trace_fields: Optional[Dict[str, object]] = None,
    trial_batch: int = 1,
) -> str:
    """Execute one atomic job, persist its artifact, return its key.

    Idempotent: if the store already holds the key, nothing is computed.
    Timing and resource usage are recorded out-of-band either way: a
    ``<store>/meta/<key>.json`` sidecar (``duration_s``, ``worker``, the
    active array ``backend``, plus ``cpu_s``/``max_rss_kb`` where the
    platform reports them) always, and
    job lifecycle events on ``tracer`` when tracing.  ``trace_fields`` carries scheduling
    context (index/wave/shard/deps) onto the events; its ``submitted_mono``
    entry — the monotonic instant the job's wave was handed to the
    executor — becomes ``queue_wait_s`` on the start event.  Neither
    touches the artifact bytes.

    ``trial_batch`` sets how many Monte Carlo trials ride through one
    batched kernel invocation (other job kinds ignore it).  It is an
    execution knob, never part of the job's content address: under the
    numpy backend every value writes byte-identical artifacts.
    """
    key = job_key(job, salt)
    fields = dict(trace_fields or {})
    submitted = fields.pop("submitted_mono", None)
    if store.has(key):
        tracer.emit(
            telemetry_events.JOB_CACHED,
            key=key, kind=job.kind,
            index=fields.get("index"), wave=fields.get("wave"),
            shard=fields.get("shard"),
        )
        return key
    tracer.emit(
        telemetry_events.JOB_START,
        key=key, kind=job.kind,
        queue_wait_s=(
            max(time.monotonic() - submitted, 0.0) if submitted is not None else None
        ),
        **fields,
    )
    probe = JobResourceProbe()
    started = time.perf_counter()
    try:
        if job.kind == "evaluate":
            if job.datapath == "pim":
                _execute_evaluate(job, store, weights_cache_dir, salt, key)
            else:
                _execute_reference_evaluate(job, store, weights_cache_dir, salt, key)
        elif job.kind == "monte_carlo":
            _execute_monte_carlo(
                job, store, weights_cache_dir, salt, key, trial_batch=trial_batch
            )
        elif job.kind == "calibration":
            _execute_calibration(job, store, weights_cache_dir, salt, key)
        elif job.kind == "distribution":
            _execute_distribution(job, store, weights_cache_dir, salt, key)
        elif job.kind == "power":
            _execute_power(job, store, weights_cache_dir, salt, key)
        else:  # pragma: no cover - JobSpec validates kinds
            raise ValueError(f"unknown job kind {job.kind!r}")
    except BaseException as error:
        tracer.emit(
            telemetry_events.JOB_FAILED,
            key=key, kind=job.kind,
            duration_s=time.perf_counter() - started,
            error=f"{type(error).__name__}: {error}",
            **fields,
        )
        raise
    duration = time.perf_counter() - started
    resources = probe.finish()
    execution = {"backend": active_backend_name()}
    if job.kind == "monte_carlo":
        execution["trial_batch"] = int(trial_batch)
    tracer.emit(
        telemetry_events.JOB_FINISH,
        key=key, kind=job.kind, duration_s=duration, outcome="computed",
        **execution,
        **resources,
        **fields,
    )
    store.save_meta(
        key,
        {
            "kind": job.kind, "duration_s": duration,
            "worker": worker_name(tracer), **execution, **resources,
        },
    )
    logger.debug("job %s (%s) in %.2fs", key[:12], job.kind, duration)
    return key


def _worker_execute(
    job_dict: Dict[str, object],
    store_root: str,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    inject_failure: bool = False,
    trace: Optional[Dict[str, object]] = None,
) -> str:
    """Top-level (picklable) entry point for pool workers.

    ``trace`` (built by :meth:`ExecutionContext.worker_trace`) carries the
    run directory plus the job's scheduling context; the worker opens its
    own per-process stream there (one file per pool worker, reused across
    jobs and waves).  ``None`` means the run is untraced.
    """
    from repro.experiments.executors import _injected_error

    job = JobSpec.from_dict(job_dict)
    tracer: Tracer = NULL_TRACER
    trace_fields: Optional[Dict[str, object]] = None
    if trace:
        trace = dict(trace)
        tracer = process_tracer(trace.pop("dir"), trace.pop("run_id", None))
        # One resource-sampling thread per pool worker, started on the
        # worker's first traced job and living as long as the pool does.
        ensure_process_sampler(tracer)
        trace_fields = trace
    if inject_failure:
        raise _injected_error(job)
    return execute_job(
        job, ResultStore(store_root), weights_cache_dir, salt,
        tracer=tracer, trace_fields=trace_fields,
    )


# --------------------------------------------------------------------- #
# Sweep execution
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class SweepRunStats:
    """Execution accounting of one ``run_sweep`` call."""

    total: int = 0
    cached: int = 0
    computed: int = 0
    failed: int = 0
    elapsed_s: float = 0.0


@dataclasses.dataclass
class SweepRun:
    """Outcome of :func:`run_sweep`: the ordered rows and their record.

    ``failures`` lists the tolerated failures of this invocation (empty
    unless ``max_failures`` allowed the sweep to continue past errors);
    each entry mirrors its persisted failure-log record.  Rows of failed
    jobs are absent from ``rows`` — order of the surviving rows still
    follows the grid expansion.

    ``telemetry_dir`` names the trace run directory when the sweep ran
    with tracing (``None`` otherwise) — purely informational; telemetry
    never contributes to the rows or the record.
    """

    sweep: SweepSpec
    keys: List[str]
    rows: List[Dict[str, object]]
    record: ExperimentRecord
    stats: SweepRunStats
    failures: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    telemetry_dir: Optional[str] = None


def prewarm_workloads(
    sweep_or_jobs: Union[SweepSpec, List[JobSpec]],
    weights_cache_dir: Optional[str],
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Train (and disk-cache) every unique workload of the jobs, serially.

    Called before a parallel/sharded run so worker processes load the
    trained weights from the cache instead of each re-training them.
    Weights are deterministic either way; this is purely a wall-clock
    optimisation.  ``run_sweep`` passes only the scheduled graph's jobs
    (pending sweep jobs plus their unsatisfied dependencies), so
    fully-cached workloads are never prepared just to be skipped.
    """
    if isinstance(sweep_or_jobs, SweepSpec):
        jobs = sweep_or_jobs.expand()
    else:
        jobs = list(sweep_or_jobs)
    seen = set()
    for job in jobs:
        spec = job.workload
        marker = repr(spec)
        if marker in seen:
            continue
        seen.add(marker)
        if progress is not None:
            progress(f"prewarm: preparing workload {spec.name} ({spec.preset})")
        _prepared_workload(job, weights_cache_dir)


def execute_graph(
    graph: JobGraph,
    executor: Executor,
    context: ExecutionContext,
    on_result: Callable[[ScheduledJob, Optional[BaseException]], None],
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Run a job graph wave by wave on an executor.

    The generic execution loop shared by :func:`run_sweep` and the shard
    runner (:func:`repro.experiments.executors.run_shard_manifest`):

    * waves run in topological order; the nodes of one wave go to the
      executor together (it decides the parallelism);
    * when a node fails, its transitive dependents are **not** executed —
      each is reported with an :class:`UpstreamFailed` carrying the root
      cause's key, wave by wave as it is reached;
    * ``on_result(node, error-or-None)`` is called exactly once per node
      and owns the policy — it may raise (first-failure abort, exhausted
      failure budget), which unwinds through the executor's ``with`` block
      and triggers its centralised cancellation.
    """
    failed_cause: Dict[str, str] = {}
    waves = graph.waves()
    tracer = context.tracer
    # Binding gives the executor's __exit__ access to the tracer, so an
    # exceptional unwind can emit the terminal sweep_abort event.
    executor.bind(context)
    with executor:
        for number, wave in enumerate(waves, start=1):
            # A sharded child runs one wave of its *parent's* graph: keep
            # the parent's wave number on every event and leave the wave
            # lifecycle events to the parent.
            context.wave = (
                context.wave_override if context.wave_override is not None else number
            )
            runnable: List[ScheduledJob] = []
            for node in wave:
                cause = next(
                    (failed_cause[dep] for dep in node.dependencies
                     if dep in failed_cause),
                    None,
                )
                if cause is not None:
                    failed_cause[node.key] = cause
                    tracer.emit(
                        telemetry_events.JOB_UPSTREAM_FAILED,
                        key=node.key, kind=node.job.kind, index=node.index,
                        wave=context.wave, cause_key=cause,
                    )
                    on_result(
                        node,
                        UpstreamFailed(
                            f"not run: upstream dependency {cause[:12]} failed",
                            cause,
                        ),
                    )
                    continue
                runnable.append(node)
            if not runnable:
                continue
            if progress is not None and len(waves) > 1:
                shared = sum(1 for node in runnable if not node.indices)
                progress(
                    f"  wave {number}/{len(waves)}: {len(runnable)} job(s)"
                    + (f" ({shared} shared artifact(s))" if shared else "")
                )
            emit_wave = context.wave_override is None
            if emit_wave:
                tracer.emit(
                    telemetry_events.WAVE_START,
                    wave=context.wave, jobs=len(runnable),
                )
            wave_started = time.monotonic()
            for node, error in executor.run_wave(runnable, context):
                if error is not None:
                    failed_cause[node.key] = (
                        getattr(error, "cause_key", None) or node.key
                    )
                on_result(node, error)
            if emit_wave:
                tracer.emit(
                    telemetry_events.WAVE_FINISH,
                    wave=context.wave, jobs=len(runnable),
                    duration_s=time.monotonic() - wave_started,
                )


def aggregate_sweep(
    sweep: SweepSpec,
    store: Union[ResultStore, str, Path],
    salt: Optional[str] = None,
    experiment: Optional[ExperimentSpec] = None,
    stats: Optional[SweepRunStats] = None,
    failures: Optional[List[Dict[str, object]]] = None,
    expanded: Optional[List[JobSpec]] = None,
    keys: Optional[List[str]] = None,
) -> SweepRun:
    """Assemble a :class:`SweepRun` from a sweep's stored artifacts.

    Deterministic aggregation: rows come from the store in grid-expansion
    order (so completion order / worker count / shard layout / resume
    history cannot influence them), with each job's grid-coordinate labels
    merged in from the spec.  Jobs whose artifact is absent (tolerated
    failures, jobs another shard has not finished) contribute no row; a
    stored key with a stale failure entry has healed, so its entry is
    cleared.

    This is both the tail of :func:`run_sweep` and the whole of ``shard
    merge`` — which is exactly why a merged multi-shard run is
    byte-identical to a single-process one.

    ``expanded``/``keys`` let :func:`run_sweep` hand over its already
    computed expansion instead of re-hashing every spec; both default to a
    fresh expansion of ``sweep``.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    if expanded is None:
        expanded = sweep.expand()
    if keys is None:
        keys = [job_key(job, salt) for job in expanded]
    failure_log = FailureLog(store)
    rows: List[Dict[str, object]] = []
    for job, key in zip(expanded, keys):
        if not store.has(key):
            continue
        if failure_log.has(key):
            failure_log.clear(key)
        rows.append({**job.label_dict, **store.load(key)["row"]})

    if stats is None:
        stats = SweepRunStats(total=len(expanded), cached=len(rows))
    failures = failures if failures is not None else []
    if experiment is None:
        experiment = ExperimentSpec(experiment_id=sweep.name, sweep=sweep)
    metadata = {
        "sweep": sweep.to_dict(),
        "salt": salt if salt is not None else code_version_salt(),
        "num_jobs": len(expanded),
        "job_keys": keys,
    }
    if failures:
        metadata["failures"] = [
            {
                "index": f["index"], "key": f["key"], "kind": f["kind"],
                "label": f["label"], "error": f["error"],
                **({"cause_key": f["cause_key"]} if f.get("cause_key") else {}),
            }
            for f in failures
        ]
    record = ExperimentRecord(
        experiment_id=experiment.experiment_id,
        description=experiment.description or f"experiment sweep '{sweep.name}'",
        paper_reference=experiment.paper_reference,
        rows=rows,
        metadata=metadata,
    )
    return SweepRun(
        sweep=sweep, keys=keys, rows=rows, record=record, stats=stats,
        failures=failures,
    )


def run_sweep(
    sweep: SweepSpec,
    store: Union[ResultStore, str, Path],
    jobs: int = 1,
    force: bool = False,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    prewarm: Optional[bool] = None,
    experiment: Optional[ExperimentSpec] = None,
    progress: Optional[Callable[[str], None]] = None,
    max_failures: Optional[int] = None,
    inject_failures: Collection[int] = (),
    executor: Union[str, Executor, None] = None,
    shards: int = 2,
    workers: int = 2,
    trace: Union[bool, str, Tracer, None] = None,
    history: Union[str, Path, None] = None,
    trial_batch: int = 1,
    backend: Optional[str] = None,
) -> SweepRun:
    """Execute a sweep against a result store and aggregate its table.

    Parameters
    ----------
    jobs:
        Worker processes of the ``process`` executor; ``1`` selects the
        ``serial`` executor (unless ``executor`` says otherwise).
    force:
        Delete the sweep's existing artifacts — including every shared
        sibling its jobs depend on (clean references, distribution
        captures, calibration siblings) — first, recomputing everything.
    prewarm:
        Train workload weights in the parent before forking workers.
        Defaults to ``executor.needs_prewarm and weights_cache_dir is not
        None``.
    experiment:
        Reporting identity; defaults to one derived from the sweep name.
    max_failures:
        ``None`` (default): the first failing job aborts the sweep (after
        logging it).  ``N``: tolerate up to ``N`` failed jobs — each is
        recorded in the store's failure log and its row is absent from the
        aggregate; failure ``N+1`` aborts with :class:`MaxFailuresExceeded`.
        A failed job's transitive dependents are marked failed-with-cause
        (logged with ``cause_key``) but the whole subtree consumes **one**
        unit of the budget — the root.
    inject_failures:
        Job indices forced to raise instead of executing — a testing aid
        (the CLI's ``--inject-failure``) for exercising the failure path
        end to end.  Injected failures follow the same logging/tolerance
        rules as real ones.
    executor:
        ``"serial"``, ``"process"``, ``"sharded"``, ``"remote"``, an
        :class:`~repro.experiments.executors.Executor` instance, or
        ``None`` for the historical default (process pool iff
        ``jobs > 1``).
    shards:
        Shard count of the ``sharded`` executor (ignored otherwise).
    workers:
        Dispatch fan-out of the ``remote`` executor (ignored otherwise).
    trace:
        Telemetry: ``True`` records the sweep to a fresh run directory
        under ``<store>/telemetry/``, a string names the run id, a
        :class:`~repro.telemetry.tracer.Tracer` is used as-is, and
        ``None``/``False`` (default) disables tracing entirely (the no-op
        tracer costs one dynamic call per would-be event).  Tracing is
        strictly out-of-band: rows, records and store artifacts are
        byte-identical with it on or off.
    history:
        Path of a perf-history JSONL log (see
        :mod:`repro.telemetry.history`).  When set *and* the sweep is
        traced, a compact summary record (elapsed, critical path, cache
        efficiency, per-kind quantiles, peak RSS) is appended after the
        sweep completes.  ``None`` (default) records no history; untraced
        sweeps never do (there is nothing to summarise).
    trial_batch:
        Monte Carlo trials per batched kernel invocation (``1`` keeps the
        per-trial loop).  With the serial executor, ``N > 1`` also
        coalesces sibling per-seed MC jobs of a wave into one batched
        execution.  Purely a wall-clock knob: job hashes, store artifacts
        and rows are byte-identical for every value (numpy backend).
    backend:
        Array backend name (see :mod:`repro.backend`) activated for this
        sweep; ``None`` keeps the process default (numpy, or
        ``REPRO_BACKEND``).  The active backend is recorded on telemetry
        events, meta sidecars and the history record so perf comparisons
        never silently span backends.

    The returned :class:`SweepRun` carries rows in expansion order; the
    aggregate is identical whether the sweep ran serially, in parallel,
    sharded, or across several interrupted+resumed invocations, because
    rows are read back from the content-addressed artifacts.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if trial_batch < 1:
        raise ValueError(f"trial_batch must be >= 1, got {trial_batch}")
    if backend is not None:
        from repro.backend import set_backend

        set_backend(backend)
    # Writers killed mid-stage (SIGKILL, lost workers) leave dead temp
    # files behind; sweep them before scheduling so they never accumulate.
    store.sweep_stale_tmps()
    exec_instance = resolve_executor(executor, jobs=jobs, shards=shards, workers=workers)
    tracer = resolve_tracer(trace, store.root)
    telemetry_dir: Optional[str] = None
    if tracer.enabled and getattr(tracer, "directory", None) is not None:
        telemetry_dir = str(tracer.directory)
    started = time.perf_counter()
    expanded = sweep.expand()
    keys = [job_key(job, salt) for job in expanded]
    failure_log = FailureLog(store)
    failures: List[Dict[str, object]] = []
    inject = frozenset(int(index) for index in inject_failures)

    if force:
        # Everything the sweep could recompute, shared siblings included.
        for key in expanded_artifacts(expanded, salt):
            store.delete(key)
        _CLEAN_MEMO.clear()
        _DISTRIBUTION_MEMO.clear()

    pending = [
        (index, job) for index, (job, key) in enumerate(zip(expanded, keys))
        if not store.has(key)
    ]
    stats = SweepRunStats(total=len(expanded), cached=len(expanded) - len(pending))

    # Dependency layer: dedupe the pending jobs and their (transitive)
    # dependencies into one content-addressed graph.
    graph = build_job_graph(pending, store, salt)

    if tracer.enabled:
        if telemetry_dir is not None:
            write_run_manifest(
                telemetry_dir,
                run_id=getattr(tracer, "run_id", None),
                sweep=sweep.name,
                executor=exec_instance.name,
                jobs=jobs,
                shards=shards if exec_instance.name == "sharded" else None,
                salt=salt if salt is not None else code_version_salt(),
                total=stats.total,
            )
            if len(graph):
                # The exact scheduled adjacency, for offline critical-path
                # analysis (job events carry deps too; this is the whole
                # graph in one read).
                write_graph(
                    telemetry_dir,
                    {
                        node.key: {
                            "kind": node.job.kind,
                            "index": node.index,
                            "deps": list(node.dependencies),
                        }
                        for node in graph
                    },
                )
        tracer.emit(
            telemetry_events.SWEEP_START,
            sweep=sweep.name, executor=exec_instance.name, jobs=jobs,
            total=stats.total, cached=stats.cached, pending=len(pending),
            scheduled=len(graph),
        )
        pending_indices = {index for index, _ in pending}
        for index, (job, key) in enumerate(zip(expanded, keys)):
            if index not in pending_indices:
                tracer.emit(
                    telemetry_events.JOB_CACHED,
                    key=key, kind=job.kind, index=index,
                )
        tracer.counter(telemetry_events.COUNTER_CACHE_HITS, stats.cached)
        tracer.counter(telemetry_events.COUNTER_CACHE_MISSES, len(pending))
        tracer.counter(telemetry_events.COUNTER_JOBS_TOTAL, stats.total)

    # Periodic resource samples from the orchestrating process; pool
    # workers and shard subprocesses start their own (see _worker_execute
    # and run_shard_manifest).
    sampler = ResourceSampler(tracer).start() if tracer.enabled else None

    if progress is not None:
        shared = sum(1 for node in graph if not node.indices)
        progress(
            f"sweep '{sweep.name}': {stats.total} jobs, {stats.cached} cached, "
            f"{len(pending)} to run"
            + (f" (+{shared} shared artifact(s))" if shared else "")
            + f" [executor={exec_instance.name}, jobs={jobs}]"
        )

    root_failures = 0

    def on_result(node: ScheduledJob, error: Optional[BaseException]) -> None:
        """The failure policy: log, propagate-with-cause, enforce budget."""
        nonlocal root_failures
        if error is None:
            # A success heals any stale failure entry — including those of
            # shared dependency nodes, whose keys the grid-order clearing
            # in aggregate_sweep never visits.
            if failure_log.has(node.key):
                failure_log.clear(node.key)
            stats.computed += len(node.indices)
            if progress is not None:
                if node.indices:
                    progress(f"  [{stats.cached + stats.computed}/{stats.total}] "
                             f"{node.describe()}")
                else:
                    progress(f"  shared {node.describe()}")
            return
        propagated = isinstance(error, UpstreamFailed)
        cause_key = getattr(error, "cause_key", None)
        # Shard subprocesses persist their own entries (with the real
        # traceback); re-use those instead of overwriting them with a
        # summary exception.
        already_logged = bool(getattr(error, "logged", False))
        if already_logged and failure_log.has(node.key):
            entry = failure_log.load(node.key)
        else:
            entry = failure_log.record(
                node.key, node.job, error, index=node.index, cause_key=cause_key
            )
        failures.append(entry)
        stats.failed += 1
        if progress is not None:
            index_text = "-" if node.index is None else str(node.index)
            progress(f"  FAILED [{index_text}] {node.describe()}: "
                     f"{entry['error']} (logged to {failure_log.path(node.key)})")
        if propagated:
            return  # the root already consumed its unit of the budget
        root_failures += 1
        if max_failures is None:
            raise error
        if root_failures > max_failures:
            propagated_count = stats.failed - root_failures
            raise MaxFailuresExceeded(
                f"sweep '{sweep.name}' exceeded max_failures={max_failures} "
                f"({root_failures} root failure(s)"
                + (f" + {propagated_count} propagated dependent(s)"
                   if propagated_count else "")
                + f"; see {failure_log.root})"
            ) from error

    try:
        if len(graph):
            if prewarm is None:
                prewarm = exec_instance.needs_prewarm and weights_cache_dir is not None
            if prewarm:
                prewarm_started = time.monotonic()
                tracer.emit(telemetry_events.PREWARM_START)
                prewarm_workloads(
                    [node.job for node in graph], weights_cache_dir, progress
                )
                prewarm_s = time.monotonic() - prewarm_started
                tracer.emit(telemetry_events.PREWARM_FINISH, duration_s=prewarm_s)
                tracer.counter(telemetry_events.COUNTER_PREWARM_S, prewarm_s)
            context = ExecutionContext(
                store=store,
                weights_cache_dir=weights_cache_dir,
                salt=salt,
                inject=inject,
                tracer=tracer,
                trace_dir=telemetry_dir,
                trace_run_id=getattr(tracer, "run_id", None),
                trial_batch=trial_batch,
            )
            execute_graph(graph, exec_instance, context, on_result, progress)
    finally:
        # The trace ends cleanly even when the failure policy aborts the
        # sweep — a truncated run is exactly when the timeline matters.
        if sampler is not None:
            sampler.stop()
        if tracer.enabled:
            tracer.emit(
                telemetry_events.SWEEP_FINISH,
                elapsed_s=time.perf_counter() - started,
                computed=stats.computed, failed=stats.failed, cached=stats.cached,
            )
            tracer.counter(telemetry_events.COUNTER_JOBS_COMPUTED, stats.computed)
            tracer.counter(telemetry_events.COUNTER_JOBS_FAILED, stats.failed)
            tracer.flush()
            if telemetry_dir is not None:
                merge_events(telemetry_dir)
        if not isinstance(trace, Tracer):
            tracer.close()  # we created it (or it is the shared no-op)

    run = aggregate_sweep(
        sweep, store, salt=salt, experiment=experiment,
        stats=stats, failures=failures, expanded=expanded, keys=keys,
    )
    run.telemetry_dir = telemetry_dir
    stats.elapsed_s = time.perf_counter() - started
    if history is not None and telemetry_dir is not None:
        # Best-effort by design: a malformed trace must never fail a sweep
        # whose rows are already aggregated.
        try:
            from repro.telemetry.analysis import (
                load_run, summarize, summary_to_jsonable,
            )
            from repro.telemetry.history import append_history, history_record

            record = history_record(
                summary_to_jsonable(summarize(load_run(telemetry_dir))),
                executor=exec_instance.name,
                backend=active_backend_name(),
                trial_batch=trial_batch,
            )
            append_history(history, record)
        except Exception as error:  # noqa: BLE001 - history is advisory
            logger.warning("perf-history append failed: %s", error)
    return run
