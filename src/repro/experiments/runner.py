"""Sweep execution: serial or process-parallel, resumable, deterministic.

The runner walks a :class:`~repro.experiments.spec.SweepSpec`'s expanded job
list, skips every job whose address already exists in the
:class:`~repro.experiments.store.ResultStore`, and executes the rest either
in-process (``jobs=1``) or on a ``ProcessPoolExecutor``.  Three properties
hold regardless of execution mode:

* **Determinism** — every stochastic input is derived from the specs
  (trained weights from the workload seed, Monte Carlo trials from
  ``utils.rng.derive_seed`` via the keyed noise stacks), so a worker process
  computes bit-identical results to an in-process run.
* **Order independence** — the aggregate table is assembled from the store
  in job-index order after execution, so completion order (and worker
  count) cannot reorder or change the rows.
* **Crash safety** — each finished job is atomically persisted before the
  next is scheduled; Ctrl-C (or a crash) loses at most the in-flight jobs,
  and a rerun resumes from the store.

The noise-free clean reference of Monte Carlo jobs is itself a store
artifact (see :meth:`JobSpec.clean_job`): computed once per (workload, ADC
config) by whichever job needs it first, then shared by every sibling —
across grid points, worker processes, and resumed runs.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.spec import ExperimentSpec, JobSpec, SweepSpec
from repro.experiments.store import ResultStore, code_version_salt, job_key
from repro.report.experiments import ExperimentRecord
from repro.sim.stats import SimulationResult
from repro.utils.logging import get_logger

logger = get_logger("experiments.runner")

# Per-process memos (workers inherit empty copies; an in-process serial run
# reuses prepared workloads and clean references across its jobs).
_WORKLOAD_MEMO: Dict[str, object] = {}
_CLEAN_MEMO: Dict[str, SimulationResult] = {}


def clear_runner_memos() -> None:
    """Drop the per-process workload/clean-reference memos (for benchmarks
    that need successive timed runs to start cold)."""
    _WORKLOAD_MEMO.clear()
    _CLEAN_MEMO.clear()


# --------------------------------------------------------------------- #
# Single-job execution
# --------------------------------------------------------------------- #
def _prepared_workload(job: JobSpec, weights_cache_dir: Optional[str]):
    from repro.workloads import prepare_workload

    spec = job.workload
    memo_key = f"{spec!r}|{weights_cache_dir}"
    prepared = _WORKLOAD_MEMO.get(memo_key)
    if prepared is None:
        prepared = prepare_workload(
            spec.name,
            preset=spec.preset,
            train_size=spec.train_size,
            test_size=spec.test_size,
            calibration_images=spec.calibration_images,
            epochs=spec.epochs,
            seed=spec.seed,
            cache_dir=weights_cache_dir,
        )
        _WORKLOAD_MEMO[memo_key] = prepared
    return prepared


def _clean_reference(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> SimulationResult:
    """Load-or-compute the shared deterministic reference of a MC job."""
    clean_job = job.clean_job()
    key = job_key(clean_job, salt)
    # Memoised per (store, key): the reference must be *persisted* into the
    # store this sweep is writing, or its MC artifacts would carry a
    # dangling clean_key when one process runs sweeps against two stores.
    memo_key = (str(store.root.resolve()), key)
    memo = _CLEAN_MEMO.get(memo_key)
    if memo is not None:
        return memo
    if store.has(key):
        payload = store.load(key)
        arrays = store.load_arrays(key)
        result = SimulationResult.from_payload(
            payload["result"], arrays.get("logits"), arrays.get("labels")
        )
    else:
        result = _execute_evaluate(clean_job, store, weights_cache_dir, salt, key)
    _CLEAN_MEMO[memo_key] = result
    return result


def _execute_evaluate(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> SimulationResult:
    prepared = _prepared_workload(job, weights_cache_dir)
    simulator = prepared.simulator
    split = prepared.eval_split(job.images)
    configs = job.adc.build_configs(simulator.layer_names())
    result = simulator.evaluate(
        split.images, split.labels, configs, batch_size=job.batch_size
    )
    # Rows are stored label-free (labels are reporting metadata merged in at
    # aggregation time), so the artifact is identical no matter which sweep
    # — or which grid point — computed it first.
    row = result.summary()
    row["float_accuracy"] = prepared.float_accuracy
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "result": result.to_payload(),
    }
    arrays = {"logits": result.logits}
    if result.labels is not None:
        arrays["labels"] = result.labels
    store.save(key, payload, arrays)
    return result


def _execute_monte_carlo(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    clean = _clean_reference(job, store, weights_cache_dir, salt)
    prepared = _prepared_workload(job, weights_cache_dir)
    simulator = prepared.simulator
    split = prepared.eval_split(job.images)
    configs = job.adc.build_configs(simulator.layer_names())
    stack = job.noise.build_stack()
    result = simulator.run_monte_carlo(
        split.images,
        split.labels,
        stack,
        adc_configs=configs,
        trials=job.trials,
        batch_size=job.batch_size,
        seed=job.mc_seed,
        confidence=job.confidence,
        clean=clean,
    )
    row = result.summary()
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "clean_key": job_key(job.clean_job(), salt),
        "layer_stats": {
            name: dataclasses.asdict(stats)
            for name, stats in result.layer_stats.items()
        },
    }
    arrays = {"accuracies": result.accuracies, "flip_rates": result.flip_rates}
    store.save(key, payload, arrays)


def _execute_calibration(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    from repro.core import CoDesignOptimizer, SearchSpaceConfig
    from repro.datasets import sample_calibration_set

    prepared = _prepared_workload(job, weights_cache_dir)
    split = prepared.eval_split(job.images)
    params = job.calibration
    calibration = sample_calibration_set(
        prepared.dataset.train,
        num_images=params.calibration_size,
        seed=params.resolved_calib_seed,
    )
    optimizer = CoDesignOptimizer(
        prepared.model,
        calibration.images,
        calibration.labels,
        search_space=SearchSpaceConfig(
            num_v_grid_candidates=params.num_v_grid_candidates
        ),
        max_samples_per_layer=params.max_samples_per_layer,
    )
    result = optimizer.run(
        split.images,
        split.labels,
        batch_size=job.batch_size,
        use_accuracy_loop=params.use_accuracy_loop,
        initial_n_max=params.initial_n_max,
    )
    row = {
        "baseline_accuracy": result.baseline_accuracy,
        "accuracy": result.final_accuracy,
        "accuracy_drop": result.accuracy_drop,
        "remaining_ops_fraction": result.remaining_ops_fraction,
        "ops_reduction_factor": result.ops_reduction_factor,
    }
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
    }
    store.save(key, payload)


def execute_job(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
) -> str:
    """Execute one atomic job, persist its artifact, return its key.

    Idempotent: if the store already holds the key, nothing is computed.
    """
    key = job_key(job, salt)
    if store.has(key):
        return key
    started = time.perf_counter()
    if job.kind == "evaluate":
        _execute_evaluate(job, store, weights_cache_dir, salt, key)
    elif job.kind == "monte_carlo":
        _execute_monte_carlo(job, store, weights_cache_dir, salt, key)
    elif job.kind == "calibration":
        _execute_calibration(job, store, weights_cache_dir, salt, key)
    else:  # pragma: no cover - JobSpec validates kinds
        raise ValueError(f"unknown job kind {job.kind!r}")
    logger.debug("job %s (%s) in %.2fs", key[:12], job.kind, time.perf_counter() - started)
    return key


def _worker_execute(
    job_dict: Dict[str, object],
    store_root: str,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> str:
    """Top-level (picklable) entry point for pool workers."""
    job = JobSpec.from_dict(job_dict)
    return execute_job(job, ResultStore(store_root), weights_cache_dir, salt)


# --------------------------------------------------------------------- #
# Sweep execution
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class SweepRunStats:
    """Execution accounting of one ``run_sweep`` call."""

    total: int = 0
    cached: int = 0
    computed: int = 0
    elapsed_s: float = 0.0


@dataclasses.dataclass
class SweepRun:
    """Outcome of :func:`run_sweep`: the ordered rows and their record."""

    sweep: SweepSpec
    keys: List[str]
    rows: List[Dict[str, object]]
    record: ExperimentRecord
    stats: SweepRunStats


def prewarm_workloads(
    sweep_or_jobs: Union[SweepSpec, List[JobSpec]],
    weights_cache_dir: Optional[str],
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Train (and disk-cache) every unique workload of the jobs, serially.

    Called before a parallel run so worker processes load the trained
    weights from the cache instead of each re-training them.  Weights are
    deterministic either way; this is purely a wall-clock optimisation.
    ``run_sweep`` passes only its *pending* jobs, so fully-cached workloads
    are never prepared just to be skipped.
    """
    if isinstance(sweep_or_jobs, SweepSpec):
        jobs = sweep_or_jobs.expand()
    else:
        jobs = list(sweep_or_jobs)
    seen = set()
    for job in jobs:
        spec = job.workload
        marker = repr(spec)
        if marker in seen:
            continue
        seen.add(marker)
        if progress is not None:
            progress(f"prewarm: preparing workload {spec.name} ({spec.preset})")
        _prepared_workload(job, weights_cache_dir)


def run_sweep(
    sweep: SweepSpec,
    store: Union[ResultStore, str, Path],
    jobs: int = 1,
    force: bool = False,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    prewarm: Optional[bool] = None,
    experiment: Optional[ExperimentSpec] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepRun:
    """Execute a sweep against a result store and aggregate its table.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` executes in-process (no pool).
    force:
        Delete the sweep's existing artifacts (including shared clean
        references) first, recomputing everything.
    prewarm:
        Train workload weights in the parent before forking workers.
        Defaults to ``jobs > 1 and weights_cache_dir is not None``.
    experiment:
        Reporting identity; defaults to one derived from the sweep name.

    The returned :class:`SweepRun` carries rows in expansion order; the
    aggregate is identical whether the sweep ran serially, in parallel, or
    across several interrupted+resumed invocations, because rows are read
    back from the content-addressed artifacts.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    expanded = sweep.expand()
    keys = [job_key(job, salt) for job in expanded]

    if force:
        for job, key in zip(expanded, keys):
            store.delete(key)
            if job.kind == "monte_carlo":
                store.delete(job_key(job.clean_job(), salt))
        _CLEAN_MEMO.clear()

    pending = [
        (index, job) for index, (job, key) in enumerate(zip(expanded, keys))
        if not store.has(key)
    ]
    stats = SweepRunStats(total=len(expanded), cached=len(expanded) - len(pending))
    if progress is not None:
        progress(
            f"sweep '{sweep.name}': {stats.total} jobs, "
            f"{stats.cached} cached, {len(pending)} to run (jobs={jobs})"
        )

    if pending:
        if prewarm is None:
            prewarm = jobs > 1 and weights_cache_dir is not None
        if prewarm:
            prewarm_workloads([job for _, job in pending], weights_cache_dir, progress)
        if jobs == 1:
            for index, job in pending:
                execute_job(job, store, weights_cache_dir, salt)
                stats.computed += 1
                if progress is not None:
                    progress(f"  [{stats.cached + stats.computed}/{stats.total}] "
                             f"{job.kind} {job.label_dict}")
        else:
            # First wave: the unique clean references the pending Monte
            # Carlo jobs will share.  Materialised before the MC fan-out so
            # concurrent workers don't race past the store check and each
            # recompute the same reference ("computed once per (workload,
            # config)" is a wall-clock contract, not just a storage one).
            clean_wave: Dict[str, JobSpec] = {}
            for _, job in pending:
                if job.kind == "monte_carlo":
                    clean = job.clean_job()
                    clean_key = job_key(clean, salt)
                    if not store.has(clean_key):
                        clean_wave.setdefault(clean_key, clean)
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                if clean_wave:
                    if progress is not None:
                        progress(f"  computing {len(clean_wave)} shared clean "
                                 "reference(s)")
                    wave = [
                        pool.submit(
                            _worker_execute, job.to_dict(), str(store.root),
                            weights_cache_dir, salt,
                        )
                        for job in clean_wave.values()
                    ]
                    try:
                        for future in concurrent.futures.as_completed(wave):
                            future.result()
                    except KeyboardInterrupt:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                futures = {
                    pool.submit(
                        _worker_execute,
                        job.to_dict(),
                        str(store.root),
                        weights_cache_dir,
                        salt,
                    ): (index, job)
                    for index, job in pending
                }
                try:
                    for future in concurrent.futures.as_completed(futures):
                        future.result()  # re-raise worker failures
                        stats.computed += 1
                        if progress is not None:
                            index, job = futures[future]
                            progress(
                                f"  [{stats.cached + stats.computed}/{stats.total}] "
                                f"{job.kind} {job.label_dict}"
                            )
                except KeyboardInterrupt:
                    # Completed jobs are already persisted; drop the rest and
                    # surface the interrupt so the CLI can print a resume hint.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise

    # Deterministic aggregation: rows come from the store in job order (so
    # completion order / worker count / resume history cannot influence
    # them), with each job's grid-coordinate labels merged in from the spec.
    rows = [
        {**job.label_dict, **store.load(key)["row"]}
        for job, key in zip(expanded, keys)
    ]
    stats.elapsed_s = time.perf_counter() - started

    if experiment is None:
        experiment = ExperimentSpec(experiment_id=sweep.name, sweep=sweep)
    record = ExperimentRecord(
        experiment_id=experiment.experiment_id,
        description=experiment.description or f"experiment sweep '{sweep.name}'",
        paper_reference=experiment.paper_reference,
        rows=rows,
        metadata={
            "sweep": sweep.to_dict(),
            "salt": salt if salt is not None else code_version_salt(),
            "num_jobs": len(expanded),
            "job_keys": keys,
        },
    )
    return SweepRun(sweep=sweep, keys=keys, rows=rows, record=record, stats=stats)
