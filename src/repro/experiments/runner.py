"""Sweep execution: serial or process-parallel, resumable, deterministic.

The runner walks a :class:`~repro.experiments.spec.SweepSpec`'s expanded job
list, skips every job whose address already exists in the
:class:`~repro.experiments.store.ResultStore`, and executes the rest either
in-process (``jobs=1``) or on a ``ProcessPoolExecutor``.  Three properties
hold regardless of execution mode:

* **Determinism** — every stochastic input is derived from the specs
  (trained weights from the workload seed, Monte Carlo trials from
  ``utils.rng.derive_seed`` via the keyed noise stacks), so a worker process
  computes bit-identical results to an in-process run.
* **Order independence** — the aggregate table is assembled from the store
  in job-index order after execution, so completion order (and worker
  count) cannot reorder or change the rows.
* **Crash safety** — each finished job is atomically persisted before the
  next is scheduled; Ctrl-C (or a crash) loses at most the in-flight jobs,
  and a rerun resumes from the store.

The noise-free clean reference of Monte Carlo jobs is itself a store
artifact (see :meth:`JobSpec.clean_job`): computed once per (workload, ADC
config) by whichever job needs it first, then shared by every sibling —
across grid points, worker processes, and resumed runs.  The same
load-or-compute sharing applies to the other cross-job artifacts: the
bit-line distribution capture behind ``uniform_calibrated`` evaluations
(:meth:`JobSpec.distribution_job`) and the Algorithm 1 search behind
``power`` jobs (:meth:`JobSpec.calibration_job`).

* **Failure policy** — a job that raises leaves no store artifact (writes
  are atomic and happen only on success); the exception and traceback are
  recorded in the store's :class:`~repro.experiments.store.FailureLog`.
  With ``max_failures=None`` (default) the first failure aborts the sweep;
  ``max_failures=N`` tolerates up to ``N`` failed jobs — their rows are
  simply absent from the aggregate — and aborts with
  :class:`MaxFailuresExceeded` beyond that.  A later successful run of a
  previously-failed key clears its log entry, so rerunning a sweep heals
  transient failures exactly like it resumes interrupted ones.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from pathlib import Path
from typing import Callable, Collection, Dict, List, Optional, Union

import numpy as np

from repro.experiments.spec import ExperimentSpec, JobSpec, SweepSpec
from repro.experiments.store import FailureLog, ResultStore, code_version_salt, job_key
from repro.report.experiments import ExperimentRecord
from repro.sim.stats import SimulationResult
from repro.utils.logging import get_logger

logger = get_logger("experiments.runner")


class MaxFailuresExceeded(RuntimeError):
    """Raised when a sweep's failed-job count exceeds its ``max_failures``."""


# Per-process memos (workers inherit empty copies; an in-process serial run
# reuses prepared workloads and shared artifacts across its jobs).
_WORKLOAD_MEMO: Dict[str, object] = {}
_CLEAN_MEMO: Dict[str, SimulationResult] = {}
_DISTRIBUTION_MEMO: Dict[str, Dict[str, np.ndarray]] = {}


def clear_runner_memos() -> None:
    """Drop the per-process workload/clean-reference memos (for benchmarks
    that need successive timed runs to start cold)."""
    _WORKLOAD_MEMO.clear()
    _CLEAN_MEMO.clear()
    _DISTRIBUTION_MEMO.clear()


# --------------------------------------------------------------------- #
# Single-job execution
# --------------------------------------------------------------------- #
def _prepared_workload(job: JobSpec, weights_cache_dir: Optional[str]):
    from repro.workloads import prepare_workload

    spec = job.workload
    memo_key = f"{spec!r}|{weights_cache_dir}"
    prepared = _WORKLOAD_MEMO.get(memo_key)
    if prepared is None:
        prepared = prepare_workload(
            spec.name,
            preset=spec.preset,
            train_size=spec.train_size,
            test_size=spec.test_size,
            calibration_images=spec.calibration_images,
            epochs=spec.epochs,
            seed=spec.seed,
            cache_dir=weights_cache_dir,
        )
        _WORKLOAD_MEMO[memo_key] = prepared
    return prepared


def _clean_reference(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> SimulationResult:
    """Load-or-compute the shared deterministic reference of a MC job."""
    clean_job = job.clean_job()
    key = job_key(clean_job, salt)
    # Memoised per (store, key): the reference must be *persisted* into the
    # store this sweep is writing, or its MC artifacts would carry a
    # dangling clean_key when one process runs sweeps against two stores.
    memo_key = (str(store.root.resolve()), key)
    memo = _CLEAN_MEMO.get(memo_key)
    if memo is not None:
        return memo
    if store.has(key):
        payload = store.load(key)
        arrays = store.load_arrays(key)
        result = SimulationResult.from_payload(
            payload["result"], arrays.get("logits"), arrays.get("labels")
        )
    else:
        result = _execute_evaluate(clean_job, store, weights_cache_dir, salt, key)
    _CLEAN_MEMO[memo_key] = result
    return result


def _distribution_samples(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> Dict[str, np.ndarray]:
    """Load-or-compute the shared bit-line capture of a calibrated-uniform
    evaluation (one artifact per (workload, capture params), shared by every
    sensing precision)."""
    dist_job = job.distribution_job()
    key = job_key(dist_job, salt)
    memo_key = f"{store.root.resolve()}|{key}"
    memo = _DISTRIBUTION_MEMO.get(memo_key)
    if memo is not None:
        return memo
    if store.has(key):
        samples = store.load_arrays(key)
    else:
        samples = _execute_distribution(dist_job, store, weights_cache_dir, salt, key)
    _DISTRIBUTION_MEMO[memo_key] = samples
    return samples


def _execute_distribution(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> Dict[str, np.ndarray]:
    prepared = _prepared_workload(job, weights_cache_dir)
    params = job.distribution
    images = prepared.calibration.images[: params.images]
    samples = prepared.simulator.collect_bitline_distributions(
        images,
        batch_size=params.batch_size,
        capacity_per_layer=params.capacity_per_layer,
        seed=params.seed,
    )
    layers = {}
    for name, values in samples.items():
        values = np.asarray(values, dtype=np.float64)
        maximum = float(values.max()) if values.size else 0.0
        layers[name] = {
            "count": int(values.size),
            "median": float(np.median(values)) if values.size else 0.0,
            "p95": float(np.percentile(values, 95)) if values.size else 0.0,
            "max": maximum,
            "frac_below_max_over_8": (
                float(np.mean(values <= maximum / 8.0)) if maximum > 0 else 1.0
            ),
        }
    pooled = (
        np.concatenate([np.asarray(v, dtype=np.float64) for v in samples.values()])
        if samples else np.empty(0)
    )
    pooled_max = float(pooled.max()) if pooled.size else 0.0
    row = {
        "layers": len(samples),
        "total_samples": int(pooled.size),
        "pooled_median": float(np.median(pooled)) if pooled.size else 0.0,
        "pooled_max": pooled_max,
        "pooled_frac_below_max_over_4": (
            float(np.mean(pooled <= pooled_max / 4.0)) if pooled_max > 0 else 1.0
        ),
    }
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "layer_summaries": layers,
    }
    arrays = {name: np.asarray(values, dtype=np.float64) for name, values in samples.items()}
    store.save(key, payload, arrays)
    return arrays


def _execute_reference_evaluate(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    """``datapath="float"``/``"fakequant"``: one forward pass of the trained
    (or fake-quantized) model — the paper's f/f and 8/f reference points."""
    from repro.nn import top1_accuracy
    from repro.quantization import FakeQuantBackend, attach_backend, detach_backend

    prepared = _prepared_workload(job, weights_cache_dir)
    split = prepared.eval_split(job.images)
    model = prepared.model
    model.eval()
    if job.datapath == "fakequant":
        attach_backend(model, FakeQuantBackend(prepared.quantized))
        try:
            accuracy = top1_accuracy(model(split.images), split.labels)
        finally:
            detach_backend(model)
    else:
        accuracy = top1_accuracy(model(split.images), split.labels)
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": {"accuracy": float(accuracy), "num_images": float(len(split.labels))},
    }
    store.save(key, payload)


def _execute_evaluate(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> SimulationResult:
    prepared = _prepared_workload(job, weights_cache_dir)
    simulator = prepared.simulator
    split = prepared.eval_split(job.images)
    if job.adc.needs_distributions:
        samples = _distribution_samples(job, store, weights_cache_dir, salt)
        configs = job.adc.build_configs_from_samples(samples)
    else:
        configs = job.adc.build_configs(simulator.layer_names())
    result = simulator.evaluate(
        split.images, split.labels, configs, batch_size=job.batch_size
    )
    # Rows are stored label-free (labels are reporting metadata merged in at
    # aggregation time), so the artifact is identical no matter which sweep
    # — or which grid point — computed it first.
    row = result.summary()
    row["float_accuracy"] = prepared.float_accuracy
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "result": result.to_payload(),
    }
    arrays = {"logits": result.logits}
    if result.labels is not None:
        arrays["labels"] = result.labels
    store.save(key, payload, arrays)
    return result


def _execute_monte_carlo(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    clean = _clean_reference(job, store, weights_cache_dir, salt)
    prepared = _prepared_workload(job, weights_cache_dir)
    simulator = prepared.simulator
    split = prepared.eval_split(job.images)
    if job.adc.needs_distributions:
        samples = _distribution_samples(job, store, weights_cache_dir, salt)
        configs = job.adc.build_configs_from_samples(samples)
    else:
        configs = job.adc.build_configs(simulator.layer_names())
    stack = job.noise.build_stack()
    result = simulator.run_monte_carlo(
        split.images,
        split.labels,
        stack,
        adc_configs=configs,
        trials=job.trials,
        batch_size=job.batch_size,
        seed=job.mc_seed,
        confidence=job.confidence,
        clean=clean,
    )
    row = result.summary()
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "clean_key": job_key(job.clean_job(), salt),
        "layer_stats": {
            name: dataclasses.asdict(stats)
            for name, stats in result.layer_stats.items()
        },
    }
    arrays = {"accuracies": result.accuracies, "flip_rates": result.flip_rates}
    store.save(key, payload, arrays)


def _execute_calibration(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> Dict[str, object]:
    from repro.core import CoDesignOptimizer, SearchSpaceConfig
    from repro.datasets import sample_calibration_set

    prepared = _prepared_workload(job, weights_cache_dir)
    split = prepared.eval_split(job.images)
    params = job.calibration
    if params.source == "workload":
        # The prepared calibration split — what the figure benchmarks feed
        # the optimizer, making these jobs bit-identical to the pre-port
        # pipeline.
        calibration = prepared.calibration
        if params.calibration_size < len(calibration.labels):
            calibration = calibration.subset(np.arange(params.calibration_size))
    else:
        calibration = sample_calibration_set(
            prepared.dataset.train,
            num_images=params.calibration_size,
            seed=params.resolved_calib_seed,
        )
    optimizer = CoDesignOptimizer(
        prepared.model,
        calibration.images,
        calibration.labels,
        search_space=SearchSpaceConfig(
            num_v_grid_candidates=params.num_v_grid_candidates
        ),
        max_samples_per_layer=params.max_samples_per_layer,
    )
    result = optimizer.run(
        split.images,
        split.labels,
        batch_size=job.batch_size,
        use_accuracy_loop=params.use_accuracy_loop,
        initial_n_max=params.initial_n_max,
    )
    row = {
        "baseline_accuracy": result.baseline_accuracy,
        "accuracy": result.final_accuracy,
        "accuracy_drop": result.accuracy_drop,
        "remaining_ops_fraction": result.remaining_ops_fraction,
        "ops_reduction_factor": result.ops_reduction_factor,
    }
    evaluation = result.evaluation
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        # Per-layer data for downstream consumers: the Fig. 6c per-layer
        # table and the Fig. 7 power model (measured A/D ops per conversion).
        "per_layer_remaining_fraction": evaluation.per_layer_remaining_fraction(),
        "per_layer_ops_per_conversion": {
            name: stats.mean_ops_per_conversion
            for name, stats in evaluation.layer_stats.items()
        },
        "evaluation": evaluation.to_payload(),
    }
    store.save(key, payload)
    return payload


def _calibration_payload(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
) -> Dict[str, object]:
    """Load-or-compute the Algorithm 1 sibling a power job consumes."""
    cal_job = job.calibration_job()
    key = job_key(cal_job, salt)
    if store.has(key):
        return store.load(key)
    return _execute_calibration(cal_job, store, weights_cache_dir, salt, key)


def _execute_power(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    key: str,
) -> None:
    from repro.arch import AcceleratorMapping, breakdown_table, compare_configurations
    from repro.nn.models import workload_info

    cal_payload = _calibration_payload(job, store, weights_cache_dir, salt)
    trq_ops = {
        name: float(value)
        for name, value in cal_payload["per_layer_ops_per_conversion"].items()
    }
    prepared = _prepared_workload(job, weights_cache_dir)
    name = job.workload.name
    info = workload_info(name)
    image_shape = (info["in_channels"], info["image_size"], info["image_size"])
    mapping = AcceleratorMapping(prepared.quantized, image_shape)
    spec = job.power
    comparison = compare_configurations(
        name,
        mapping,
        trq_ops,
        uniform_bits=spec.uniform_bits,
        power_model=spec.build_power_model(),
        trq_label=spec.trq_label,
    )
    breakdown_rows = breakdown_table([comparison])
    baseline = comparison.by_label("ISAAC")
    ours = comparison.by_label(spec.trq_label)
    row = {
        "workload": name,
        "isaac_total_J": baseline.total,
        "trq_total_J": ours.total,
        "uniform_total_J": comparison.by_label(f"UQ({spec.uniform_bits}b)").total,
        "adc_reduction_vs_isaac": comparison.adc_reduction_vs_baseline(spec.trq_label),
        "total_reduction_vs_isaac": comparison.total_reduction_vs_baseline(spec.trq_label),
        "baseline_adc_fraction": baseline.fraction("ADC"),
    }
    payload = {
        "key": key,
        "salt": salt if salt is not None else code_version_salt(),
        "spec": job.to_dict(),
        "row": row,
        "breakdown_rows": breakdown_rows,
        "calibration_key": job_key(job.calibration_job(), salt),
    }
    store.save(key, payload)


def execute_job(
    job: JobSpec,
    store: ResultStore,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
) -> str:
    """Execute one atomic job, persist its artifact, return its key.

    Idempotent: if the store already holds the key, nothing is computed.
    """
    key = job_key(job, salt)
    if store.has(key):
        return key
    started = time.perf_counter()
    if job.kind == "evaluate":
        if job.datapath == "pim":
            _execute_evaluate(job, store, weights_cache_dir, salt, key)
        else:
            _execute_reference_evaluate(job, store, weights_cache_dir, salt, key)
    elif job.kind == "monte_carlo":
        _execute_monte_carlo(job, store, weights_cache_dir, salt, key)
    elif job.kind == "calibration":
        _execute_calibration(job, store, weights_cache_dir, salt, key)
    elif job.kind == "distribution":
        _execute_distribution(job, store, weights_cache_dir, salt, key)
    elif job.kind == "power":
        _execute_power(job, store, weights_cache_dir, salt, key)
    else:  # pragma: no cover - JobSpec validates kinds
        raise ValueError(f"unknown job kind {job.kind!r}")
    logger.debug("job %s (%s) in %.2fs", key[:12], job.kind, time.perf_counter() - started)
    return key


def _worker_execute(
    job_dict: Dict[str, object],
    store_root: str,
    weights_cache_dir: Optional[str],
    salt: Optional[str],
    inject_failure: bool = False,
) -> str:
    """Top-level (picklable) entry point for pool workers."""
    job = JobSpec.from_dict(job_dict)
    if inject_failure:
        raise RuntimeError(
            f"injected failure (--inject-failure) for {job.kind} job {job.label_dict}"
        )
    return execute_job(job, ResultStore(store_root), weights_cache_dir, salt)


# --------------------------------------------------------------------- #
# Sweep execution
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class SweepRunStats:
    """Execution accounting of one ``run_sweep`` call."""

    total: int = 0
    cached: int = 0
    computed: int = 0
    failed: int = 0
    elapsed_s: float = 0.0


@dataclasses.dataclass
class SweepRun:
    """Outcome of :func:`run_sweep`: the ordered rows and their record.

    ``failures`` lists the tolerated failures of this invocation (empty
    unless ``max_failures`` allowed the sweep to continue past errors);
    each entry mirrors its persisted failure-log record.  Rows of failed
    jobs are absent from ``rows`` — order of the surviving rows still
    follows the grid expansion.
    """

    sweep: SweepSpec
    keys: List[str]
    rows: List[Dict[str, object]]
    record: ExperimentRecord
    stats: SweepRunStats
    failures: List[Dict[str, object]] = dataclasses.field(default_factory=list)


def prewarm_workloads(
    sweep_or_jobs: Union[SweepSpec, List[JobSpec]],
    weights_cache_dir: Optional[str],
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Train (and disk-cache) every unique workload of the jobs, serially.

    Called before a parallel run so worker processes load the trained
    weights from the cache instead of each re-training them.  Weights are
    deterministic either way; this is purely a wall-clock optimisation.
    ``run_sweep`` passes only its *pending* jobs, so fully-cached workloads
    are never prepared just to be skipped.
    """
    if isinstance(sweep_or_jobs, SweepSpec):
        jobs = sweep_or_jobs.expand()
    else:
        jobs = list(sweep_or_jobs)
    seen = set()
    for job in jobs:
        spec = job.workload
        marker = repr(spec)
        if marker in seen:
            continue
        seen.add(marker)
        if progress is not None:
            progress(f"prewarm: preparing workload {spec.name} ({spec.preset})")
        _prepared_workload(job, weights_cache_dir)


def run_sweep(
    sweep: SweepSpec,
    store: Union[ResultStore, str, Path],
    jobs: int = 1,
    force: bool = False,
    weights_cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    prewarm: Optional[bool] = None,
    experiment: Optional[ExperimentSpec] = None,
    progress: Optional[Callable[[str], None]] = None,
    max_failures: Optional[int] = None,
    inject_failures: Collection[int] = (),
) -> SweepRun:
    """Execute a sweep against a result store and aggregate its table.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` executes in-process (no pool).
    force:
        Delete the sweep's existing artifacts (including shared clean
        references) first, recomputing everything.
    prewarm:
        Train workload weights in the parent before forking workers.
        Defaults to ``jobs > 1 and weights_cache_dir is not None``.
    experiment:
        Reporting identity; defaults to one derived from the sweep name.
    max_failures:
        ``None`` (default): the first failing job aborts the sweep (after
        logging it).  ``N``: tolerate up to ``N`` failed jobs — each is
        recorded in the store's failure log and its row is absent from the
        aggregate; failure ``N+1`` aborts with :class:`MaxFailuresExceeded`.
    inject_failures:
        Job indices forced to raise instead of executing — a testing aid
        (the CLI's ``--inject-failure``) for exercising the failure path
        end to end.  Injected failures follow the same logging/tolerance
        rules as real ones.

    The returned :class:`SweepRun` carries rows in expansion order; the
    aggregate is identical whether the sweep ran serially, in parallel, or
    across several interrupted+resumed invocations, because rows are read
    back from the content-addressed artifacts.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    expanded = sweep.expand()
    keys = [job_key(job, salt) for job in expanded]
    failure_log = FailureLog(store)
    failures: List[Dict[str, object]] = []
    inject = frozenset(int(index) for index in inject_failures)

    if force:
        for job, key in zip(expanded, keys):
            store.delete(key)
            if job.kind == "monte_carlo":
                store.delete(job_key(job.clean_job(), salt))
        _CLEAN_MEMO.clear()

    pending = [
        (index, job) for index, (job, key) in enumerate(zip(expanded, keys))
        if not store.has(key)
    ]
    stats = SweepRunStats(total=len(expanded), cached=len(expanded) - len(pending))
    if progress is not None:
        progress(
            f"sweep '{sweep.name}': {stats.total} jobs, "
            f"{stats.cached} cached, {len(pending)} to run (jobs={jobs})"
        )

    def note_failure(index: int, job: JobSpec, error: BaseException) -> None:
        """Log one failed job; re-raise when the failure budget is spent."""
        key = keys[index]
        entry = failure_log.record(key, job, error, index=index)
        failures.append(entry)
        stats.failed += 1
        if progress is not None:
            progress(f"  FAILED [{index}] {job.kind} {job.label_dict}: "
                     f"{entry['error']} (logged to {failure_log.path(key)})")
        if max_failures is None:
            raise error
        if stats.failed > max_failures:
            raise MaxFailuresExceeded(
                f"sweep '{sweep.name}' exceeded max_failures={max_failures} "
                f"({stats.failed} failed jobs; see {failure_log.root})"
            ) from error

    if pending:
        if prewarm is None:
            prewarm = jobs > 1 and weights_cache_dir is not None
        if prewarm:
            prewarm_workloads([job for _, job in pending], weights_cache_dir, progress)
        if jobs == 1:
            for index, job in pending:
                try:
                    if index in inject:
                        raise RuntimeError(
                            f"injected failure (--inject-failure) for {job.kind} "
                            f"job {job.label_dict}"
                        )
                    execute_job(job, store, weights_cache_dir, salt)
                except KeyboardInterrupt:
                    raise
                except Exception as error:  # noqa: BLE001 - policy decides
                    note_failure(index, job, error)
                    continue
                stats.computed += 1
                if progress is not None:
                    progress(f"  [{stats.cached + stats.computed}/{stats.total}] "
                             f"{job.kind} {job.label_dict}")
        else:
            # First wave: the unique shared artifacts the pending jobs will
            # load — clean references of Monte Carlo jobs, distribution
            # captures of calibrated-uniform evaluations, calibration
            # siblings of power jobs.  Materialised before the main fan-out
            # so concurrent workers don't race past the store check and each
            # recompute the same artifact ("computed once per configuration"
            # is a wall-clock contract, not just a storage one).  A wave
            # failure is deferred: the dependent main jobs fail too and are
            # logged/counted under the sweep's failure policy.
            shared_wave: Dict[str, JobSpec] = {}
            for index, job in pending:
                if index in inject:
                    continue  # its shared artifact would be wasted work
                siblings = []
                if job.kind == "monte_carlo":
                    siblings.append(job.clean_job())
                if job.kind in ("evaluate", "monte_carlo") \
                        and job.datapath == "pim" and job.adc.needs_distributions:
                    siblings.append(job.distribution_job())
                if job.kind == "power":
                    siblings.append(job.calibration_job())
                for sibling in siblings:
                    sibling_key = job_key(sibling, salt)
                    if not store.has(sibling_key):
                        shared_wave.setdefault(sibling_key, sibling)
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                if shared_wave:
                    if progress is not None:
                        progress(f"  computing {len(shared_wave)} shared "
                                 "artifact(s) (clean refs / distributions / "
                                 "calibrations)")
                    # Two phases: distribution captures first, because a
                    # clean reference over a calibrated-uniform ADC itself
                    # loads the capture — submitting both at once would let
                    # two workers compute the same capture concurrently.
                    phases = (
                        [j for j in shared_wave.values() if j.kind == "distribution"],
                        [j for j in shared_wave.values() if j.kind != "distribution"],
                    )
                    try:
                        for phase_jobs in phases:
                            wave = [
                                pool.submit(
                                    _worker_execute, job.to_dict(),
                                    str(store.root), weights_cache_dir, salt,
                                )
                                for job in phase_jobs
                            ]
                            for future in concurrent.futures.as_completed(wave):
                                try:
                                    future.result()
                                except Exception as error:  # noqa: BLE001
                                    logger.warning(
                                        "shared artifact failed (%s); dependent "
                                        "jobs will fail and be logged", error,
                                    )
                    except KeyboardInterrupt:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                futures = {
                    pool.submit(
                        _worker_execute,
                        job.to_dict(),
                        str(store.root),
                        weights_cache_dir,
                        salt,
                        index in inject,
                    ): (index, job)
                    for index, job in pending
                }
                try:
                    for future in concurrent.futures.as_completed(futures):
                        index, job = futures[future]
                        try:
                            future.result()
                        except Exception as error:  # noqa: BLE001
                            try:
                                note_failure(index, job, error)
                            except BaseException:
                                pool.shutdown(wait=False, cancel_futures=True)
                                raise
                            continue
                        stats.computed += 1
                        if progress is not None:
                            progress(
                                f"  [{stats.cached + stats.computed}/{stats.total}] "
                                f"{job.kind} {job.label_dict}"
                            )
                except KeyboardInterrupt:
                    # Completed jobs are already persisted; drop the rest and
                    # surface the interrupt so the CLI can print a resume hint.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise

    # Deterministic aggregation: rows come from the store in job order (so
    # completion order / worker count / resume history cannot influence
    # them), with each job's grid-coordinate labels merged in from the spec.
    # Jobs whose artifact is absent (tolerated failures) contribute no row;
    # a stored key with a stale failure entry has healed, so clear it.
    rows = []
    for job, key in zip(expanded, keys):
        if not store.has(key):
            continue
        if failure_log.has(key):
            failure_log.clear(key)
        rows.append({**job.label_dict, **store.load(key)["row"]})
    stats.elapsed_s = time.perf_counter() - started

    if experiment is None:
        experiment = ExperimentSpec(experiment_id=sweep.name, sweep=sweep)
    metadata = {
        "sweep": sweep.to_dict(),
        "salt": salt if salt is not None else code_version_salt(),
        "num_jobs": len(expanded),
        "job_keys": keys,
    }
    if failures:
        metadata["failures"] = [
            {"index": f["index"], "key": f["key"], "kind": f["kind"],
             "label": f["label"], "error": f["error"]}
            for f in failures
        ]
    record = ExperimentRecord(
        experiment_id=experiment.experiment_id,
        description=experiment.description or f"experiment sweep '{sweep.name}'",
        paper_reference=experiment.paper_reference,
        rows=rows,
        metadata=metadata,
    )
    return SweepRun(
        sweep=sweep, keys=keys, rows=rows, record=record, stats=stats,
        failures=failures,
    )
