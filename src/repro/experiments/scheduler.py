"""The dependency layer: a content-addressed job graph over a sweep.

:func:`build_job_graph` turns a sweep's *pending* jobs (the expansion
indices whose artifacts are absent from the store) into an explicit
dependency graph:

* **Nodes are content addresses.**  Every node is one store artifact,
  keyed by :func:`repro.experiments.store.job_key`.  A shared sibling —
  the clean reference of Monte Carlo grid points, the bit-line capture
  behind a ``uniform_calibrated`` precision sweep, the Algorithm 1 search
  a power job consumes — therefore appears **once**, no matter how many
  sweep jobs (or other dependencies) reach it, and no matter whether it is
  itself a grid point of the sweep (the zero-noise evaluate job *is* the
  clean reference of its Monte Carlo siblings).
* **Edges come from the specs.**  :meth:`JobSpec.dependencies` declares
  each job's direct inputs; the graph takes the transitive closure, so a
  clean reference over a calibrated-uniform ADC correctly depends on the
  distribution capture even though only the evaluate job names it.
  Dependencies whose artifacts are already stored are *satisfied* and not
  scheduled at all.
* **Waves are topological.**  :meth:`JobGraph.waves` groups nodes by
  dependency depth: every node's scheduled dependencies live in strictly
  earlier waves, so an executor may run each wave's nodes concurrently —
  at any depth, not just the two phases the runner used to hard-code.
* **Failures propagate, once.**  When a node fails, its transitive
  dependents must not run (they would recompute the missing artifact and
  crash); the runner's :func:`~repro.experiments.runner.execute_graph`
  carries the root cause forward wave by wave and marks each dependent
  *failed-with-cause* (:meth:`JobGraph.transitive_dependents` exposes the
  same reachability for tooling and tests).  The failure policy counts the
  root failure once against ``max_failures`` — a dead clean reference with
  eight Monte Carlo dependents is one failure, not nine.

The graph is deterministic: nodes are discovered in sweep-expansion order
(dependencies before dependents), so wave contents and their internal
order never depend on executor timing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.experiments.spec import JobSpec
from repro.experiments.store import ResultStore, job_key


class UpstreamFailed(RuntimeError):
    """A job was not run because a job it depends on failed.

    Raised *about* a job (never from inside one): the runner records it in
    the failure log with ``cause_key`` pointing at the root failure, so a
    rerun — which retries the root — heals the whole subtree.
    """

    def __init__(self, message: str, cause_key: str) -> None:
        super().__init__(message)
        self.cause_key = cause_key


@dataclasses.dataclass
class ScheduledJob:
    """One node of the job graph: a store artifact that must be computed.

    ``indices`` are the sweep-expansion indices addressing this artifact
    (usually one; empty for a pure shared dependency that is not itself a
    grid point).  ``dependencies`` lists the *scheduled* direct
    dependencies by key — dependencies already satisfied by the store are
    instead recorded in ``satisfied``, so executors that ship a node's
    inputs elsewhere (the ``RemoteExecutor``'s per-worker store sync)
    know every stored artifact the job will read.
    """

    key: str
    job: JobSpec
    indices: Tuple[int, ...] = ()
    dependencies: Tuple[str, ...] = ()
    satisfied: Tuple[str, ...] = ()

    @property
    def index(self) -> Optional[int]:
        """The first sweep index of this node (``None`` for pure deps)."""
        return self.indices[0] if self.indices else None

    def describe(self) -> str:
        label = self.job.label_dict
        return f"{self.job.kind} {label}" if label else self.job.kind


@dataclasses.dataclass
class JobGraph:
    """A deduplicated dependency graph over one sweep's pending jobs."""

    nodes: Dict[str, ScheduledJob]
    order: List[str]  # discovery order: dependencies before dependents

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return (self.nodes[key] for key in self.order)

    # ------------------------------------------------------------------ #
    def dependents(self) -> Dict[str, Tuple[str, ...]]:
        """Reverse adjacency: key -> keys of nodes that depend on it."""
        reverse: Dict[str, List[str]] = {key: [] for key in self.order}
        for key in self.order:
            for dep in self.nodes[key].dependencies:
                reverse[dep].append(key)
        return {key: tuple(values) for key, values in reverse.items()}

    def transitive_dependents(self, key: str) -> List[ScheduledJob]:
        """Every node downstream of ``key``, in discovery order."""
        reverse = self.dependents()
        reached: Set[str] = set()
        frontier = [key]
        while frontier:
            current = frontier.pop()
            for dependent in reverse.get(current, ()):
                if dependent not in reached:
                    reached.add(dependent)
                    frontier.append(dependent)
        return [self.nodes[k] for k in self.order if k in reached]

    def depths(self) -> Dict[str, int]:
        """Dependency depth per node (0 = no scheduled dependencies)."""
        depth: Dict[str, int] = {}
        for key in self.order:  # discovery order guarantees deps first
            node = self.nodes[key]
            depth[key] = (
                1 + max(depth[dep] for dep in node.dependencies)
                if node.dependencies
                else 0
            )
        return depth

    def waves(self) -> List[List[ScheduledJob]]:
        """Topological waves: wave *d* holds exactly the depth-*d* nodes.

        Every node's scheduled dependencies sit in strictly earlier waves,
        so the nodes of one wave are mutually independent and an executor
        may run them concurrently.  Wave membership and in-wave order are
        deterministic (discovery order), so two schedules of the same sweep
        against the same store are identical.
        """
        depth = self.depths()
        if not depth:
            return []
        waves: List[List[ScheduledJob]] = [[] for _ in range(max(depth.values()) + 1)]
        for key in self.order:
            waves[depth[key]].append(self.nodes[key])
        return waves


def build_job_graph(
    pending: Iterable[Tuple[int, JobSpec]],
    store: ResultStore,
    salt: Optional[str] = None,
) -> JobGraph:
    """Build the deduplicated dependency graph of a sweep's pending jobs.

    ``pending`` are ``(sweep index, job)`` pairs whose artifacts are absent
    from ``store``.  Dependencies (direct and transitive) that are absent
    too are scheduled as extra nodes; dependencies already stored are
    satisfied and ignored.  Two pending entries with the same content
    address collapse into one node carrying both indices.
    """
    nodes: Dict[str, ScheduledJob] = {}
    order: List[str] = []
    satisfied: Set[str] = set()  # keys confirmed present in the store

    def add(job: JobSpec, index: Optional[int]) -> str:
        key = job_key(job, salt)
        node = nodes.get(key)
        if node is None:
            # Dependencies first (post-order), so `order` is topological.
            dep_keys: List[str] = []
            satisfied_keys: List[str] = []
            for dep in job.dependencies():
                dep_key = job_key(dep, salt)
                if dep_key == key:  # defensive: a job can never need itself
                    continue
                if dep_key in satisfied:
                    satisfied_keys.append(dep_key)
                    continue
                if dep_key not in nodes:
                    if store.has(dep_key):
                        satisfied.add(dep_key)
                        satisfied_keys.append(dep_key)
                        continue
                    add(dep, None)
                dep_keys.append(dep_key)
            node = ScheduledJob(
                key=key, job=job,
                dependencies=tuple(dict.fromkeys(dep_keys)),
                satisfied=tuple(dict.fromkeys(satisfied_keys)),
            )
            nodes[key] = node
            order.append(key)
        if index is not None:
            node.indices = tuple((*node.indices, index))
        return key

    for index, job in pending:
        add(job, index)
    return JobGraph(nodes=nodes, order=order)


def expanded_artifacts(
    jobs: Sequence[JobSpec], salt: Optional[str] = None
) -> Dict[str, JobSpec]:
    """Every artifact a job list can touch — the jobs themselves plus the
    transitive closure of their dependencies — keyed by content address.

    Used by ``force`` runs (delete everything the sweep would recompute,
    shared siblings included) and by the shard planner.
    """
    artifacts: Dict[str, JobSpec] = {}

    def add(job: JobSpec) -> None:
        key = job_key(job, salt)
        if key in artifacts:
            return
        artifacts[key] = job
        for dep in job.dependencies():
            add(dep)

    for job in jobs:
        add(job)
    return artifacts
