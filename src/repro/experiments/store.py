"""Content-addressed result store (and its failure log).

**What addresses a result.**  Every atomic job's address is the SHA-256 of
its canonical resolved spec (:meth:`repro.experiments.spec.JobSpec.resolved`)
plus the *code-version salt*.  A stored result is therefore invalidated —
i.e. a fresh address is computed and the old artifact is simply never
looked up again — by editing **any input the job kind consumes**: the
workload fingerprint (model preset structure, dataset shape, training
budget, seed), the evaluation size/batching, the ADC configuration
(including a ``uniform_calibrated`` spec's capture parameters), the noise
scenario models/seed, trial counts, calibration knobs, distribution capture
parameters, resolved power-model constants — or the salt itself.  What can
*never* invalidate a result: labels and other reporting metadata, or fields
the kind does not consume (a calibration job's engine, a uniform spec's TRQ
knobs).  The salt bumps whenever the semantics of stored results change — a
new package version, a result-schema revision — so stale artifacts are
never served across incompatible code; CI keys its ``actions/cache`` of the
store on the same salt.

Artifacts are a JSON document (``<key>.json``: the job spec, the salt, and
the aggregate row) plus an optional NPZ sibling (``<key>.npz``) for exact
float arrays — the clean reference's logits and the Fig. 3 bit-line samples
travel this way so restored objects are bit-identical to the originals.
Writes are atomic (temp file + ``os.replace``), so a sweep killed mid-write
never leaves a truncated artifact for ``--resume`` to trip over.

**Failures.**  A job that raises leaves *no* artifact (the store only ever
sees completed results); instead the runner records the exception and its
traceback in a :class:`FailureLog` persisted next to the artifacts
(``<store>/failures/<key>.json``).  ``python -m repro.experiments show``
surfaces logged failures, and a later successful run of the same key clears
its entry.
"""

from __future__ import annotations

import datetime
import json
import os
import traceback as traceback_module
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

import repro
from repro.experiments.spec import JobSpec
from repro.utils.config import stable_digest

#: Bump when the stored result schema (payload layout, row fields) changes.
#: v2: figure-pipeline kinds (distribution/power, datapaths, calibrated
#: uniform ADCs) and per-layer data in calibration payloads.
RESULT_SCHEMA_VERSION = 2


def code_version_salt() -> str:
    """The salt folded into every job address (and the CI cache key)."""
    return f"{repro.__version__}/schema-v{RESULT_SCHEMA_VERSION}"


def job_key(job: JobSpec, salt: Optional[str] = None) -> str:
    """Stable content address of one fully-resolved job."""
    return stable_digest(
        {"salt": salt if salt is not None else code_version_salt(),
         "job": job.resolved()},
        length=0,  # full 64-hex digest
    )


class ResultStore:
    """JSON/NPZ artifacts under one root directory, addressed by job key."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def has(self, key: str) -> bool:
        return self.json_path(key).exists()

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    def save(
        self,
        key: str,
        payload: Dict[str, object],
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> Path:
        """Atomically persist one job's payload (and optional exact arrays).

        The NPZ sibling is written first so a reader that sees the JSON
        document (the completion marker) always finds its arrays.
        """
        if arrays:
            self._atomic_write(
                self.npz_path(key),
                lambda handle: np.savez_compressed(handle, **arrays),
            )
        path = self.json_path(key)
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        self._atomic_write(path, lambda handle: handle.write(text.encode("utf-8")))
        return path

    def load(self, key: str) -> Dict[str, object]:
        return json.loads(self.json_path(key).read_text())

    def load_arrays(self, key: str) -> Dict[str, np.ndarray]:
        path = self.npz_path(key)
        if not path.exists():
            return {}
        with np.load(path) as data:
            return {name: data[name] for name in data.files}

    def delete(self, key: str) -> None:
        for path in (self.json_path(key), self.npz_path(key), self.meta_path(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ #
    def meta_path(self, key: str) -> Path:
        return self.root / "meta" / f"{key}.json"

    def save_meta(self, key: str, meta: Dict[str, object]) -> Path:
        """Atomically persist a job's *non-hashed* execution metadata.

        Meta sidecars live under ``<store>/meta/`` — outside the artifact
        namespace — so they never participate in content addressing and
        never perturb the byte-identity of the ``<key>.json`` payloads
        (serial/process/sharded runs compare store roots byte-for-byte).
        Recording how a result was produced (``duration_s``, ``worker``)
        must not change what was produced.
        """
        path = self.meta_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(meta, indent=2, sort_keys=True)
        self._atomic_write(path, lambda handle: handle.write(text.encode("utf-8")))
        return path

    def load_meta(self, key: str) -> Dict[str, object]:
        """The key's execution metadata (``{}`` when none was recorded)."""
        path = self.meta_path(key)
        if not path.exists():
            return {}
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            return {}

    # ------------------------------------------------------------------ #
    def _atomic_write(self, path: Path, writer) -> None:
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                writer(handle)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # writer raised before the replace
                tmp.unlink()


class FailureLog:
    """Per-job failure records persisted next to a store's artifacts.

    One JSON file per failed job key under ``<store>/failures/``, holding
    the job spec, the error and its full traceback.  Entries are written
    atomically (a crash while logging a crash never corrupts the log) and
    cleared when the same key later completes successfully, so the log
    always reflects the *current* set of unresolved failures.
    """

    def __init__(self, store: Union[ResultStore, str, Path]) -> None:
        root = store.root if isinstance(store, ResultStore) else Path(store)
        self.root = root / "failures"

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path(key).exists()

    def keys(self) -> Iterator[str]:
        if not self.root.exists():
            return iter(())
        return iter(sorted(path.stem for path in self.root.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    def record(
        self,
        key: str,
        job: JobSpec,
        error: BaseException,
        index: Optional[int] = None,
        cause_key: Optional[str] = None,
    ) -> Dict[str, object]:
        """Persist one failure; returns the logged entry.

        ``cause_key`` marks a *propagated* failure: the job did not run
        because the artifact at ``cause_key`` failed upstream.  Retrying
        the root heals the whole subtree (successful reruns clear entries).
        """
        entry = {
            "key": key,
            "index": index,
            "kind": job.kind,
            "label": job.label_dict,
            "spec": job.to_dict(),
            "error": f"{type(error).__name__}: {error}",
            "traceback": "".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            ),
            "logged_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        }
        if cause_key is not None:
            entry["cause_key"] = cause_key
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        text = json.dumps(entry, indent=2, sort_keys=True)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return entry

    def load(self, key: str) -> Dict[str, object]:
        return json.loads(self.path(key).read_text())

    def load_all(self) -> List[Dict[str, object]]:
        return [self.load(key) for key in self.keys()]

    def clear(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #
    def age_seconds(self, key: str, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the entry was logged (``None`` if unparsable).

        ``now`` is a UNIX timestamp override for deterministic tests.
        """
        try:
            logged_at = datetime.datetime.fromisoformat(
                str(self.load(key).get("logged_at"))
            )
        except (OSError, ValueError, json.JSONDecodeError):
            return None
        if now is None:
            now = datetime.datetime.now(datetime.timezone.utc).timestamp()
        return now - logged_at.timestamp()

    def expire(
        self,
        max_age_seconds: float,
        now: Optional[float] = None,
        keys: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Drop entries older than ``max_age_seconds``; returns their keys.

        ``keys`` restricts the expiry to those entries (the CLI passes the
        shown sweep's artifact keys so one sweep's cleanup cannot destroy
        another's tracebacks in a shared store); ``None`` sweeps the whole
        log.  Entries whose timestamp cannot be parsed are left alone (they
        still describe an unresolved failure, just with a damaged clock).
        """
        candidates = list(self.keys()) if keys is None else [
            key for key in keys if self.has(key)
        ]
        dropped: List[str] = []
        for key in candidates:
            age = self.age_seconds(key, now=now)
            if age is not None and age > max_age_seconds:
                self.clear(key)
                dropped.append(key)
        return dropped
