"""Content-addressed result store (and its failure log).

**What addresses a result.**  Every atomic job's address is the SHA-256 of
its canonical resolved spec (:meth:`repro.experiments.spec.JobSpec.resolved`)
plus the *code-version salt*.  A stored result is therefore invalidated —
i.e. a fresh address is computed and the old artifact is simply never
looked up again — by editing **any input the job kind consumes**: the
workload fingerprint (model preset structure, dataset shape, training
budget, seed), the evaluation size/batching, the ADC configuration
(including a ``uniform_calibrated`` spec's capture parameters), the noise
scenario models/seed, trial counts, calibration knobs, distribution capture
parameters, resolved power-model constants — or the salt itself.  What can
*never* invalidate a result: labels and other reporting metadata, or fields
the kind does not consume (a calibration job's engine, a uniform spec's TRQ
knobs).  The salt bumps whenever the semantics of stored results change — a
new package version, a result-schema revision — so stale artifacts are
never served across incompatible code; CI keys its ``actions/cache`` of the
store on the same salt.

Artifacts are a JSON document (``<key>.json``: the job spec, the salt, and
the aggregate row) plus an optional NPZ sibling (``<key>.npz``) for exact
float arrays — the clean reference's logits and the Fig. 3 bit-line samples
travel this way so restored objects are bit-identical to the originals.
Writes are atomic (temp file + ``os.replace``), so a sweep killed mid-write
never leaves a truncated artifact for ``--resume`` to trip over.

**Concurrent writers.**  Multiple *uncoordinated* processes may write one
store: every commit (artifact pair, ``meta/`` sidecar, failure entry,
force-delete) happens under an advisory ``fcntl`` write lock on
``<store>/.lock`` (:class:`StoreLock`).  The lock scopes the *commit*, not
the computation — temp files are staged outside it, so writers only
serialise for the instant of the rename.  Because artifacts are
content-addressed, two writers racing on one key stage **identical
bytes**; the commit protocol keeps the first committed copy and discards
the loser's staging (last-writer-wins would be equally correct — the
winner's identity is unobservable).  The NPZ sibling and its JSON
completion marker commit under a single lock hold, so no reader ever
observes a JSON document whose arrays are missing, and ``delete`` takes
the same lock so a force-delete cannot interleave with a commit and leave
a half-deleted key.  ``fcntl`` locks die with their process (including
``SIGKILL``), so a crashed writer never wedges the store — at worst it
leaves a stale ``.*.tmp-<pid>-*`` staging file, swept by
:meth:`ResultStore.sweep_stale_tmps` once the owning pid is gone.  On
platforms without ``fcntl`` the lock degrades to a no-op and the store
keeps the historical single-coordinator contract.

**Failures.**  A job that raises leaves *no* artifact (the store only ever
sees completed results); instead the runner records the exception and its
traceback in a :class:`FailureLog` persisted next to the artifacts
(``<store>/failures/<key>.json``).  ``python -m repro.experiments show``
surfaces logged failures, and a later successful run of the same key clears
its entry.
"""

from __future__ import annotations

import contextlib
import datetime
import itertools
import json
import os
import traceback as traceback_module
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

try:  # POSIX advisory locking; degrades to a no-op elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import repro
from repro.experiments.spec import JobSpec
from repro.utils.config import stable_digest

#: Bump when the stored result schema (payload layout, row fields) changes.
#: v2: figure-pipeline kinds (distribution/power, datapaths, calibrated
#: uniform ADCs) and per-layer data in calibration payloads.
RESULT_SCHEMA_VERSION = 2


def code_version_salt() -> str:
    """The salt folded into every job address (and the CI cache key)."""
    return f"{repro.__version__}/schema-v{RESULT_SCHEMA_VERSION}"


def job_key(job: JobSpec, salt: Optional[str] = None) -> str:
    """Stable content address of one fully-resolved job."""
    return stable_digest(
        {"salt": salt if salt is not None else code_version_salt(),
         "job": job.resolved()},
        length=0,  # full 64-hex digest
    )


#: Name of the advisory lock file at a store's root.
LOCK_FILENAME = ".lock"

#: Distinguishes staged temp files from concurrent writers in one process
#: (threads, nested stores); the pid in the name distinguishes processes.
_TMP_COUNTER = itertools.count()


class StoreLock:
    """Advisory cross-process write lock over one store root.

    A thin context manager around ``fcntl.flock(LOCK_EX)`` on
    ``<root>/.lock``.  Each acquisition opens its own file descriptor, so
    the lock is safe to take from multiple threads of one process as well
    as from unrelated processes; the kernel releases it when the holder's
    descriptor closes — including on ``SIGKILL`` — so a dead writer can
    never wedge the store.  Readers take no lock: artifact commits are
    atomic renames, so a reader either sees a complete artifact or none.

    On platforms without ``fcntl`` (:attr:`available` is ``False``)
    :meth:`held` yields without locking and the store falls back to the
    historical single-coordinating-process contract.
    """

    def __init__(self, root: Union[str, Path], name: str = LOCK_FILENAME) -> None:
        self.path = Path(root) / name

    @property
    def available(self) -> bool:
        """Whether real cross-process locking is in effect."""
        return fcntl is not None

    @contextlib.contextmanager
    def held(self) -> Iterator[bool]:
        """Hold the exclusive lock for the duration of the ``with`` body.

        Yields ``True`` when the lock is really held, ``False`` on
        platforms where locking is unavailable.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield False
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield True
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def _stage_tmp(path: Path, writer) -> Path:
    """Write ``path``'s future content to a uniquely-named sibling temp file.

    The name encodes the writing pid (for :meth:`sweep_stale_tmps`) plus a
    process-local counter (so threads never collide), and starts with a dot
    so no artifact glob ever matches it.
    """
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}")
    try:
        with open(tmp, "wb") as handle:
            writer(handle)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return tmp


def _tmp_owner_pid(path: Path) -> Optional[int]:
    """The pid encoded in a staged temp file's name (``None`` if foreign)."""
    try:
        return int(path.name.rsplit(".tmp-", 1)[1].split("-")[0])
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


class ResultStore:
    """JSON/NPZ artifacts under one root directory, addressed by job key.

    Safe for concurrent cross-process writers: see the module docstring's
    *Concurrent writers* contract and :class:`StoreLock`.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lock = StoreLock(self.root)

    # ------------------------------------------------------------------ #
    def json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def has(self, key: str) -> bool:
        return self.json_path(key).exists()

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    def save(
        self,
        key: str,
        payload: Dict[str, object],
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> Path:
        """Atomically persist one job's payload (and optional exact arrays).

        The NPZ sibling commits first so a reader that sees the JSON
        document (the completion marker) always finds its arrays; both
        commits happen under **one** hold of the store's write lock, so a
        concurrent writer or force-delete can never interleave between
        them.  When another writer committed this key while we were
        staging, the staged copies are discarded: content addressing
        guarantees the committed bytes are identical to ours, so keeping
        the first commit and keeping the last are the same store.
        """
        path = self.json_path(key)
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        staged: List[tuple] = []
        try:
            if arrays:
                staged.append((
                    _stage_tmp(
                        self.npz_path(key),
                        lambda handle: np.savez_compressed(handle, **arrays),
                    ),
                    self.npz_path(key),
                ))
            staged.append((
                _stage_tmp(path, lambda handle: handle.write(text.encode("utf-8"))),
                path,
            ))
            with self.lock.held():
                if not self.has(key):
                    for tmp, target in staged:
                        self._commit(tmp, target)
                    staged = []
        finally:
            for tmp, _ in staged:  # writer raised, or we lost the race
                tmp.unlink(missing_ok=True)
        return path

    def load(self, key: str) -> Dict[str, object]:
        return json.loads(self.json_path(key).read_text())

    def load_arrays(self, key: str) -> Dict[str, np.ndarray]:
        path = self.npz_path(key)
        if not path.exists():
            return {}
        with np.load(path) as data:
            return {name: data[name] for name in data.files}

    def delete(self, key: str) -> None:
        """Remove one key's artifacts (JSON marker first, under the lock).

        Taking the write lock makes a concurrent ``--force`` delete and a
        racing commit serialise: either the commit lands first and the
        delete removes the whole pair, or the delete wins and the commit
        re-creates the pair — never a half-deleted key (a JSON document
        whose NPZ sibling is gone).
        """
        with self.lock.held():
            for path in (self.json_path(key), self.npz_path(key), self.meta_path(key)):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    def meta_path(self, key: str) -> Path:
        return self.root / "meta" / f"{key}.json"

    def save_meta(self, key: str, meta: Dict[str, object]) -> Path:
        """Atomically persist a job's *non-hashed* execution metadata.

        Meta sidecars live under ``<store>/meta/`` — outside the artifact
        namespace — so they never participate in content addressing and
        never perturb the byte-identity of the ``<key>.json`` payloads
        (serial/process/sharded runs compare store roots byte-for-byte).
        Recording how a result was produced (``duration_s``, ``worker``)
        must not change what was produced.
        """
        path = self.meta_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(meta, indent=2, sort_keys=True)
        self._atomic_write(path, lambda handle: handle.write(text.encode("utf-8")))
        return path

    def load_meta(self, key: str) -> Dict[str, object]:
        """The key's execution metadata (``{}`` when none was recorded)."""
        path = self.meta_path(key)
        if not path.exists():
            return {}
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            return {}

    # ------------------------------------------------------------------ #
    def merge_from(
        self,
        other: "ResultStore",
        keys: Optional[Iterable[str]] = None,
        include_meta: bool = True,
    ) -> List[str]:
        """Copy artifacts from ``other`` into this store; returns new keys.

        The remote-execution return path: a worker computes into its own
        private store, then the coordinator folds the worker's artifacts
        back into the main store.  Each key's NPZ+JSON pair commits under
        one hold of *this* store's lock (same protocol as :meth:`save`),
        and keys already present here are skipped — by content addressing
        the bytes would be identical, so the skip is unobservable.  Meta
        sidecars ride along by default (last-writer-wins; they are
        reporting metadata, not addressed content).
        """
        merged: List[str] = []
        for key in list(other.keys()) if keys is None else list(keys):
            if not other.has(key) or self.has(key):
                continue
            staged: List[tuple] = []
            try:
                src_npz = other.npz_path(key)
                if src_npz.exists():
                    staged.append((
                        _stage_tmp(
                            self.npz_path(key),
                            lambda handle, _p=src_npz: handle.write(_p.read_bytes()),
                        ),
                        self.npz_path(key),
                    ))
                src_json = other.json_path(key)
                staged.append((
                    _stage_tmp(
                        self.json_path(key),
                        lambda handle, _p=src_json: handle.write(_p.read_bytes()),
                    ),
                    self.json_path(key),
                ))
                with self.lock.held():
                    if not self.has(key):  # re-check: racing merger/writer
                        for tmp, target in staged:
                            self._commit(tmp, target)
                        staged = []
                        merged.append(key)
            finally:
                for tmp, _ in staged:
                    tmp.unlink(missing_ok=True)
            if include_meta:
                meta = other.load_meta(key)
                if meta:
                    self.save_meta(key, meta)
        return merged

    def sweep_stale_tmps(self) -> List[Path]:
        """Remove staging files abandoned by dead writers; returns them.

        A writer killed mid-stage (e.g. ``SIGKILL`` before its commit)
        leaves a ``.*.tmp-<pid>-*`` file behind.  Those never corrupt the
        store — commits are renames of *complete* temp files — but they
        accumulate, so sweeps call this at startup.  Only files whose
        owning pid is gone are removed; a live writer's staging is left
        alone.  Runs under the lock so a sweep cannot race a commit.
        """
        removed: List[Path] = []
        with self.lock.held():
            for directory in (self.root, self.root / "meta", self.root / "failures"):
                if not directory.is_dir():
                    continue
                for tmp in directory.glob(".*.tmp-*"):
                    pid = _tmp_owner_pid(tmp)
                    if pid is not None and pid != os.getpid() and not _pid_alive(pid):
                        tmp.unlink(missing_ok=True)
                        removed.append(tmp)
        return removed

    # ------------------------------------------------------------------ #
    def _commit(self, tmp: Path, path: Path) -> None:
        """Publish one staged temp file (call with the lock held)."""
        os.replace(tmp, path)

    def _atomic_write(self, path: Path, writer) -> None:
        tmp = _stage_tmp(path, writer)
        with self.lock.held():
            self._commit(tmp, path)


class FailureLog:
    """Per-job failure records persisted next to a store's artifacts.

    One JSON file per failed job key under ``<store>/failures/``, holding
    the job spec, the error and its full traceback.  Entries are written
    atomically (a crash while logging a crash never corrupts the log) and
    cleared when the same key later completes successfully, so the log
    always reflects the *current* set of unresolved failures.  Record and
    clear both take the owning store's write lock (the same ``.lock`` the
    artifact commits use), so uncoordinated workers logging failures
    serialise with commits and with each other.
    """

    def __init__(self, store: Union[ResultStore, str, Path]) -> None:
        root = store.root if isinstance(store, ResultStore) else Path(store)
        self.root = root / "failures"
        self.lock = (
            store.lock if isinstance(store, ResultStore) else StoreLock(root)
        )

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path(key).exists()

    def keys(self) -> Iterator[str]:
        if not self.root.exists():
            return iter(())
        return iter(sorted(path.stem for path in self.root.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    def record(
        self,
        key: str,
        job: JobSpec,
        error: BaseException,
        index: Optional[int] = None,
        cause_key: Optional[str] = None,
    ) -> Dict[str, object]:
        """Persist one failure; returns the logged entry.

        ``cause_key`` marks a *propagated* failure: the job did not run
        because the artifact at ``cause_key`` failed upstream.  Retrying
        the root heals the whole subtree (successful reruns clear entries).
        """
        entry = {
            "key": key,
            "index": index,
            "kind": job.kind,
            "label": job.label_dict,
            "spec": job.to_dict(),
            "error": f"{type(error).__name__}: {error}",
            "traceback": "".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            ),
            "logged_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        }
        if cause_key is not None:
            entry["cause_key"] = cause_key
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        text = json.dumps(entry, indent=2, sort_keys=True)
        tmp = _stage_tmp(path, lambda handle: handle.write(text.encode("utf-8")))
        try:
            with self.lock.held():
                os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return entry

    def load(self, key: str) -> Dict[str, object]:
        return json.loads(self.path(key).read_text())

    def load_all(self) -> List[Dict[str, object]]:
        return [self.load(key) for key in self.keys()]

    def clear(self, key: str) -> None:
        with self.lock.held():
            self.path(key).unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    def age_seconds(self, key: str, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the entry was logged (``None`` if unparsable).

        ``now`` is a UNIX timestamp override for deterministic tests.
        """
        try:
            logged_at = datetime.datetime.fromisoformat(
                str(self.load(key).get("logged_at"))
            )
        except (OSError, ValueError, json.JSONDecodeError):
            return None
        if now is None:
            now = datetime.datetime.now(datetime.timezone.utc).timestamp()
        return now - logged_at.timestamp()

    def expire(
        self,
        max_age_seconds: float,
        now: Optional[float] = None,
        keys: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Drop entries older than ``max_age_seconds``; returns their keys.

        ``keys`` restricts the expiry to those entries (the CLI passes the
        shown sweep's artifact keys so one sweep's cleanup cannot destroy
        another's tracebacks in a shared store); ``None`` sweeps the whole
        log.  Entries whose timestamp cannot be parsed are left alone (they
        still describe an unresolved failure, just with a damaged clock).
        """
        candidates = list(self.keys()) if keys is None else [
            key for key in keys if self.has(key)
        ]
        dropped: List[str] = []
        for key in candidates:
            age = self.age_seconds(key, now=now)
            if age is not None and age > max_age_seconds:
                self.clear(key)
                dropped.append(key)
        return dropped
