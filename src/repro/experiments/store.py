"""Content-addressed result store.

Every atomic job's address is the SHA-256 of its canonical resolved spec
(:meth:`repro.experiments.spec.JobSpec.resolved`) plus the *code-version
salt*.  The salt bumps whenever the semantics of stored results change —
a new package version, a result-schema revision — so stale artifacts are
never served across incompatible code; CI keys its ``actions/cache`` of the
store on the same salt.

Artifacts are a JSON document (``<key>.json``: the job spec, the salt, and
the aggregate row) plus an optional NPZ sibling (``<key>.npz``) for exact
float arrays — the clean reference's logits travel this way so a restored
:class:`~repro.sim.stats.SimulationResult` is bit-identical to the original.
Writes are atomic (temp file + ``os.replace``), so a sweep killed mid-write
never leaves a truncated artifact for ``--resume`` to trip over.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

import numpy as np

import repro
from repro.experiments.spec import JobSpec
from repro.utils.config import stable_digest

#: Bump when the stored result schema (payload layout, row fields) changes.
RESULT_SCHEMA_VERSION = 1


def code_version_salt() -> str:
    """The salt folded into every job address (and the CI cache key)."""
    return f"{repro.__version__}/schema-v{RESULT_SCHEMA_VERSION}"


def job_key(job: JobSpec, salt: Optional[str] = None) -> str:
    """Stable content address of one fully-resolved job."""
    return stable_digest(
        {"salt": salt if salt is not None else code_version_salt(),
         "job": job.resolved()},
        length=0,  # full 64-hex digest
    )


class ResultStore:
    """JSON/NPZ artifacts under one root directory, addressed by job key."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def has(self, key: str) -> bool:
        return self.json_path(key).exists()

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    def save(
        self,
        key: str,
        payload: Dict[str, object],
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> Path:
        """Atomically persist one job's payload (and optional exact arrays).

        The NPZ sibling is written first so a reader that sees the JSON
        document (the completion marker) always finds its arrays.
        """
        if arrays:
            self._atomic_write(
                self.npz_path(key),
                lambda handle: np.savez_compressed(handle, **arrays),
            )
        path = self.json_path(key)
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        self._atomic_write(path, lambda handle: handle.write(text.encode("utf-8")))
        return path

    def load(self, key: str) -> Dict[str, object]:
        return json.loads(self.json_path(key).read_text())

    def load_arrays(self, key: str) -> Dict[str, np.ndarray]:
        path = self.npz_path(key)
        if not path.exists():
            return {}
        with np.load(path) as data:
            return {name: data[name] for name in data.files}

    def delete(self, key: str) -> None:
        for path in (self.json_path(key), self.npz_path(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ #
    def _atomic_write(self, path: Path, writer) -> None:
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                writer(handle)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # writer raised before the replace
                tmp.unlink()
