"""Unified experiment-orchestration CLI.

::

    python -m repro.experiments list
    python -m repro.experiments show robustness-noise --smoke
    python -m repro.experiments run robustness-noise --smoke --jobs 2
    python -m repro.experiments run path/to/sweep.json --force

``run`` accepts either a built-in preset name (``list`` shows them) or a
path to a JSON file holding an :class:`~repro.experiments.spec.ExperimentSpec`
(or bare ``SweepSpec``) dict.  Completed jobs land in the content-addressed
store and are skipped on the next invocation; an interrupted sweep (Ctrl-C,
crash, CI timeout) therefore resumes where it left off — ``--resume`` is the
default and spelled out only for scripts that want to be explicit.  Use
``--force`` to discard the sweep's cached artifacts and recompute.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.experiments.presets import available_presets, build_preset
from repro.experiments.runner import run_sweep
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore, code_version_salt, job_key

DEFAULT_STORE = Path("benchmarks") / "results" / "store"
DEFAULT_CACHE = Path("benchmarks") / ".cache"
DEFAULT_OUT_DIR = Path("benchmarks") / "results"


def load_experiment(spec: str, smoke: bool = False) -> ExperimentSpec:
    """Resolve a CLI spec argument: preset name or JSON file path."""
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        experiment = ExperimentSpec.from_dict(json.loads(path.read_text()))
        if smoke:
            raise SystemExit(
                "--smoke only applies to built-in presets; shrink the JSON "
                "spec itself for a smoke variant"
            )
        return experiment
    return build_preset(spec, smoke=smoke)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative, cached, parallel experiment sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in experiment presets")

    show = sub.add_parser("show", help="print a sweep's expanded jobs and keys")
    show.add_argument("spec", help="preset name or JSON spec path")
    show.add_argument("--smoke", action="store_true", help="smoke variant")

    run = sub.add_parser("run", help="execute a sweep against the result store")
    run.add_argument("spec", help="preset name or JSON spec path")
    run.add_argument("--smoke", action="store_true",
                     help="seconds-fast smoke variant of a preset")
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes (default 1: in-process)")
    run.add_argument("--resume", action="store_true", default=True,
                     help="skip jobs already in the store (default)")
    run.add_argument("--force", action="store_true",
                     help="drop the sweep's cached artifacts and recompute")
    run.add_argument("--store", type=Path, default=DEFAULT_STORE,
                     help=f"result store directory (default {DEFAULT_STORE})")
    run.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE,
                     help=f"trained-weight cache (default {DEFAULT_CACHE})")
    run.add_argument("--out", type=Path, default=None,
                     help="aggregate record path "
                          f"(default {DEFAULT_OUT_DIR}/<experiment>.json)")
    return parser


def _cmd_list() -> int:
    print(f"built-in experiment presets (salt {code_version_salt()}):")
    for name in available_presets():
        experiment = build_preset(name, smoke=True)
        jobs = len(experiment.sweep.expand())
        print(f"  {name:28s} {experiment.description}  [smoke: {jobs} jobs]")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    experiment = load_experiment(args.spec, smoke=args.smoke)
    jobs = experiment.sweep.expand()
    print(f"[{experiment.experiment_id}] {experiment.description}")
    print(f"salt: {code_version_salt()}  jobs: {len(jobs)}")
    for index, job in enumerate(jobs):
        print(f"  {index:3d} {job_key(job)[:16]} {job.kind:12s} {job.label_dict}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = load_experiment(args.spec, smoke=args.smoke)
    sweep = experiment.sweep
    store = ResultStore(args.store)
    out = args.out
    if out is None:
        out = DEFAULT_OUT_DIR / f"{experiment.experiment_id.replace('/', '_')}.json"
    try:
        run = run_sweep(
            sweep,
            store,
            jobs=args.jobs,
            force=args.force,
            weights_cache_dir=str(args.cache_dir),
            experiment=experiment,
            progress=print,
        )
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — completed jobs are cached under {store.root}; "
            "rerun the same command (--resume is the default) to continue",
            file=sys.stderr,
        )
        return 130
    print()
    print(run.record.to_table())
    run.record.save(out)
    print(
        f"\n{run.stats.total} jobs ({run.stats.cached} cached, "
        f"{run.stats.computed} computed) in {run.stats.elapsed_s:.1f}s -> {out}"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "show":
        return _cmd_show(args)
    return _cmd_run(args)
