"""Unified experiment-orchestration CLI.

::

    python -m repro.experiments list
    python -m repro.experiments show robustness-noise --smoke
    python -m repro.experiments run robustness-noise --smoke --jobs 2
    python -m repro.experiments run --preset fig6 --smoke --max-failures 1
    python -m repro.experiments run --preset fig6 --executor sharded --shards 4
    python -m repro.experiments run path/to/sweep.json --force

    # Multi-machine sharding: partition once, run anywhere, merge at the end.
    python -m repro.experiments shard emit --preset fig6 --shards 2 --dir shards/
    python -m repro.experiments shard run shards/fig6-shard0of2.json
    python -m repro.experiments shard run shards/fig6-shard1of2.json
    python -m repro.experiments shard merge shards/ --out fig6_sweep.json

    # Observability: live progress, recorded traces, perf history.
    python -m repro.experiments run --preset fig6 --smoke --progress
    python -m repro.experiments trace watch            # follow the newest run
    python -m repro.experiments trace summary --json
    python -m repro.experiments trace history
    python -m repro.experiments trace regress --baseline first

``run``/``show`` accept either a built-in preset name (``list`` shows them;
the ``--preset`` flag is an explicit spelling of the same thing) or a path
to a JSON file holding an :class:`~repro.experiments.spec.ExperimentSpec`
(or bare ``SweepSpec``) dict.  Completed jobs land in the content-addressed
store and are skipped on the next invocation; an interrupted sweep (Ctrl-C,
crash, CI timeout) therefore resumes where it left off — ``--resume`` is the
default and spelled out only for scripts that want to be explicit.  Use
``--force`` to discard the sweep's cached artifacts and recompute.

``--executor`` selects how pending jobs run: ``serial`` (in-process),
``process`` (a worker pool of ``--jobs`` processes), ``sharded``
(``--shards`` independent subprocesses per scheduler wave, driving the same
manifests as the ``shard`` subcommand) or ``remote`` (manifests dispatched
to ``--workers`` workers over a transport, each against a private synced
store merged back on return, with dropped-shard retry and straggler
re-dispatch — ``--force-redispatch`` forces a duplicate backup attempt per
shard).  Omitted, it keeps the historical default: a process pool iff
``--jobs`` > 1.

Failures: a job that raises is recorded (spec + traceback) in the store's
failure log and surfaced by ``show`` together with each entry's age;
``--max-failures N`` lets a sweep tolerate up to ``N`` failed jobs instead
of aborting on the first one (a failed job's dependents are marked
failed-with-cause and the whole subtree counts once).  Rerunning the sweep
retries failed jobs and clears healed log entries; ``show
--expire-failures SECONDS`` drops entries older than the given age.

``run`` on a ``fig*`` preset additionally renders the paper-style figure
tables (JSON + markdown + CSV, plus ASCII bar charts with ``--ascii``) from
the stored rows — the same reporting path the ``bench_fig*.py`` shims use.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import threading
from pathlib import Path
from typing import List, Optional, Union

from repro.experiments.executors import (
    EXECUTOR_NAMES,
    RemoteExecutor,
    load_shard_manifest,
    manifest_result_path,
    run_shard_manifest,
    write_shard_manifests,
)
from repro.experiments.presets import FIGURE_PRESETS, available_presets, build_preset
from repro.experiments.runner import (
    MaxFailuresExceeded,
    aggregate_sweep,
    run_sweep,
)
from repro.experiments.scheduler import expanded_artifacts
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.experiments.store import (
    FailureLog,
    ResultStore,
    code_version_salt,
    job_key,
)
from repro.telemetry import analysis as trace_analysis
from repro.telemetry import history as trace_history
from repro.telemetry import live as trace_live
from repro.telemetry.tracer import (
    latest_run,
    list_runs,
    load_run_manifest,
    new_run_id,
    run_directory,
    stream_paths,
)
from repro.utils.logging import set_verbosity, verbosity_to_level

DEFAULT_STORE = Path("benchmarks") / "results" / "store"
DEFAULT_CACHE = Path("benchmarks") / ".cache"
DEFAULT_OUT_DIR = Path("benchmarks") / "results"
DEFAULT_SHARD_DIR = Path("benchmarks") / "results" / "shards"
DEFAULT_HISTORY = trace_history.default_history_path(DEFAULT_OUT_DIR)


def load_experiment(spec: str, smoke: bool = False) -> ExperimentSpec:
    """Resolve a CLI spec argument: preset name or JSON file path."""
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        experiment = ExperimentSpec.from_dict(json.loads(path.read_text()))
        if smoke:
            raise SystemExit(
                "--smoke only applies to built-in presets; shrink the JSON "
                "spec itself for a smoke variant"
            )
        return experiment
    return build_preset(spec, smoke=smoke)


def _resolve_spec(args: argparse.Namespace) -> str:
    """One spec from the positional argument or ``--preset`` (exactly one)."""
    if args.spec is not None and args.preset is not None:
        raise SystemExit("pass either a positional spec or --preset, not both")
    spec = args.spec if args.spec is not None else args.preset
    if spec is None:
        raise SystemExit(
            "missing experiment: pass a preset name / JSON path, or --preset "
            f"NAME (available: {', '.join(available_presets())})"
        )
    return spec


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", nargs="?", default=None,
                        help="preset name or JSON spec path")
    parser.add_argument("--preset", default=None, metavar="NAME",
                        help="built-in preset name (alternative spelling of "
                             "the positional spec)")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast smoke variant of a preset")


def _add_verbosity_arguments(
    parser: argparse.ArgumentParser, subparser: bool = True
) -> None:
    """``-v/-vv/-q`` on a (sub)parser, wired to ``set_verbosity`` in main.

    The main parser carries the real defaults; subparsers use
    ``argparse.SUPPRESS`` so the flag works on either side of the
    subcommand (``-v run ...`` and ``run ... -v``) without the
    subparser's default clobbering a main-side flag.
    """
    default: object = argparse.SUPPRESS if subparser else 0
    parser.add_argument("-v", "--verbose", action="count", default=default,
                        help="library log verbosity: -v progress (INFO), "
                             "-vv per-job detail (DEBUG)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        default=argparse.SUPPRESS if subparser else False,
                        help="errors only")


def _add_trace_selection_arguments(parser: argparse.ArgumentParser) -> None:
    """How ``trace`` subcommands pick a run: newest, by id, or by path."""
    parser.add_argument("--store", type=Path, default=DEFAULT_STORE,
                        help="result store whose telemetry/ directory to "
                             f"read (default {DEFAULT_STORE})")
    parser.add_argument("--run", default=None, metavar="RUN_ID",
                        help="run id under <store>/telemetry/ (default: "
                             "the newest run)")
    parser.add_argument("--sweep", default=None, metavar="NAME",
                        help="restrict the default (newest-run) selection "
                             "to runs of this sweep")
    parser.add_argument("--dir", type=Path, default=None, metavar="DIR",
                        help="explicit trace run directory (overrides "
                             "--store/--run; what `shard run --trace-dir` "
                             "wrote)")


def _default_out_path(experiment_id: str) -> Path:
    """The canonical aggregate path of an experiment — shared by ``run``
    and ``shard merge`` so the two default outputs always coincide.

    Figure presets render their figure tables under the canonical
    ``fig*.json`` stems; the sweep aggregate gets a distinct ``_sweep``
    suffix so neither overwrites the other.
    """
    stem = experiment_id.replace("/", "_").replace("-", "_")
    suffix = "_sweep" if experiment_id in FIGURE_PRESETS else ""
    return DEFAULT_OUT_DIR / f"{stem}{suffix}.json"


def _format_age(seconds: Optional[float]) -> str:
    if seconds is None:
        return "age unknown"
    seconds = max(0.0, seconds)
    if seconds < 120:
        return f"{seconds:.0f}s old"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m old"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h old"
    return f"{seconds / 86400:.1f}d old"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative, cached, parallel experiment sweeps.",
        epilog="See docs/experiments.md for the spec/store/runner model and "
               "docs/reproducing-figures.md for the paper-figure presets.",
    )
    _add_verbosity_arguments(parser, subparser=False)
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser(
        "list",
        help="list built-in experiment presets",
        epilog="Preset factories live in repro/experiments/presets.py; each "
               "has a --smoke variant sized for CI.",
    )
    _add_verbosity_arguments(listing)

    show = sub.add_parser(
        "show",
        help="print a sweep's expanded jobs, store status and failures",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Status per job: 'stored' (artifact present, will be served "
               "from cache), 'failed' (a logged failure; its traceback and "
               "age are printed below the job list), 'pending' (will compute "
               "on the next run).  Point --store at the store a run used to "
               "inspect that run's state.",
    )
    _add_spec_arguments(show)
    _add_verbosity_arguments(show)
    show.add_argument("--store", type=Path, default=DEFAULT_STORE,
                      help=f"result store to check against (default {DEFAULT_STORE})")
    show.add_argument("--expire-failures", type=float, default=None,
                      metavar="SECONDS",
                      help="drop THIS sweep's failure-log entries older "
                           "than SECONDS before listing (stale entries from "
                           "long-dead runs stop shadowing fresh state; "
                           "other sweeps' entries in a shared store are "
                           "untouched)")

    run = sub.add_parser(
        "run",
        help="execute a sweep against the result store",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Completed jobs are content-addressed in the store, so "
               "rerunning an identical sweep is a full cache hit and an "
               "interrupted one resumes byte-identically.  A fig* preset "
               "also renders its paper-style figure tables (JSON/markdown/"
               "CSV; add --ascii for terminal bar charts) into the output "
               "directory.",
    )
    _add_spec_arguments(run)
    _add_verbosity_arguments(run)
    run.add_argument("--trace", action="store_true",
                     help="record sweep telemetry (JSONL event streams) to "
                          "<store>/telemetry/<run id>/; inspect with the "
                          "'trace' subcommands")
    run.add_argument("--progress", action="store_true",
                     help="render live sweep progress (per-wave counts, "
                          "running-job ages, ETA) while the sweep executes; "
                          "implies --trace.  Uses ANSI redraw on a TTY and "
                          "plain snapshot lines otherwise (or with --ascii)")
    run.add_argument("--history", type=Path, default=None, metavar="PATH",
                     help="perf-history JSONL log a traced run appends its "
                          f"summary record to (default {DEFAULT_HISTORY}; "
                          "only written when tracing)")
    run.add_argument("--no-history", action="store_true",
                     help="skip the perf-history append even when tracing")
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes (default 1: in-process)")
    run.add_argument("--executor", choices=EXECUTOR_NAMES, default=None,
                     help="execution strategy (default: process pool iff "
                          "--jobs > 1, else serial)")
    run.add_argument("--shards", type=int, default=2, metavar="N",
                     help="shard count of --executor sharded (default 2)")
    run.add_argument("--workers", type=int, default=2, metavar="N",
                     help="dispatch fan-out of --executor remote (default 2)")
    run.add_argument("--trial-batch", type=int, default=1, metavar="N",
                     help="Monte Carlo trials per batched kernel invocation "
                          "(default 1: the per-trial loop).  N > 1 also lets "
                          "the serial executor coalesce sibling per-seed MC "
                          "jobs of a wave into one batched execution.  "
                          "Results are byte-identical for every N (numpy "
                          "backend); this is purely a wall-clock knob")
    run.add_argument("--backend", default=None, metavar="NAME",
                     help="array backend for this run (default: numpy, or "
                          "the REPRO_BACKEND environment variable).  The "
                          "active backend is recorded in telemetry, meta "
                          "sidecars and the perf history; 'trace regress' "
                          "refuses to compare records across backends")
    run.add_argument("--force-redispatch", action="store_true",
                     help="--executor remote: dispatch a duplicate backup "
                          "attempt of every shard immediately (exercises "
                          "the straggler re-dispatch path; results are "
                          "byte-identical by construction)")
    run.add_argument("--resume", action="store_true", default=True,
                     help="skip jobs already in the store (default)")
    run.add_argument("--force", action="store_true",
                     help="drop the sweep's cached artifacts (shared "
                          "siblings included) and recompute")
    run.add_argument("--max-failures", type=int, default=None, metavar="N",
                     help="tolerate up to N failed jobs (logged to the "
                          "store's failure log; a failure's dependents are "
                          "marked failed-with-cause and count once) instead "
                          "of aborting on the first failure")
    run.add_argument("--inject-failure", type=int, action="append", default=None,
                     metavar="INDEX",
                     help="force the job at INDEX to fail (testing aid for "
                          "the failure path; repeatable)")
    run.add_argument("--ascii", action="store_true",
                     help="also render figure tables as ASCII bar charts "
                          "(<figure>.txt; fig* presets only)")
    run.add_argument("--store", type=Path, default=DEFAULT_STORE,
                     help=f"result store directory (default {DEFAULT_STORE})")
    run.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE,
                     help=f"trained-weight cache (default {DEFAULT_CACHE})")
    run.add_argument("--out", type=Path, default=None,
                     help="aggregate record path "
                          f"(default {DEFAULT_OUT_DIR}/<experiment>.json)")

    shard = sub.add_parser(
        "shard",
        help="partition a sweep into shard manifests, run one, merge results",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="The multi-machine flow: 'emit' writes N self-contained JSON "
               "manifests (job-key lists); each 'run' executes one manifest "
               "against the shared content-addressed store (independent "
               "processes or machines, any order, restartable); 'merge' "
               "re-expands the sweep, checks completeness and assembles the "
               "aggregate — byte-identical to a single-process run, because "
               "rows are read back from the same artifacts.",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    emit = shard_sub.add_parser(
        "emit", help="write N shard manifests for a sweep")
    _add_spec_arguments(emit)
    _add_verbosity_arguments(emit)
    emit.add_argument("--shards", type=int, default=2, metavar="N",
                      help="number of manifests to emit (default 2)")
    emit.add_argument("--dir", type=Path, default=DEFAULT_SHARD_DIR,
                      help=f"manifest directory (default {DEFAULT_SHARD_DIR})")
    emit.add_argument("--store", type=Path, default=DEFAULT_STORE,
                      help="store the next-step hint commands point at "
                           f"(default {DEFAULT_STORE})")

    shard_run = shard_sub.add_parser(
        "run", help="execute one shard manifest against the store")
    _add_verbosity_arguments(shard_run)
    shard_run.add_argument("manifest", type=Path, help="shard manifest path")
    shard_run.add_argument("--store", type=Path, default=DEFAULT_STORE,
                           help=f"result store directory (default {DEFAULT_STORE})")
    shard_run.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE,
                           help=f"trained-weight cache (default {DEFAULT_CACHE})")
    shard_run.add_argument("--result", type=Path, default=None,
                           help="per-job status output "
                                "(default <manifest stem>.result.json)")
    shard_run.add_argument("--trace-dir", type=Path, default=None,
                           metavar="DIR",
                           help="append this shard's telemetry stream to the "
                                "trace run directory DIR (shards of one run "
                                "share a DIR; inspect with 'trace ... --dir')")

    merge = shard_sub.add_parser(
        "merge", help="merge shard results into the sweep aggregate")
    _add_verbosity_arguments(merge)
    merge.add_argument("manifests", type=Path, nargs="+",
                       help="shard manifest paths, or a directory of them")
    merge.add_argument("--store", type=Path, default=DEFAULT_STORE,
                       help=f"result store directory (default {DEFAULT_STORE})")
    merge.add_argument("--out", type=Path, default=None,
                       help="aggregate record path "
                            f"(default {DEFAULT_OUT_DIR}/<experiment>.json)")

    trace = sub.add_parser(
        "trace",
        help="inspect recorded sweep telemetry",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Telemetry runs live under <store>/telemetry/<run id>/ — one "
               "JSONL event stream per participating process, written by "
               "'run --trace' (or 'shard run --trace-dir').  'list' "
               "enumerates runs, 'show' prints the merged time-ordered "
               "event stream, 'summary' the reconstructed timeline "
               "(utilization, stragglers, cache efficiency), "
               "'critical-path' the dependency chain that bounded the "
               "sweep's wall-clock, 'watch' follows a run live, and "
               "'history'/'regress' read the durable perf-history log.  "
               "See docs/observability.md.",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_list = trace_sub.add_parser(
        "list", help="list a store's recorded trace runs")
    _add_verbosity_arguments(trace_list)
    trace_list.add_argument("--store", type=Path, default=DEFAULT_STORE,
                            help="result store whose telemetry/ directory to "
                                 f"list (default {DEFAULT_STORE})")

    trace_show = trace_sub.add_parser(
        "show", help="print a run's merged JSONL event stream")
    _add_verbosity_arguments(trace_show)
    _add_trace_selection_arguments(trace_show)
    trace_show.add_argument("--event", action="append", default=None,
                            metavar="NAME",
                            help="only events of this name (repeatable)")
    trace_show.add_argument("--limit", type=int, default=None, metavar="N",
                            help="print only the first N matching events")

    trace_summary = trace_sub.add_parser(
        "summary",
        help="summarise a run: jobs, waves, utilization, stragglers, cache")
    _add_verbosity_arguments(trace_summary)
    _add_trace_selection_arguments(trace_summary)
    trace_summary.add_argument("--straggler-factor", type=float, default=2.0,
                               metavar="F",
                               help="flag a worker when its per-wave busy "
                                    "time exceeds F x the wave median "
                                    "(default 2.0)")
    trace_summary.add_argument("--straggler-min-gap", type=float, default=5.0,
                               metavar="SECONDS",
                               help="...and the absolute gap exceeds SECONDS "
                                    "(default 5.0; keeps seconds-fast smoke "
                                    "runs quiet)")
    trace_summary.add_argument("--json", action="store_true",
                               help="print the summary as one JSON object "
                                    "(the same schema history.jsonl records "
                                    "are built from) instead of text")

    trace_cp = trace_sub.add_parser(
        "critical-path",
        help="print the executed dependency chain that bounded wall-clock")
    _add_verbosity_arguments(trace_cp)
    _add_trace_selection_arguments(trace_cp)
    trace_cp.add_argument("--json", action="store_true",
                          help="print the chain as one JSON object instead "
                               "of text")

    trace_watch = trace_sub.add_parser(
        "watch",
        help="follow a (possibly still running) trace run live",
        epilog="Tails the run's event streams as they grow — torn tails and "
               "streams appearing mid-run are fine; no locks are taken — and "
               "redraws a progress snapshot until the sweep records a "
               "terminal event (sweep_finish/sweep_abort).  Exits 0 on "
               "completion, 1 when --timeout expires first.",
    )
    _add_verbosity_arguments(trace_watch)
    _add_trace_selection_arguments(trace_watch)
    trace_watch.add_argument("--interval", type=float, default=0.5,
                             metavar="SECONDS",
                             help="polling interval (default 0.5)")
    trace_watch.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="give up after SECONDS without a terminal "
                                  "event (default: wait indefinitely)")
    trace_watch.add_argument("--ascii", action="store_true",
                             help="plain snapshot lines instead of ANSI "
                                  "redraw (automatic off a TTY)")
    trace_watch.add_argument("--json", action="store_true",
                             help="print only the final state snapshot as "
                                  "one JSON object")

    trace_hist = trace_sub.add_parser(
        "history",
        help="list the perf-history log's sweep trajectories")
    _add_verbosity_arguments(trace_hist)
    trace_hist.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                            metavar="PATH",
                            help=f"history JSONL path (default {DEFAULT_HISTORY})")
    trace_hist.add_argument("--sweep", default=None, metavar="NAME",
                            help="only records of this sweep")
    trace_hist.add_argument("--limit", type=int, default=None, metavar="N",
                            help="only the newest N records")
    trace_hist.add_argument("--json", action="store_true",
                            help="print the records as a JSON array")

    trace_regress = trace_sub.add_parser(
        "regress",
        help="compare the latest history record against a baseline",
        epilog="Two-gate thresholds (mirroring the straggler detector): a "
               "metric regresses only when it exceeds the baseline by the "
               "relative factor AND the absolute gap, so seconds-fast smoke "
               "runs never flag timing noise.  Exit codes: 0 no regression, "
               "5 regression found, 2 not enough history.",
    )
    _add_verbosity_arguments(trace_regress)
    trace_regress.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                               metavar="PATH",
                               help=f"history JSONL path (default {DEFAULT_HISTORY})")
    trace_regress.add_argument("--sweep", default=None, metavar="NAME",
                               help="only compare records of this sweep")
    trace_regress.add_argument("--baseline", default="first", metavar="WHICH",
                               help="baseline record: 'first' (default), an "
                                    "integer index into the record list "
                                    "(negatives from the end), or a run id")
    trace_regress.add_argument("--factor", type=float, default=1.5,
                               metavar="F",
                               help="relative gate for elapsed/critical-path "
                                    "(default 1.5)")
    trace_regress.add_argument("--min-gap", type=float, default=5.0,
                               metavar="SECONDS",
                               help="absolute gate for elapsed/critical-path "
                                    "(default 5.0)")
    trace_regress.add_argument("--rss-factor", type=float, default=1.5,
                               metavar="F",
                               help="relative gate for peak RSS (default 1.5)")
    trace_regress.add_argument("--rss-min-gap", type=float, default=262144.0,
                               metavar="KB",
                               help="absolute gate for peak RSS in KiB "
                                    "(default 262144 = 256 MiB)")
    return parser


def _cmd_list() -> int:
    print(f"built-in experiment presets (salt {code_version_salt()}):")
    for name in available_presets():
        experiment = build_preset(name, smoke=True)
        jobs = len(experiment.sweep.expand())
        figure = "  [figure]" if name in FIGURE_PRESETS else ""
        print(f"  {name:28s} {experiment.description}  [smoke: {jobs} jobs]{figure}")
    return 0


def _show_sweep_telemetry(store: ResultStore, sweep_name: str) -> None:
    """``show``'s sweep-level timing block, from the newest trace run.

    Quietly degrades when the sweep has never run with ``--trace`` — the
    store itself records nothing about elapsed time.
    """
    directory = latest_run(store.root, sweep=sweep_name)
    if directory is None:
        print("telemetry: none recorded for this sweep "
              "(run with --trace to capture timings)")
        return
    run = trace_analysis.load_run(directory)
    elapsed = run.elapsed_s()
    print(f"telemetry ({directory.name}):"
          + (f" elapsed {elapsed:.2f}s" if elapsed is not None else ""))
    for stats in trace_analysis.wave_stats(run):
        print(_format_wave_line(stats))


def _cmd_show(args: argparse.Namespace) -> int:
    experiment = load_experiment(_resolve_spec(args), smoke=args.smoke)
    jobs = experiment.sweep.expand()
    store = ResultStore(args.store)
    failure_log = FailureLog(store)
    print(f"[{experiment.experiment_id}] {experiment.description}")
    print(f"salt: {code_version_salt()}  jobs: {len(jobs)}  store: {store.root}")
    if args.expire_failures is not None:
        # Scoped to THIS sweep's artifacts (grid jobs + shared deps): the
        # default store is shared across presets and `show <spec>` must not
        # destroy another sweep's tracebacks.
        dropped = failure_log.expire(
            args.expire_failures, keys=list(expanded_artifacts(jobs))
        )
        if dropped:
            print(f"expired {len(dropped)} failure entr"
                  f"{'y' if len(dropped) == 1 else 'ies'} older than "
                  f"{_format_age(args.expire_failures)[:-4]} "
                  f"(will retry as 'pending')")
    failed_keys = []
    grid_keys = set()
    for index, job in enumerate(jobs):
        key = job_key(job)
        grid_keys.add(key)
        timing = ""
        if store.has(key):
            status = "stored"
            # Execution metadata lives out-of-band (<store>/meta/): how a
            # result was produced, never part of what was produced.
            meta = store.load_meta(key)
            if meta.get("duration_s") is not None:
                timing = f"  [{float(meta['duration_s']):.2f}s"
                if meta.get("worker"):
                    timing += f" @ {meta['worker']}"
                timing += "]"
        elif failure_log.has(key):
            status = "FAILED"
            failed_keys.append(key)
        else:
            status = "pending"
        print(f"  {index:3d} {key[:16]} {status:7s} {job.kind:12s} "
              f"{job.label_dict}{timing}")
    # Shared dependency artifacts (clean references, distribution captures,
    # calibration siblings) are not grid points, but a failed one is the
    # *root cause* of its dependents' failed-with-cause entries — surface
    # it too, or its traceback would be unreachable from here.
    for key, job in expanded_artifacts(jobs).items():
        # store.has first, like the grid rows: a stored artifact with a
        # stale log entry has healed and must not read as FAILED.
        if key in grid_keys or store.has(key) or not failure_log.has(key):
            continue
        failed_keys.append(key)
        print(f"    - {key[:16]} FAILED  {job.kind:12s} (shared dependency)")
    _show_sweep_telemetry(store, experiment.sweep.name)
    for key in failed_keys:
        entry = failure_log.load(key)
        age = _format_age(failure_log.age_seconds(key))
        print(f"\nfailure {key[:16]} (job {entry.get('index')}, "
              f"{entry.get('kind')} {entry.get('label')}):")
        print(f"  logged at {entry.get('logged_at')} ({age}): {entry.get('error')}")
        if entry.get("cause_key"):
            print(f"  caused by upstream failure {str(entry['cause_key'])[:16]} "
                  "(fixing/rerunning the upstream job heals this one too)")
        for line in str(entry.get("traceback", "")).rstrip().splitlines():
            print(f"  | {line}")
    if failed_keys:
        print(f"\n{len(failed_keys)} failed job(s); rerun the sweep to retry "
              "(successful retries clear their log entries)")
    return 0


def _render_watch_loop(
    directory: Path,
    ascii_only: bool,
    stop: Optional[threading.Event] = None,
    interval_s: float = 0.25,
    timeout_s: Optional[float] = None,
    quiet: bool = False,
) -> dict:
    """Poll a (growing) trace run and redraw its snapshot until terminal.

    The shared engine of ``run --progress`` (driven on a background thread
    with ``stop`` set once the sweep returns) and ``trace watch`` (driven
    on the main thread with an optional timeout).  On a TTY the previous
    snapshot is erased with ANSI cursor movement; otherwise (or in ASCII
    mode) changed snapshots print as plain blocks.  Returns the final
    state snapshot.
    """
    import time as _time

    tailer = trace_live.RunTailer(directory)
    state = trace_live.SweepState()
    manifest = tailer.manifest()
    if manifest.get("sweep"):
        state.sweep = str(manifest["sweep"])
    if manifest.get("executor"):
        state.executor = str(manifest["executor"])
    is_tty = sys.stdout.isatty()
    ascii_only = ascii_only or not is_tty
    previous_lines = 0
    last_text: Optional[str] = None
    deadline = _time.monotonic() + timeout_s if timeout_s is not None else None
    while True:
        for event in tailer.poll():
            state.apply(event)
        if tailer.graph:
            state.ingest_graph(tailer.graph)
        snapshot = state.snapshot()
        if not quiet:
            text = trace_live.render(snapshot, ascii_only=ascii_only)
            if text != last_text:
                if is_tty and previous_lines:
                    sys.stdout.write(f"\x1b[{previous_lines}F\x1b[0J")
                sys.stdout.write(text + "\n")
                sys.stdout.flush()
                previous_lines = text.count("\n") + 1
                last_text = text
        if state.terminal:
            return snapshot
        if stop is not None and stop.is_set():
            return snapshot  # sweep returned without a terminal event
        if deadline is not None and _time.monotonic() >= deadline:
            return snapshot
        if stop is not None:
            stop.wait(interval_s)
        else:
            _time.sleep(interval_s)


def _cmd_run(args: argparse.Namespace) -> int:
    spec_arg = _resolve_spec(args)
    experiment = load_experiment(spec_arg, smoke=args.smoke)
    show_hint = (
        f"python -m repro.experiments show {spec_arg}"
        f"{' --smoke' if args.smoke else ''} --store {args.store}"
    )
    sweep = experiment.sweep
    store = ResultStore(args.store)
    out = args.out
    if out is None:
        out = _default_out_path(experiment.experiment_id)
    traced = args.trace or args.progress
    # The history log is an opt-out companion of tracing: every traced run
    # appends its summary record unless --no-history.
    history: Optional[Path] = None
    if traced and not args.no_history:
        history = args.history if args.history is not None else DEFAULT_HISTORY
    trace_arg: Union[bool, str] = traced
    watcher: Optional[threading.Thread] = None
    watcher_stop = threading.Event()
    if args.progress:
        # Name the run id up front so the watcher knows the directory
        # before run_sweep creates it; the tailer tolerates the wait.
        run_id = new_run_id()
        trace_arg = run_id
        watcher = threading.Thread(
            target=_render_watch_loop,
            args=(Path(run_directory(store.root, run_id)), args.ascii, watcher_stop),
            daemon=True,
        )
        watcher.start()
    try:
        run = run_sweep(
            sweep,
            store,
            jobs=args.jobs,
            force=args.force,
            weights_cache_dir=str(args.cache_dir),
            experiment=experiment,
            # The live renderer replaces the textual progress lines.
            progress=None if args.progress else print,
            max_failures=args.max_failures,
            inject_failures=args.inject_failure or (),
            executor=(
                RemoteExecutor(workers=args.workers, force_redispatch=True)
                if args.executor == "remote" and args.force_redispatch
                else args.executor
            ),
            shards=args.shards,
            workers=args.workers,
            trace=trace_arg,
            history=history,
            trial_batch=args.trial_batch,
            backend=args.backend,
        )
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — completed jobs are cached under {store.root}; "
            "rerun the same command (--resume is the default) to continue",
            file=sys.stderr,
        )
        return 130
    except MaxFailuresExceeded as error:
        print(f"\nABORTED: {error}", file=sys.stderr)
        print(f"inspect failures: {show_hint}", file=sys.stderr)
        return 3
    finally:
        if watcher is not None:
            watcher_stop.set()
            watcher.join(timeout=5.0)
    print()
    print(run.record.to_table())
    run.record.save(out)

    if experiment.experiment_id in FIGURE_PRESETS:
        from repro.report.figures import render_figure_outputs

        formats = ("json", "md", "csv", "ascii") if args.ascii else ("json", "md", "csv")
        written = render_figure_outputs(
            experiment.experiment_id, run, store, out.parent, formats=formats
        )
        if written:
            print("\nfigure tables:")
            for path in written:
                print(f"  {path}")

    print(
        f"\n{run.stats.total} jobs ({run.stats.cached} cached, "
        f"{run.stats.computed} computed"
        + (f", {run.stats.failed} FAILED" if run.stats.failed else "")
        + f") in {run.stats.elapsed_s:.1f}s -> {out}"
    )
    if run.failures:
        print(
            f"{len(run.failures)} tolerated failure(s) logged under "
            f"{FailureLog(store).root}; surface them with: {show_hint}"
        )
    if run.telemetry_dir:
        run_id = Path(run.telemetry_dir).name
        print(f"telemetry: {run.telemetry_dir}")
        print("inspect: python -m repro.experiments trace summary "
              f"--store {store.root} --run {run_id}")
        if history is not None:
            print(f"perf history: {history} (compare runs with "
                  "'trace history' / 'trace regress')")
    return 0


# --------------------------------------------------------------------- #
# Shard subcommands
# --------------------------------------------------------------------- #
def _cmd_shard_emit(args: argparse.Namespace) -> int:
    experiment = load_experiment(_resolve_spec(args), smoke=args.smoke)
    paths = write_shard_manifests(
        experiment.sweep, args.shards, args.dir, experiment=experiment,
    )
    jobs = len(experiment.sweep.expand())
    print(f"[{experiment.experiment_id}] {jobs} jobs -> {len(paths)} shard "
          f"manifest(s) (salt {code_version_salt()}):")
    for path in paths:
        print(f"  {path}")
    print("\nrun each shard (independent processes or machines, shared store):")
    for path in paths:
        print(f"  python -m repro.experiments shard run {path} --store {args.store}")
    print("\nthen merge:")
    print(f"  python -m repro.experiments shard merge {args.dir} --store {args.store}")
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    manifest = load_shard_manifest(args.manifest)
    store = ResultStore(args.store)
    print(f"shard {manifest['shard_index'] + 1}/{manifest['shard_count']}: "
          f"{len(manifest['jobs'])} job(s) against {store.root} "
          f"(salt {manifest['salt']})")
    statuses = run_shard_manifest(
        manifest, store, weights_cache_dir=str(args.cache_dir), progress=print,
        trace_dir=args.trace_dir,
    )
    result_path = args.result or manifest_result_path(args.manifest)
    result_path.parent.mkdir(parents=True, exist_ok=True)
    result_path.write_text(json.dumps(
        {"manifest": str(args.manifest), "statuses": statuses},
        indent=2, sort_keys=True,
    ))
    counts: dict = {}
    for status in statuses:
        counts[status["status"]] = counts.get(status["status"], 0) + 1
    summary = ", ".join(f"{counts[name]} {name}" for name in sorted(counts))
    print(f"shard complete: {summary or 'no jobs'} -> {result_path}")
    failed = sum(
        1 for status in statuses
        if status["status"] in ("failed", "upstream_failed")
    )
    return 4 if failed else 0


def _collect_manifest_paths(arguments: List[Path]) -> List[Path]:
    paths: List[Path] = []
    for argument in arguments:
        if argument.is_dir():
            paths.extend(
                sorted(
                    p for p in argument.glob("*.json")
                    if not p.name.endswith(".result.json")
                )
            )
        else:
            paths.append(argument)
    if not paths:
        raise SystemExit(f"no shard manifests found under {arguments}")
    return paths


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    paths = _collect_manifest_paths(args.manifests)
    manifests = [load_shard_manifest(path) for path in paths]
    salts = {manifest["salt"] for manifest in manifests}
    if len(salts) > 1:
        raise SystemExit(
            f"refusing to merge shards with mixed salts: {sorted(salts)}"
        )
    salt = salts.pop()
    with_sweep = next((m for m in manifests if "sweep" in m), None)
    if with_sweep is None:
        raise SystemExit(
            "none of the manifests embeds the sweep spec (emitted by an "
            "older tool?); re-emit with 'shard emit'"
        )
    sweep_jsons = {
        json.dumps(m["sweep"], sort_keys=True) for m in manifests if "sweep" in m
    }
    if len(sweep_jsons) > 1:
        raise SystemExit(
            "refusing to merge manifests of different sweeps (a directory "
            "holding several 'shard emit' outputs?); pass one sweep's "
            "manifests explicitly"
        )
    sweep = SweepSpec.from_dict(with_sweep["sweep"])
    # Expand and hash once; the foreign-key check, the completeness scan
    # and the aggregation below all reuse this.
    expanded = sweep.expand()
    keys = [job_key(job, salt) for job in expanded]
    # Every manifest's jobs must belong to this sweep — catches a directory
    # mixing shards of two presets even when only one embeds its spec.
    merged_keys = set(keys)
    for path, manifest in zip(paths, manifests):
        foreign = [
            entry["key"] for entry in manifest.get("jobs", ())
            if entry["key"] not in merged_keys
        ]
        if foreign:
            raise SystemExit(
                f"{path} holds {len(foreign)} job(s) that are not part of "
                f"the merged sweep '{sweep.name}' (mixed sweeps in one "
                "directory?); pass one sweep's manifests explicitly"
            )
    identity = with_sweep.get("experiment")
    experiment = (
        ExperimentSpec(
            experiment_id=identity["experiment_id"],
            sweep=sweep,
            description=identity.get("description", ""),
            paper_reference=identity.get("paper_reference", ""),
        )
        if identity
        else None
    )
    store = ResultStore(args.store)
    failure_log = FailureLog(store)
    missing = []
    for index, (job, key) in enumerate(zip(expanded, keys)):
        if not store.has(key):
            state = "FAILED" if failure_log.has(key) else "missing"
            missing.append((index, key, state, job))
    if missing:
        print(f"merge incomplete: {len(missing)}/{len(expanded)} job(s) "
              f"without artifacts in {store.root}:", file=sys.stderr)
        for index, key, state, job in missing[:20]:
            print(f"  {index:3d} {key[:16]} {state:7s} {job.kind} "
                  f"{job.label_dict}", file=sys.stderr)
        if len(missing) > 20:
            print(f"  ... and {len(missing) - 20} more", file=sys.stderr)
        print("run the remaining shard(s) — or rerun failed ones — then "
              "merge again", file=sys.stderr)
        return 2
    run = aggregate_sweep(
        sweep, store, salt=salt, experiment=experiment,
        expanded=expanded, keys=keys,
    )
    experiment_id = experiment.experiment_id if experiment else sweep.name
    out = args.out
    if out is None:
        out = _default_out_path(experiment_id)
    print(run.record.to_table())
    saved = run.record.save(out)
    digest = hashlib.sha256(saved.read_bytes()).hexdigest()
    print(f"\nmerged {len(expanded)} job(s) from {len(paths)} shard "
          f"manifest(s) -> {out}")
    print(f"aggregate sha256: {digest}")
    print("(assembled purely from stored artifacts in grid order — "
          "byte-identical to a single-process run's aggregate)")
    return 0


# --------------------------------------------------------------------- #
# Trace subcommands
# --------------------------------------------------------------------- #
def _resolve_trace_run(args: argparse.Namespace) -> trace_analysis.TraceRun:
    """Pick the trace run a ``trace`` subcommand operates on."""
    if args.dir is not None:
        directory = args.dir
        if not Path(directory).is_dir():
            raise SystemExit(f"no trace run directory at {directory}")
    elif args.run is not None:
        directory = run_directory(args.store, args.run)
        if not Path(directory).is_dir():
            raise SystemExit(
                f"no trace run '{args.run}' under {args.store}/telemetry "
                "(see: python -m repro.experiments trace list)"
            )
    else:
        found = latest_run(args.store, sweep=args.sweep)
        if found is None:
            raise SystemExit(
                "no telemetry recorded"
                + (f" for sweep '{args.sweep}'" if args.sweep else "")
                + f" under {args.store}/telemetry — record a run with "
                "'run ... --trace'"
            )
        directory = found
    run = trace_analysis.load_run(directory)
    if not run.events:
        raise SystemExit(f"trace run {directory} holds no events")
    return run


def _cmd_trace_list(args: argparse.Namespace) -> int:
    runs = list_runs(args.store)
    if not runs:
        print(f"no telemetry recorded under {args.store}/telemetry "
              "(record a run with 'run ... --trace')")
        return 0
    print(f"{len(runs)} trace run(s) under {args.store}/telemetry:")
    for directory in runs:
        manifest = load_run_manifest(directory)
        streams = len(stream_paths(directory))
        descriptor = (
            f"sweep={manifest['sweep']} executor={manifest.get('executor', '?')}"
            if manifest.get("sweep")
            else "(no run manifest — standalone shard streams)"
        )
        print(f"  {directory.name}  {descriptor}  [{streams} stream(s)]")
    print("\ninspect one: python -m repro.experiments trace summary "
          f"--store {args.store} --run <id>")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    run = _resolve_trace_run(args)
    wanted = set(args.event) if args.event else None
    shown = 0
    for event in run.events:
        if wanted is not None and event.get("event") not in wanted:
            continue
        print(json.dumps(event, sort_keys=True))
        shown += 1
        if args.limit is not None and shown >= args.limit:
            break
    return 0


def _format_wave_line(stats: trace_analysis.WaveStats) -> str:
    wave = "?" if stats.wave is None else str(stats.wave)
    return (f"  wave {wave}: {stats.jobs} job(s) on {stats.streams} "
            f"stream(s), span {stats.span_s:.2f}s, busy {stats.busy_s:.2f}s, "
            f"utilization {stats.utilization * 100:.0f}%")


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    run = _resolve_trace_run(args)
    summary = trace_analysis.summarize(run)
    stragglers = trace_analysis.find_stragglers(
        run, factor=args.straggler_factor, min_gap_s=args.straggler_min_gap
    )
    if args.json:
        summary["stragglers"] = stragglers  # honour the CLI's thresholds
        print(json.dumps(
            trace_analysis.summary_to_jsonable(summary), sort_keys=True
        ))
        return 0
    print(f"trace run: {summary['run_id']}")
    print(f"directory: {run.directory}")
    if summary.get("sweep"):
        manifest = run.manifest
        print(f"sweep: {manifest.get('sweep')} "
              f"(executor={manifest.get('executor', '?')}, "
              f"jobs={manifest.get('jobs', '?')})")
    print(f"events: {summary['events']} across {summary['streams']} stream(s)")
    print(f"jobs executed: {summary['executed']} "
          f"({summary['ok']} ok, {summary['failed']} failed)")
    if summary["upstream_failed"]:
        print(f"jobs skipped on upstream failure: {summary['upstream_failed']}")
    if summary["duplicates"]:
        print(f"duplicate executions (racing shards): "
              f"{len(summary['duplicates'])} key(s)")
    cache = summary["cache"]
    print(f"cache: {cache['hits']:.0f} hit(s), "
          f"{cache['executed']:.0f} computed, "
          f"hit rate {cache['hit_rate'] * 100:.0f}%")
    if summary["elapsed_s"] is not None:
        print(f"elapsed: {summary['elapsed_s']:.2f}s")
    chain = summary["critical_path"]
    if chain:
        fraction = summary["critical_path_fraction"]
        print(f"critical path: {len(chain)} job(s), "
              f"{summary['critical_path_s']:.2f}s"
              + (f" ({fraction * 100:.0f}% of elapsed)"
                 if fraction is not None else ""))
    for stats in summary["waves"]:
        print(_format_wave_line(stats))
    if summary["kinds"]:
        print("per-kind durations:")
        for kind, hist in summary["kinds"].items():
            print(f"  {kind:12s} n={hist['count']:.0f} "
                  f"total {hist['total_s']:.2f}s  mean {hist['mean_s']:.3f}s  "
                  f"[{hist['min_s']:.3f}s .. {hist['max_s']:.3f}s]")
    print(f"stragglers: {len(stragglers)}")
    for straggler in stragglers:
        wave = "?" if straggler.wave is None else str(straggler.wave)
        shard = f" (shard {straggler.shard})" if straggler.shard is not None else ""
        print(f"  wave {wave}: stream {straggler.stream}{shard} busy "
              f"{straggler.busy_s:.2f}s vs median {straggler.median_busy_s:.2f}s "
              f"over {straggler.jobs} job(s)")
    return 0


def _cmd_trace_critical_path(args: argparse.Namespace) -> int:
    run = _resolve_trace_run(args)
    chain = trace_analysis.critical_path(run)
    if args.json:
        total = sum(e.duration_s or 0.0 for e in chain)
        print(json.dumps(
            {
                "run_id": run.run_id,
                "jobs": [trace_analysis.execution_to_dict(e) for e in chain],
                "critical_path_s": total,
                "elapsed_s": run.elapsed_s(),
            },
            sort_keys=True,
        ))
        return 0
    if not chain:
        print("critical path: empty (no executed jobs in this trace)")
        return 0
    total = sum(e.duration_s or 0.0 for e in chain)
    elapsed = run.elapsed_s()
    print(f"critical path: {len(chain)} job(s), {total:.2f}s total"
          + (f" ({total / elapsed * 100:.0f}% of elapsed {elapsed:.2f}s)"
             if elapsed else ""))
    for position, execution in enumerate(chain, start=1):
        wave = "?" if execution.wave is None else str(execution.wave)
        duration = (
            f"{execution.duration_s:.3f}s" if execution.duration_s is not None
            else "?"
        )
        marker = "" if execution.outcome == "computed" else f"  [{execution.outcome}]"
        print(f"  {position:2d}. {execution.key[:16]}  "
              f"{execution.kind:12s} wave {wave:>2s}  {duration}{marker}")
    print("(each job waited on the one above it; no schedule can beat the "
          "chain's summed duration without changing the jobs)")
    return 0


def _cmd_trace_watch(args: argparse.Namespace) -> int:
    # Unlike the offline subcommands, watch may target a run that has not
    # materialised yet (a sweep just launched elsewhere) — an explicit
    # --run/--dir is followed as soon as it appears.
    if args.dir is not None:
        directory = Path(args.dir)
    elif args.run is not None:
        directory = Path(run_directory(args.store, args.run))
    else:
        found = latest_run(args.store, sweep=args.sweep)
        if found is None:
            raise SystemExit(
                "no telemetry recorded"
                + (f" for sweep '{args.sweep}'" if args.sweep else "")
                + f" under {args.store}/telemetry — start a traced sweep "
                "('run ... --trace') or name one with --run/--dir"
            )
        directory = Path(found)
    snapshot = _render_watch_loop(
        directory, args.ascii,
        interval_s=args.interval, timeout_s=args.timeout, quiet=args.json,
    )
    if args.json:
        print(json.dumps(snapshot, sort_keys=True))
    if not snapshot.get("terminal"):
        print(
            f"watch gave up after {args.timeout}s without a terminal event "
            "(sweep still running? re-watch, or raise --timeout)",
            file=sys.stderr,
        )
        return 1
    return 0


def _format_history_line(record: dict) -> str:
    recorded = str(record.get("recorded_at", "?"))[:19]
    sweep = record.get("sweep") or "?"
    executor = record.get("executor") or "?"
    elapsed = record.get("elapsed_s")
    elapsed_text = f"{float(elapsed):8.2f}s" if elapsed is not None else "       ?"
    cache = record.get("cache") or {}
    hit_rate = cache.get("hit_rate")
    cache_text = (
        f"cache {float(hit_rate) * 100:3.0f}%" if hit_rate is not None else "cache ?"
    )
    resources = record.get("resources") or {}
    rss = resources.get("peak_rss_kb")
    rss_text = f"  rss {float(rss) / 1024:.0f}MiB" if rss else ""
    return (f"  {recorded}  {sweep:20s} {executor:8s} {elapsed_text}  "
            f"{cache_text}{rss_text}  [{record.get('run_id', '?')}]")


def _cmd_trace_history(args: argparse.Namespace) -> int:
    records = trace_history.load_history(args.history, sweep=args.sweep)
    if args.limit is not None:
        records = records[-args.limit:]
    if args.json:
        print(json.dumps(records, sort_keys=True))
        return 0
    if not records:
        print(f"no perf history at {args.history}"
              + (f" for sweep '{args.sweep}'" if args.sweep else "")
              + " (traced runs append records automatically)")
        return 0
    print(f"{len(records)} record(s) in {args.history}:")
    for record in records:
        print(_format_history_line(record))
    print("\ncompare: python -m repro.experiments trace regress "
          f"--history {args.history}")
    return 0


def _cmd_trace_regress(args: argparse.Namespace) -> int:
    records = trace_history.load_history(args.history, sweep=args.sweep)
    if len(records) < 2:
        print(
            f"not enough history in {args.history} to compare "
            f"({len(records)} record(s); need a baseline and a latest run)",
            file=sys.stderr,
        )
        return 2
    latest = records[-1]
    baseline = trace_history.find_baseline(records, args.baseline)
    if baseline is None:
        raise SystemExit(
            f"no history record matches baseline {args.baseline!r} "
            f"(run ids: {[r.get('run_id') for r in records]})"
        )
    if baseline is latest:
        raise SystemExit(
            f"baseline {args.baseline!r} resolves to the latest record "
            "itself; pick an earlier one"
        )
    incomparable = trace_history.comparable_records(baseline, latest)
    if incomparable is not None:
        print(f"NOT COMPARABLE: {incomparable}", file=sys.stderr)
        return 2
    regressions = trace_history.compare_records(
        baseline, latest,
        factor=args.factor, min_gap_s=args.min_gap,
        rss_factor=args.rss_factor, min_gap_rss_kb=args.rss_min_gap,
    )
    print(f"baseline: {baseline.get('run_id')} ({baseline.get('recorded_at')})")
    print(f"latest:   {latest.get('run_id')} ({latest.get('recorded_at')})")
    for label, path in (
        ("elapsed_s", ("elapsed_s",)),
        ("critical_path_s", ("critical_path_s",)),
        ("peak_rss_kb", ("resources", "peak_rss_kb")),
    ):
        base = trace_history.metric_value(baseline, path)
        new = trace_history.metric_value(latest, path)
        if base is None or new is None:
            continue
        print(f"  {label:16s} {base:12.3f} -> {new:12.3f}"
              + (f"  ({new / base:.2f}x)" if base > 0 else ""))
    if regressions:
        print(f"\nREGRESSION: {len(regressions)} metric(s) exceeded both "
              f"gates (factor {args.factor}, gap {args.min_gap}s / "
              f"rss factor {args.rss_factor}, gap {args.rss_min_gap:.0f}KiB):")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 5
    print("\nno regression (every metric within the relative+absolute gates)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "list":
        return _cmd_trace_list(args)
    if args.trace_command == "show":
        return _cmd_trace_show(args)
    if args.trace_command == "summary":
        return _cmd_trace_summary(args)
    if args.trace_command == "watch":
        return _cmd_trace_watch(args)
    if args.trace_command == "history":
        return _cmd_trace_history(args)
    if args.trace_command == "regress":
        return _cmd_trace_regress(args)
    return _cmd_trace_critical_path(args)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    set_verbosity(verbosity_to_level(
        getattr(args, "verbose", 0) or 0, getattr(args, "quiet", False)
    ))
    if args.command == "list":
        return _cmd_list()
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "shard":
        if args.shard_command == "emit":
            return _cmd_shard_emit(args)
        if args.shard_command == "run":
            return _cmd_shard_run(args)
        return _cmd_shard_merge(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return _cmd_run(args)
