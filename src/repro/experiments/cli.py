"""Unified experiment-orchestration CLI.

::

    python -m repro.experiments list
    python -m repro.experiments show robustness-noise --smoke
    python -m repro.experiments run robustness-noise --smoke --jobs 2
    python -m repro.experiments run --preset fig6 --smoke --max-failures 1
    python -m repro.experiments run path/to/sweep.json --force

``run``/``show`` accept either a built-in preset name (``list`` shows them;
the ``--preset`` flag is an explicit spelling of the same thing) or a path
to a JSON file holding an :class:`~repro.experiments.spec.ExperimentSpec`
(or bare ``SweepSpec``) dict.  Completed jobs land in the content-addressed
store and are skipped on the next invocation; an interrupted sweep (Ctrl-C,
crash, CI timeout) therefore resumes where it left off — ``--resume`` is the
default and spelled out only for scripts that want to be explicit.  Use
``--force`` to discard the sweep's cached artifacts and recompute.

Failures: a job that raises is recorded (spec + traceback) in the store's
failure log and surfaced by ``show``; ``--max-failures N`` lets a sweep
tolerate up to ``N`` failed jobs instead of aborting on the first one.
Rerunning the sweep retries failed jobs and clears healed log entries.

``run`` on a ``fig*`` preset additionally renders the paper-style figure
tables (JSON + markdown + CSV) from the stored rows — the same reporting
path the ``benchmarks/bench_fig*.py`` shims use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.experiments.presets import FIGURE_PRESETS, available_presets, build_preset
from repro.experiments.runner import MaxFailuresExceeded, run_sweep
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import (
    FailureLog,
    ResultStore,
    code_version_salt,
    job_key,
)

DEFAULT_STORE = Path("benchmarks") / "results" / "store"
DEFAULT_CACHE = Path("benchmarks") / ".cache"
DEFAULT_OUT_DIR = Path("benchmarks") / "results"


def load_experiment(spec: str, smoke: bool = False) -> ExperimentSpec:
    """Resolve a CLI spec argument: preset name or JSON file path."""
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        experiment = ExperimentSpec.from_dict(json.loads(path.read_text()))
        if smoke:
            raise SystemExit(
                "--smoke only applies to built-in presets; shrink the JSON "
                "spec itself for a smoke variant"
            )
        return experiment
    return build_preset(spec, smoke=smoke)


def _resolve_spec(args: argparse.Namespace) -> str:
    """One spec from the positional argument or ``--preset`` (exactly one)."""
    if args.spec is not None and args.preset is not None:
        raise SystemExit("pass either a positional spec or --preset, not both")
    spec = args.spec if args.spec is not None else args.preset
    if spec is None:
        raise SystemExit(
            "missing experiment: pass a preset name / JSON path, or --preset "
            f"NAME (available: {', '.join(available_presets())})"
        )
    return spec


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", nargs="?", default=None,
                        help="preset name or JSON spec path")
    parser.add_argument("--preset", default=None, metavar="NAME",
                        help="built-in preset name (alternative spelling of "
                             "the positional spec)")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast smoke variant of a preset")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative, cached, parallel experiment sweeps.",
        epilog="See docs/experiments.md for the spec/store/runner model and "
               "docs/reproducing-figures.md for the paper-figure presets.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list",
        help="list built-in experiment presets",
        epilog="Preset factories live in repro/experiments/presets.py; each "
               "has a --smoke variant sized for CI.",
    )

    show = sub.add_parser(
        "show",
        help="print a sweep's expanded jobs, store status and failures",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Status per job: 'stored' (artifact present, will be served "
               "from cache), 'failed' (a logged failure; its traceback is "
               "printed below the job list), 'pending' (will compute on the "
               "next run).  Point --store at the store a run used to inspect "
               "that run's state.",
    )
    _add_spec_arguments(show)
    show.add_argument("--store", type=Path, default=DEFAULT_STORE,
                      help=f"result store to check against (default {DEFAULT_STORE})")

    run = sub.add_parser(
        "run",
        help="execute a sweep against the result store",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="Completed jobs are content-addressed in the store, so "
               "rerunning an identical sweep is a full cache hit and an "
               "interrupted one resumes byte-identically.  A fig* preset "
               "also renders its paper-style figure tables (JSON/markdown/"
               "CSV) into the output directory.",
    )
    _add_spec_arguments(run)
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes (default 1: in-process)")
    run.add_argument("--resume", action="store_true", default=True,
                     help="skip jobs already in the store (default)")
    run.add_argument("--force", action="store_true",
                     help="drop the sweep's cached artifacts and recompute")
    run.add_argument("--max-failures", type=int, default=None, metavar="N",
                     help="tolerate up to N failed jobs (logged to the "
                          "store's failure log) instead of aborting on the "
                          "first failure")
    run.add_argument("--inject-failure", type=int, action="append", default=None,
                     metavar="INDEX",
                     help="force the job at INDEX to fail (testing aid for "
                          "the failure path; repeatable)")
    run.add_argument("--store", type=Path, default=DEFAULT_STORE,
                     help=f"result store directory (default {DEFAULT_STORE})")
    run.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE,
                     help=f"trained-weight cache (default {DEFAULT_CACHE})")
    run.add_argument("--out", type=Path, default=None,
                     help="aggregate record path "
                          f"(default {DEFAULT_OUT_DIR}/<experiment>.json)")
    return parser


def _cmd_list() -> int:
    print(f"built-in experiment presets (salt {code_version_salt()}):")
    for name in available_presets():
        experiment = build_preset(name, smoke=True)
        jobs = len(experiment.sweep.expand())
        figure = "  [figure]" if name in FIGURE_PRESETS else ""
        print(f"  {name:28s} {experiment.description}  [smoke: {jobs} jobs]{figure}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    experiment = load_experiment(_resolve_spec(args), smoke=args.smoke)
    jobs = experiment.sweep.expand()
    store = ResultStore(args.store)
    failure_log = FailureLog(store)
    print(f"[{experiment.experiment_id}] {experiment.description}")
    print(f"salt: {code_version_salt()}  jobs: {len(jobs)}  store: {store.root}")
    failed_keys = []
    for index, job in enumerate(jobs):
        key = job_key(job)
        if store.has(key):
            status = "stored"
        elif failure_log.has(key):
            status = "FAILED"
            failed_keys.append(key)
        else:
            status = "pending"
        print(f"  {index:3d} {key[:16]} {status:7s} {job.kind:12s} {job.label_dict}")
    for key in failed_keys:
        entry = failure_log.load(key)
        print(f"\nfailure {key[:16]} (job {entry.get('index')}, "
              f"{entry.get('kind')} {entry.get('label')}):")
        print(f"  logged at {entry.get('logged_at')}: {entry.get('error')}")
        for line in str(entry.get("traceback", "")).rstrip().splitlines():
            print(f"  | {line}")
    if failed_keys:
        print(f"\n{len(failed_keys)} failed job(s); rerun the sweep to retry "
              "(successful retries clear their log entries)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec_arg = _resolve_spec(args)
    experiment = load_experiment(spec_arg, smoke=args.smoke)
    show_hint = (
        f"python -m repro.experiments show {spec_arg}"
        f"{' --smoke' if args.smoke else ''} --store {args.store}"
    )
    sweep = experiment.sweep
    store = ResultStore(args.store)
    out = args.out
    experiment_stem = experiment.experiment_id.replace("/", "_").replace("-", "_")
    if out is None:
        # Figure presets render their figure tables under the canonical
        # fig*.json stems; keep the sweep aggregate at a distinct path so
        # neither overwrites the other.
        suffix = "_sweep" if experiment.experiment_id in FIGURE_PRESETS else ""
        out = DEFAULT_OUT_DIR / f"{experiment_stem}{suffix}.json"
    try:
        run = run_sweep(
            sweep,
            store,
            jobs=args.jobs,
            force=args.force,
            weights_cache_dir=str(args.cache_dir),
            experiment=experiment,
            progress=print,
            max_failures=args.max_failures,
            inject_failures=args.inject_failure or (),
        )
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — completed jobs are cached under {store.root}; "
            "rerun the same command (--resume is the default) to continue",
            file=sys.stderr,
        )
        return 130
    except MaxFailuresExceeded as error:
        print(f"\nABORTED: {error}", file=sys.stderr)
        print(f"inspect failures: {show_hint}", file=sys.stderr)
        return 3
    print()
    print(run.record.to_table())
    run.record.save(out)

    if experiment.experiment_id in FIGURE_PRESETS:
        from repro.report.figures import render_figure_outputs

        written = render_figure_outputs(
            experiment.experiment_id, run, store, out.parent
        )
        if written:
            print("\nfigure tables:")
            for path in written:
                print(f"  {path}")

    print(
        f"\n{run.stats.total} jobs ({run.stats.cached} cached, "
        f"{run.stats.computed} computed"
        + (f", {run.stats.failed} FAILED" if run.stats.failed else "")
        + f") in {run.stats.elapsed_s:.1f}s -> {out}"
    )
    if run.failures:
        print(
            f"{len(run.failures)} tolerated failure(s) logged under "
            f"{FailureLog(store).root}; surface them with: {show_hint}"
        )
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "show":
        return _cmd_show(args)
    return _cmd_run(args)
