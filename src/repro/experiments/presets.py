"""Built-in named experiment sweeps.

Each preset is a factory ``(smoke: bool, **overrides) -> ExperimentSpec``.
``--smoke`` variants shrink the training budget, grid and trial count to
seconds-fast CI jobs while exercising exactly the same code paths.  The
benchmark scripts under ``benchmarks/`` build their sweeps through these
factories so the grids live in one place.

The ``fig*`` presets reproduce the paper's figures on the runner/store:
``fig3`` (bit-line distributions), ``fig6a``/``fig6b``/``fig6c`` (the
sensing-precision accuracy and A/D-operation sweeps), ``fig6`` (their
union, deduplicated through the content addresses) and ``fig7`` (the
accelerator power breakdown).  The *benchmark workload budget* below is
the single source of truth for how figure workloads are prepared — the
pytest fixtures in ``benchmarks/conftest.py`` import it from here, so the
figure benchmarks and the presets can never drift apart.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.spec import (
    AdcSpec,
    CalibrationParams,
    DistributionParams,
    ExperimentSpec,
    JobSpec,
    NoiseScenario,
    PowerSpec,
    SweepSpec,
    WorkloadSpec,
)

#: The multi-workload robustness trio (the paper's fourth workload,
#: resnet18, shares the squeezenet dataset shape; add it via overrides).
MULTI_WORKLOAD_NAMES = ("lenet5", "resnet20", "squeezenet1_1")

# --------------------------------------------------------------------- #
# The one benchmark-wide workload-preparation budget (shared with
# benchmarks/conftest.py).
# --------------------------------------------------------------------- #
BENCH_TRAIN_SIZE = 256
BENCH_TEST_SIZE = 96
BENCH_CALIBRATION_IMAGES = 32
BENCH_SEED = 0

#: Default workloads the figure benchmarks regenerate (extendable to the
#: paper's full four via overrides / REPRO_BENCH_WORKLOADS).
FIGURE_WORKLOAD_NAMES = ("lenet5", "resnet20")

#: Sensing precisions swept in Fig. 6 (paper: 8, 7, 6, 5, 4).
FIG6_SENSING_BITS = (8, 7, 6, 5, 4)

#: Evaluation images per workload in the full figure runs.
FIGURE_EVAL_IMAGES = 32

#: Calibration images used for distribution capture in the figure pipeline
#: (the benchmarks capture on the first 16 calibration images).
FIGURE_CAPTURE_IMAGES = 16


def benchmark_epochs(name: str) -> int:
    """Per-workload training budget of the benchmark suite."""
    return 20 if name == "lenet5" else 12


def benchmark_workload(name: str, preset: str = "tiny") -> WorkloadSpec:
    """The benchmark suite's workload preparation for ``name``.

    This is byte-compatible with the ``workloads`` session fixture in
    ``benchmarks/conftest.py`` (same budget constants), so spec-driven
    sweeps share the suite's trained-weight cache.
    """
    return WorkloadSpec(
        name,
        preset=preset,
        train_size=BENCH_TRAIN_SIZE,
        test_size=BENCH_TEST_SIZE,
        calibration_images=BENCH_CALIBRATION_IMAGES,
        epochs=benchmark_epochs(name),
        seed=BENCH_SEED,
    )


def _smoke_workload(name: str = "lenet5") -> WorkloadSpec:
    """Seconds-fast training budget for CI smoke variants of the figures."""
    return WorkloadSpec(
        name, preset="tiny", train_size=128, test_size=32,
        calibration_images=16, epochs=6, seed=BENCH_SEED,
    )


def sigma_fault_scenarios(
    sigmas: Sequence[float], fault_rates: Sequence[float], seed: int = 0
) -> List[NoiseScenario]:
    """The read-noise × stuck-at-fault grid used by the robustness sweeps."""
    scenarios = []
    for sigma in sigmas:
        for rate in fault_rates:
            models = []
            if sigma > 0.0:
                models.append({"model": "gaussian_read_noise", "sigma": float(sigma)})
            if rate > 0.0:
                models.append({"model": "stuck_at_faults", "rate_on": float(rate)})
            scenarios.append(
                NoiseScenario(
                    models=tuple(models),
                    seed=seed,
                    label={"sigma": float(sigma), "fault_rate": float(rate)},
                )
            )
    return scenarios


# --------------------------------------------------------------------- #
def robustness_noise(
    smoke: bool = False,
    sigmas: Optional[Sequence[float]] = None,
    fault_rates: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
    images: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """LeNet-5 TRQ accuracy under read-noise sigma × stuck-at fault rate."""
    if smoke:
        sigmas = list(sigmas) if sigmas is not None else [0.0, 0.5]
        fault_rates = list(fault_rates) if fault_rates is not None else [0.0, 1e-3]
        trials = trials or 2
        images = images or 8
        train_size, epochs = 128, 6
    else:
        sigmas = list(sigmas) if sigmas is not None else [0.0, 0.25, 0.5, 1.0, 2.0]
        fault_rates = (
            list(fault_rates) if fault_rates is not None else [0.0, 1e-3, 5e-3, 1e-2]
        )
        trials = trials or 8
        images = images or 48
        train_size, epochs = 256, 20
    sweep = SweepSpec(
        name="robustness-noise",
        kind="monte_carlo",
        workloads=[
            WorkloadSpec(
                "lenet5", preset="tiny", train_size=train_size,
                test_size=max(images, 32), calibration_images=16,
                epochs=epochs, seed=seed,
            )
        ],
        noises=sigma_fault_scenarios(sigmas, fault_rates, seed=seed),
        mc_seeds=[seed],
        trials=trials,
        images=images,
        batch_size=16,
    )
    return ExperimentSpec(
        experiment_id="robustness-noise",
        sweep=sweep,
        description="TRQ accuracy under device noise (sigma x fault rate)",
        paper_reference="beyond-paper robustness check (keyed noise subsystem)",
    )


def multi_workload_robustness(
    smoke: bool = False,
    workload_names: Sequence[str] = MULTI_WORKLOAD_NAMES,
    trials: Optional[int] = None,
    images: Optional[int] = None,
    mc_seeds: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Monte Carlo robustness over the multi-workload sweep (ROADMAP item)."""
    if smoke:
        trials = trials or 2
        images = images or 6
        train_size, epochs = 96, 3
        scenarios = sigma_fault_scenarios([0.5], [0.0, 1e-3], seed=seed)
        mc_seeds = list(mc_seeds) if mc_seeds is not None else [0, 1]
    else:
        trials = trials or 6
        images = images or 32
        train_size, epochs = 256, 12
        scenarios = sigma_fault_scenarios([0.25, 0.5, 1.0], [0.0, 1e-3], seed=seed)
        mc_seeds = list(mc_seeds) if mc_seeds is not None else [0]
    sweep = SweepSpec(
        name="multi-workload-robustness",
        kind="monte_carlo",
        workloads=[
            WorkloadSpec(
                name, preset="tiny", train_size=train_size,
                test_size=max(images, 32), calibration_images=16,
                epochs=epochs, seed=seed,
            )
            for name in workload_names
        ],
        noises=scenarios,
        mc_seeds=mc_seeds,
        trials=trials,
        images=images,
        batch_size=16,
    )
    return ExperimentSpec(
        experiment_id="multi-workload-robustness",
        sweep=sweep,
        description="Monte Carlo robustness across lenet5/resnet20/squeezenet",
        paper_reference="Section V-A workloads under device noise (beyond paper)",
    )


def ablation_calibration(
    smoke: bool = False,
    calibration_sizes: Optional[Sequence[int]] = None,
    images: Optional[int] = None,
    seed: int = 0,
    workload: Optional[WorkloadSpec] = None,
) -> ExperimentSpec:
    """TRQ calibration quality vs calibration-set size (Algorithm 1).

    ``workload`` overrides the default LeNet-5 preparation — the pytest
    benchmark passes its conftest-budget workload here so the sweep shares
    the benchmark suite's trained-weight cache while the grid and the
    experiment identity stay defined in this one place.
    """
    if smoke:
        calibration_sizes = list(calibration_sizes or (4, 16))
        images = images or 16
        train_size, epochs = 128, 6
    else:
        calibration_sizes = list(calibration_sizes or (4, 8, 16, 32))
        images = images or 32
        train_size, epochs = 256, 20
    if workload is None:
        workload = WorkloadSpec(
            "lenet5", preset="tiny", train_size=train_size, test_size=96,
            calibration_images=32, epochs=epochs, seed=seed,
        )
    sweep = SweepSpec(
        name="ablation-calibration",
        kind="calibration",
        workloads=[workload],
        calibrations=[
            CalibrationParams(calibration_size=size) for size in calibration_sizes
        ],
        images=images,
        batch_size=16,
    )
    return ExperimentSpec(
        experiment_id="abl-calib",
        sweep=sweep,
        description="TRQ calibration quality vs calibration-set size",
        paper_reference="Section V-A: 32 calibration images suffice (no retraining)",
    )


# --------------------------------------------------------------------- #
# Figure pipeline: shared building blocks
# --------------------------------------------------------------------- #
def _figure_workloads(
    smoke: bool,
    workloads: Optional[Sequence[WorkloadSpec]],
    workload_names: Optional[Sequence[str]],
    preset: str,
) -> List[WorkloadSpec]:
    if workloads is not None:
        return list(workloads)
    if smoke:
        return [_smoke_workload(name) for name in (workload_names or ("lenet5",))]
    names = workload_names or FIGURE_WORKLOAD_NAMES
    return [benchmark_workload(name, preset=preset) for name in names]


def _capture_images(workload: WorkloadSpec) -> int:
    return min(FIGURE_CAPTURE_IMAGES, workload.calibration_images)


def figure_calibration_params(workload: WorkloadSpec, bits: int) -> CalibrationParams:
    """The Algorithm 1 knobs the figure benchmarks run with: the workload's
    own calibration split, 16 v_grid candidates, a fixed ``Nmax == bits``
    (no outer accuracy loop)."""
    return CalibrationParams(
        calibration_size=workload.calibration_images,
        source="workload",
        num_v_grid_candidates=16,
        max_samples_per_layer=8192,
        use_accuracy_loop=False,
        initial_n_max=bits,
    )


def _reference_jobs(workload: WorkloadSpec, images: int) -> List[JobSpec]:
    """The f/f (float) and 8/f (fake-quantized) accuracy references."""
    return [
        JobSpec(
            kind="evaluate", workload=workload, images=images, datapath=datapath,
            label={"workload": workload.name, "config": config},
        )
        for datapath, config in (("float", "f/f"), ("fakequant", "8/f"))
    ]


def _uniform_sensing_jobs(
    workload: WorkloadSpec, images: int, bits_list: Sequence[int]
) -> List[JobSpec]:
    """Range-calibrated uniform evaluations over the sensing-precision axis
    (every bit-width shares one stored distribution capture)."""
    return [
        JobSpec(
            kind="evaluate", workload=workload, images=images, batch_size=16,
            adc=AdcSpec(
                mode="uniform_calibrated", uniform_bits=bits,
                calib_images=_capture_images(workload), calib_batch_size=8,
                calib_seed=0,
            ),
            label={"workload": workload.name, "config": str(bits)},
        )
        for bits in bits_list
    ]


def _trq_calibration_jobs(
    workload: WorkloadSpec, images: int, bits_list: Sequence[int]
) -> List[JobSpec]:
    """Algorithm 1 searches over the sensing-precision cap (Fig. 6b/6c)."""
    return [
        JobSpec(
            kind="calibration", workload=workload, images=images, batch_size=16,
            calibration=figure_calibration_params(workload, bits),
            label={"workload": workload.name, "config": f"trq{bits}"},
        )
        for bits in bits_list
    ]


def _dedupe_jobs(jobs: Sequence[JobSpec]) -> List[JobSpec]:
    """Drop later duplicates (same content address), keeping first labels."""
    from repro.experiments.store import job_key  # lazy: store imports spec

    seen = set()
    unique = []
    for job in jobs:
        key = job_key(job)
        if key in seen:
            continue
        seen.add(key)
        unique.append(job)
    return unique


def _figure_experiment(
    experiment_id: str,
    jobs: List[JobSpec],
    description: str,
    paper_reference: str,
) -> ExperimentSpec:
    sweep = SweepSpec(name=experiment_id, kind="mixed", explicit_jobs=_dedupe_jobs(jobs))
    return ExperimentSpec(
        experiment_id=experiment_id, sweep=sweep,
        description=description, paper_reference=paper_reference,
    )


# --------------------------------------------------------------------- #
# Figure presets
# --------------------------------------------------------------------- #
def fig3(
    smoke: bool = False,
    workload_names: Optional[Sequence[str]] = None,
    preset: str = "tiny",
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> ExperimentSpec:
    """Fig. 3a: distribution of crossbar bit-line outputs."""
    sweep = SweepSpec(
        name="fig3",
        kind="distribution",
        workloads=_figure_workloads(smoke, workloads, workload_names, preset),
        distributions=[
            DistributionParams(
                images=FIGURE_CAPTURE_IMAGES, batch_size=8,
                capacity_per_layer=50_000, seed=0,
            )
        ],
    )
    return ExperimentSpec(
        experiment_id="fig3",
        sweep=sweep,
        description="Distribution of crossbar bit-line outputs",
        paper_reference="Fig. 3a: highly imbalanced, bottom-heavy distributions",
    )


def fig6a(
    smoke: bool = False,
    workload_names: Optional[Sequence[str]] = None,
    preset: str = "tiny",
    images: Optional[int] = None,
    bits: Optional[Sequence[int]] = None,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> ExperimentSpec:
    """Fig. 6a: accuracy vs ADC resolution with a uniform ADC (no TRQ)."""
    bits = list(bits) if bits is not None else (
        [8, 4] if smoke else list(FIG6_SENSING_BITS)
    )
    images = images or (8 if smoke else FIGURE_EVAL_IMAGES)
    jobs: List[JobSpec] = []
    for workload in _figure_workloads(smoke, workloads, workload_names, preset):
        jobs += _reference_jobs(workload, images)
        jobs += _uniform_sensing_jobs(workload, images, bits)
    return _figure_experiment(
        "fig6a", jobs,
        "Accuracy vs ADC resolution, uniform ADC (no TRQ)",
        "Uniform quantization needs >= 7 bits to preserve accuracy (Fig. 6a)",
    )


def fig6b(
    smoke: bool = False,
    workload_names: Optional[Sequence[str]] = None,
    preset: str = "tiny",
    images: Optional[int] = None,
    bits: Optional[Sequence[int]] = None,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> ExperimentSpec:
    """Fig. 6b: accuracy vs ADC resolution *with* TRQ."""
    bits = list(bits) if bits is not None else (
        [8, 4] if smoke else list(FIG6_SENSING_BITS)
    )
    images = images or (8 if smoke else FIGURE_EVAL_IMAGES)
    jobs: List[JobSpec] = []
    for workload in _figure_workloads(smoke, workloads, workload_names, preset):
        # The uniform 4-bit point is the paper's comparison baseline.
        jobs += _uniform_sensing_jobs(workload, images, [4])
        jobs += _trq_calibration_jobs(workload, images, bits)
    return _figure_experiment(
        "fig6b", jobs,
        "Accuracy vs ADC resolution with TRQ",
        "TRQ at 4-bit sensing matches uniform conversion at 7-8 bits (Fig. 6b)",
    )


def fig6c(
    smoke: bool = False,
    workload_names: Optional[Sequence[str]] = None,
    preset: str = "tiny",
    images: Optional[int] = None,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> ExperimentSpec:
    """Fig. 6c: remaining A/D operations with TRQ (4-bit upper bound)."""
    images = images or (8 if smoke else FIGURE_EVAL_IMAGES)
    jobs: List[JobSpec] = []
    for workload in _figure_workloads(smoke, workloads, workload_names, preset):
        jobs += _trq_calibration_jobs(workload, images, [4])
    return _figure_experiment(
        "fig6c", jobs,
        "Remaining A/D operations with TRQ",
        "42%-62% of baseline operations remain (1.6-2.3x reduction)",
    )


def fig6(
    smoke: bool = False,
    workload_names: Optional[Sequence[str]] = None,
    preset: str = "tiny",
    images: Optional[int] = None,
    bits: Optional[Sequence[int]] = None,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> ExperimentSpec:
    """The union of Fig. 6a/6b/6c, deduplicated through the store addresses
    (the uniform 4-bit point and the 4-bit TRQ search each run once)."""
    bits = list(bits) if bits is not None else (
        [8, 4] if smoke else list(FIG6_SENSING_BITS)
    )
    images = images or (8 if smoke else FIGURE_EVAL_IMAGES)
    jobs: List[JobSpec] = []
    for workload in _figure_workloads(smoke, workloads, workload_names, preset):
        jobs += _reference_jobs(workload, images)
        jobs += _uniform_sensing_jobs(workload, images, bits if 4 in bits else [*bits, 4])
        jobs += _trq_calibration_jobs(workload, images, bits)
    return _figure_experiment(
        "fig6", jobs,
        "Sensing-precision sweeps: accuracy and A/D operations (Fig. 6a/6b/6c)",
        "TRQ preserves accuracy at 4-bit sensing and nearly halves A/D operations",
    )


def fig7(
    smoke: bool = False,
    workload_names: Optional[Sequence[str]] = None,
    preset: str = "tiny",
    images: Optional[int] = None,
    uniform_bits: int = 7,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> ExperimentSpec:
    """Fig. 7: accelerator energy breakdown (ISAAC vs TRQ vs uniform)."""
    images = images or (8 if smoke else FIGURE_EVAL_IMAGES)
    selected = _figure_workloads(smoke, workloads, workload_names, preset)
    jobs = [
        JobSpec(
            kind="power", workload=workload, images=images, batch_size=16,
            calibration=figure_calibration_params(workload, 4),
            power=PowerSpec(uniform_bits=uniform_bits),
            label={"workload": workload.name},
        )
        for workload in selected
    ]
    return _figure_experiment(
        "fig7", jobs,
        "Accelerator energy breakdown (ISAAC vs Ours vs UQ)",
        "ADC dominates the ISAAC baseline (>60%); TRQ cuts it without touching "
        "the other components (Fig. 7)",
    )


#: Registry of named presets for the CLI.
PRESETS: Dict[str, Callable[..., ExperimentSpec]] = {
    "robustness-noise": robustness_noise,
    "multi-workload-robustness": multi_workload_robustness,
    "ablation-calibration": ablation_calibration,
    "fig3": fig3,
    "fig6": fig6,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig6c": fig6c,
    "fig7": fig7,
}

#: Presets whose results render into paper-figure reports
#: (:func:`repro.report.figures.render_figure_outputs`).
FIGURE_PRESETS = ("fig3", "fig6", "fig6a", "fig6b", "fig6c", "fig7")


def available_presets() -> List[str]:
    return sorted(PRESETS)


def build_preset(name: str, smoke: bool = False, **overrides) -> ExperimentSpec:
    if name not in PRESETS:
        raise KeyError(
            f"unknown experiment preset '{name}', available: {available_presets()}"
        )
    return PRESETS[name](smoke=smoke, **overrides)
