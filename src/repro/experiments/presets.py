"""Built-in named experiment sweeps.

Each preset is a factory ``(smoke: bool, **overrides) -> ExperimentSpec``.
``--smoke`` variants shrink the training budget, grid and trial count to
seconds-fast CI jobs while exercising exactly the same code paths.  The
benchmark scripts under ``benchmarks/`` build their sweeps through these
factories so the grids live in one place.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.spec import (
    CalibrationParams,
    ExperimentSpec,
    NoiseScenario,
    SweepSpec,
    WorkloadSpec,
)

#: The multi-workload robustness trio (the paper's fourth workload,
#: resnet18, shares the squeezenet dataset shape; add it via overrides).
MULTI_WORKLOAD_NAMES = ("lenet5", "resnet20", "squeezenet1_1")


def sigma_fault_scenarios(
    sigmas: Sequence[float], fault_rates: Sequence[float], seed: int = 0
) -> List[NoiseScenario]:
    """The read-noise × stuck-at-fault grid used by the robustness sweeps."""
    scenarios = []
    for sigma in sigmas:
        for rate in fault_rates:
            models = []
            if sigma > 0.0:
                models.append({"model": "gaussian_read_noise", "sigma": float(sigma)})
            if rate > 0.0:
                models.append({"model": "stuck_at_faults", "rate_on": float(rate)})
            scenarios.append(
                NoiseScenario(
                    models=tuple(models),
                    seed=seed,
                    label={"sigma": float(sigma), "fault_rate": float(rate)},
                )
            )
    return scenarios


# --------------------------------------------------------------------- #
def robustness_noise(
    smoke: bool = False,
    sigmas: Optional[Sequence[float]] = None,
    fault_rates: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
    images: Optional[int] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """LeNet-5 TRQ accuracy under read-noise sigma × stuck-at fault rate."""
    if smoke:
        sigmas = list(sigmas) if sigmas is not None else [0.0, 0.5]
        fault_rates = list(fault_rates) if fault_rates is not None else [0.0, 1e-3]
        trials = trials or 2
        images = images or 8
        train_size, epochs = 128, 6
    else:
        sigmas = list(sigmas) if sigmas is not None else [0.0, 0.25, 0.5, 1.0, 2.0]
        fault_rates = (
            list(fault_rates) if fault_rates is not None else [0.0, 1e-3, 5e-3, 1e-2]
        )
        trials = trials or 8
        images = images or 48
        train_size, epochs = 256, 20
    sweep = SweepSpec(
        name="robustness-noise",
        kind="monte_carlo",
        workloads=[
            WorkloadSpec(
                "lenet5", preset="tiny", train_size=train_size,
                test_size=max(images, 32), calibration_images=16,
                epochs=epochs, seed=seed,
            )
        ],
        noises=sigma_fault_scenarios(sigmas, fault_rates, seed=seed),
        mc_seeds=[seed],
        trials=trials,
        images=images,
        batch_size=16,
    )
    return ExperimentSpec(
        experiment_id="robustness-noise",
        sweep=sweep,
        description="TRQ accuracy under device noise (sigma x fault rate)",
        paper_reference="beyond-paper robustness check (keyed noise subsystem)",
    )


def multi_workload_robustness(
    smoke: bool = False,
    workload_names: Sequence[str] = MULTI_WORKLOAD_NAMES,
    trials: Optional[int] = None,
    images: Optional[int] = None,
    mc_seeds: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Monte Carlo robustness over the multi-workload sweep (ROADMAP item)."""
    if smoke:
        trials = trials or 2
        images = images or 6
        train_size, epochs = 96, 3
        scenarios = sigma_fault_scenarios([0.5], [0.0, 1e-3], seed=seed)
        mc_seeds = list(mc_seeds) if mc_seeds is not None else [0, 1]
    else:
        trials = trials or 6
        images = images or 32
        train_size, epochs = 256, 12
        scenarios = sigma_fault_scenarios([0.25, 0.5, 1.0], [0.0, 1e-3], seed=seed)
        mc_seeds = list(mc_seeds) if mc_seeds is not None else [0]
    sweep = SweepSpec(
        name="multi-workload-robustness",
        kind="monte_carlo",
        workloads=[
            WorkloadSpec(
                name, preset="tiny", train_size=train_size,
                test_size=max(images, 32), calibration_images=16,
                epochs=epochs, seed=seed,
            )
            for name in workload_names
        ],
        noises=scenarios,
        mc_seeds=mc_seeds,
        trials=trials,
        images=images,
        batch_size=16,
    )
    return ExperimentSpec(
        experiment_id="multi-workload-robustness",
        sweep=sweep,
        description="Monte Carlo robustness across lenet5/resnet20/squeezenet",
        paper_reference="Section V-A workloads under device noise (beyond paper)",
    )


def ablation_calibration(
    smoke: bool = False,
    calibration_sizes: Optional[Sequence[int]] = None,
    images: Optional[int] = None,
    seed: int = 0,
    workload: Optional[WorkloadSpec] = None,
) -> ExperimentSpec:
    """TRQ calibration quality vs calibration-set size (Algorithm 1).

    ``workload`` overrides the default LeNet-5 preparation — the pytest
    benchmark passes its conftest-budget workload here so the sweep shares
    the benchmark suite's trained-weight cache while the grid and the
    experiment identity stay defined in this one place.
    """
    if smoke:
        calibration_sizes = list(calibration_sizes or (4, 16))
        images = images or 16
        train_size, epochs = 128, 6
    else:
        calibration_sizes = list(calibration_sizes or (4, 8, 16, 32))
        images = images or 32
        train_size, epochs = 256, 20
    if workload is None:
        workload = WorkloadSpec(
            "lenet5", preset="tiny", train_size=train_size, test_size=96,
            calibration_images=32, epochs=epochs, seed=seed,
        )
    sweep = SweepSpec(
        name="ablation-calibration",
        kind="calibration",
        workloads=[workload],
        calibrations=[
            CalibrationParams(calibration_size=size) for size in calibration_sizes
        ],
        images=images,
        batch_size=16,
    )
    return ExperimentSpec(
        experiment_id="abl-calib",
        sweep=sweep,
        description="TRQ calibration quality vs calibration-set size",
        paper_reference="Section V-A: 32 calibration images suffice (no retraining)",
    )


#: Registry of named presets for the CLI.
PRESETS: Dict[str, Callable[..., ExperimentSpec]] = {
    "robustness-noise": robustness_noise,
    "multi-workload-robustness": multi_workload_robustness,
    "ablation-calibration": ablation_calibration,
}


def available_presets() -> List[str]:
    return sorted(PRESETS)


def build_preset(name: str, smoke: bool = False, **overrides) -> ExperimentSpec:
    if name not in PRESETS:
        raise KeyError(
            f"unknown experiment preset '{name}', available: {available_presets()}"
        )
    return PRESETS[name](smoke=smoke, **overrides)
