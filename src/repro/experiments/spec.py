"""Declarative experiment specs.

A sweep is described *declaratively* — which workloads, which ADC
configurations, which non-ideality scenarios, which Monte Carlo seeds — and
:meth:`SweepSpec.expand` turns the grid into an ordered list of *atomic*
:class:`JobSpec` jobs.  Every job resolves to a plain-JSON dict
(:meth:`JobSpec.resolved`) that includes the workload's full configuration
fingerprint (:func:`repro.workloads.workload_fingerprint`), which is what
the content-addressed result store hashes: two jobs with the same resolved
dict are the same experiment, and any edited field — a preset's width
multiplier, a noise sigma, a trial count — yields a new address.

Three job kinds cover the repository's evaluation surface:

* ``evaluate`` — one deterministic (noise-free) datapath run under a given
  per-layer ADC configuration; also serves as the shared *clean reference*
  of Monte Carlo jobs (:meth:`JobSpec.clean_job`).
* ``monte_carlo`` — :meth:`repro.sim.PimSimulator.run_monte_carlo` trials
  under a keyed non-ideality stack.
* ``calibration`` — the Algorithm 1 co-design search
  (:class:`repro.core.CoDesignOptimizer`) under varying calibration budgets.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adc.config import AdcConfig, twin_range_config, uniform_config
from repro.core.trq import TRQParams
from repro.utils.config import canonical_json
from repro.workloads import default_epochs, workload_fingerprint

JOB_KINDS = ("evaluate", "monte_carlo", "calibration")


# --------------------------------------------------------------------- #
# Grid axes
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One workload preparation configuration (model + dataset + training)."""

    name: str
    preset: str = "tiny"
    train_size: int = 384
    test_size: int = 128
    calibration_images: int = 32
    epochs: Optional[int] = None
    seed: int = 0

    @property
    def resolved_epochs(self) -> int:
        return self.epochs if self.epochs is not None else default_epochs(self.preset)

    def resolved(self) -> Dict[str, object]:
        """Fully-resolved configuration, including the registry fingerprint.

        The fingerprint folds in the preset's structural parameters and the
        workload's dataset shape, so editing either re-addresses every
        dependent artifact.
        """
        return {
            "fingerprint": workload_fingerprint(
                self.name, self.preset, self.train_size, self.resolved_epochs, self.seed
            ),
            "test_size": int(self.test_size),
            "calibration_images": int(self.calibration_images),
        }

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class AdcSpec:
    """Per-layer ADC configuration applied uniformly to every MVM layer.

    ``mode="ideal"`` is the no-ADC reference (ideal conversion).  The
    twin-range defaults are the TRQ parameters the benchmarks use.
    """

    mode: str = "twin_range"  # "ideal" | "uniform" | "twin_range"
    resolution: int = 8
    v_grid: float = 1.0
    uniform_bits: Optional[int] = None
    n_r1: int = 2
    n_r2: int = 5
    m: int = 3
    delta_r1: float = 1.0
    bias: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("ideal", "uniform", "twin_range"):
            raise ValueError(f"unknown ADC mode {self.mode!r}")
        self.build_config()  # validate eagerly

    def build_config(self) -> Optional[AdcConfig]:
        """The :class:`~repro.adc.config.AdcConfig` this spec denotes."""
        if self.mode == "ideal":
            return None
        if self.mode == "uniform":
            return uniform_config(
                resolution=self.resolution, bits=self.uniform_bits, v_grid=self.v_grid
            )
        params = TRQParams(
            n_r1=self.n_r1, n_r2=self.n_r2, m=self.m,
            delta_r1=self.delta_r1, bias=self.bias,
        )
        return twin_range_config(params, resolution=self.resolution, v_grid=self.v_grid)

    def build_configs(self, layer_names: Sequence[str]) -> Optional[Dict[str, AdcConfig]]:
        config = self.build_config()
        if config is None:
            return None
        return {name: config for name in layer_names}

    def resolved(self) -> Dict[str, object]:
        """Only the fields the mode actually consumes, so e.g. editing the
        (unused) TRQ defaults of a ``uniform`` spec cannot re-address
        results that are bit-identical."""
        if self.mode == "ideal":
            return {"mode": self.mode}
        base = {
            "mode": self.mode,
            "resolution": int(self.resolution),
            "v_grid": float(self.v_grid),
        }
        if self.mode == "uniform":
            bits = self.uniform_bits if self.uniform_bits is not None else self.resolution
            base["uniform_bits"] = int(bits)
            return base
        base.update(
            n_r1=int(self.n_r1), n_r2=int(self.n_r2), m=int(self.m),
            delta_r1=float(self.delta_r1), bias=int(self.bias),
        )
        return base

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AdcSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class NoiseScenario:
    """One point of the non-ideality axis: registry model specs + base seed.

    ``models`` are the serializable registry dicts
    (:meth:`repro.nonideal.NonIdealityStack.specs` round-trips them); an
    empty tuple is the noise-free scenario.  ``label`` carries the sweep
    coordinates (e.g. ``{"sigma": 0.5, "fault_rate": 1e-3}``) into the
    aggregate table.
    """

    models: Tuple[Dict[str, object], ...] = ()
    seed: int = 0
    label: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Normalise mutable inputs (lists of dicts, dict labels) to the
        # hashable tuple forms the frozen dataclass stores.
        object.__setattr__(self, "models", tuple(dict(m) for m in self.models))
        label = self.label
        if isinstance(label, dict):
            label = tuple(sorted(label.items()))
        object.__setattr__(self, "label", tuple(tuple(item) for item in label))

    @property
    def label_dict(self) -> Dict[str, object]:
        return dict(self.label)

    def build_stack(self):
        """The keyed :class:`~repro.nonideal.NonIdealityStack` (or ``None``)."""
        if not self.models:
            return None
        from repro.nonideal.stack import NonIdealityStack

        return NonIdealityStack.from_specs(list(self.models), seed=self.seed)

    def resolved(self) -> Dict[str, object]:
        # ``label`` is reporting metadata (like JobSpec.label) and stays out
        # of the content address: relabelling a scenario must serve the
        # cached results, not re-run the grid.
        return {
            "models": [dict(m) for m in self.models],
            "seed": int(self.seed),
        }

    def to_dict(self) -> Dict[str, object]:
        return {**self.resolved(), "label": self.label_dict}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NoiseScenario":
        return cls(
            models=tuple(dict(m) for m in data.get("models", ())),
            seed=int(data.get("seed", 0)),
            label=data.get("label", ()),
        )


@dataclasses.dataclass(frozen=True)
class CalibrationParams:
    """Knobs of one Algorithm 1 co-design run (``kind="calibration"``)."""

    calibration_size: int = 32
    calib_seed: Optional[int] = None  # None: use calibration_size (legacy sweep)
    num_v_grid_candidates: int = 12
    max_samples_per_layer: int = 8192
    use_accuracy_loop: bool = False
    initial_n_max: int = 4

    @property
    def resolved_calib_seed(self) -> int:
        return self.calib_seed if self.calib_seed is not None else self.calibration_size

    def resolved(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["calib_seed"] = self.resolved_calib_seed
        return data

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CalibrationParams":
        return cls(**data)


# --------------------------------------------------------------------- #
# Atomic job
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One hashable atomic job of a sweep.

    ``label`` carries the job's grid coordinates into the aggregate row but
    is *reporting metadata*: it is excluded from the resolved spec (and
    therefore from the content address), so relabelling a sweep does not
    re-run it, and a Monte Carlo job's clean reference shares one artifact
    with the zero-noise grid point of the same configuration.  Labels are
    merged into rows at aggregation time from the spec itself, keeping the
    stored artifacts label-independent.
    """

    kind: str
    workload: WorkloadSpec
    adc: AdcSpec = AdcSpec()
    images: int = 32
    batch_size: int = 16
    engine: str = "fast"
    noise: Optional[NoiseScenario] = None
    trials: int = 0
    mc_seed: int = 0
    confidence: float = 0.95
    calibration: Optional[CalibrationParams] = None
    label: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r} (expected {JOB_KINDS})")
        if self.kind == "monte_carlo":
            # (Zero-noise scenarios are rewritten to evaluate jobs by
            # SweepSpec.expand, so a monte_carlo job always carries models.)
            if self.noise is None or not self.noise.models:
                raise ValueError("monte_carlo jobs need a non-empty noise scenario")
            if self.trials < 1:
                raise ValueError("monte_carlo jobs need trials >= 1")
        if self.kind == "calibration" and self.calibration is None:
            raise ValueError("calibration jobs need calibration params")
        label = self.label
        if isinstance(label, dict):
            label = tuple(sorted(label.items()))
        object.__setattr__(self, "label", tuple(tuple(item) for item in label))

    # ------------------------------------------------------------------ #
    @property
    def label_dict(self) -> Dict[str, object]:
        return dict(self.label)

    def resolved(self) -> Dict[str, object]:
        """The fully-resolved plain-JSON job description that gets hashed.

        Only inputs the job kind actually consumes are included, so editing
        an irrelevant field can never re-address (and hence recompute) a
        bit-identical result — e.g. calibration jobs ignore the sweep's ADC
        spec and engine because Algorithm 1 derives its own configurations
        on the default engine.
        """
        data: Dict[str, object] = {
            "kind": self.kind,
            "workload": self.workload.resolved(),
            "images": int(self.images),
            "batch_size": int(self.batch_size),
        }
        if self.kind in ("evaluate", "monte_carlo"):
            data["adc"] = self.adc.resolved()
            data["engine"] = self.engine
        if self.kind == "monte_carlo":
            data["noise"] = None if self.noise is None else self.noise.resolved()
            data["trials"] = int(self.trials)
            data["mc_seed"] = int(self.mc_seed)
            data["confidence"] = float(self.confidence)
        if self.kind == "calibration":
            data["calibration"] = self.calibration.resolved()
        return data

    def canonical(self) -> str:
        return canonical_json(self.resolved())

    def clean_job(self) -> "JobSpec":
        """The deterministic reference job shared by Monte Carlo siblings.

        Every ``monte_carlo`` job over the same (workload, ADC config,
        images, batch size, engine) maps to the *same* clean job — and hence
        the same store address — so the noise-free reference is computed
        once per configuration and shared across trials, grid points, and
        resumed runs.
        """
        return JobSpec(
            kind="evaluate",
            workload=self.workload,
            adc=self.adc,
            images=self.images,
            batch_size=self.batch_size,
            engine=self.engine,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "workload": self.workload.to_dict(),
            "adc": self.adc.to_dict(),
            "images": self.images,
            "batch_size": self.batch_size,
            "engine": self.engine,
            "noise": None if self.noise is None else self.noise.to_dict(),
            "trials": self.trials,
            "mc_seed": self.mc_seed,
            "confidence": self.confidence,
            "calibration": None if self.calibration is None else self.calibration.to_dict(),
            "label": self.label_dict,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        return cls(
            kind=data["kind"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            adc=AdcSpec.from_dict(data.get("adc", {})),
            images=int(data.get("images", 32)),
            batch_size=int(data.get("batch_size", 16)),
            engine=data.get("engine", "fast"),
            noise=(
                None if data.get("noise") is None
                else NoiseScenario.from_dict(data["noise"])
            ),
            trials=int(data.get("trials", 0)),
            mc_seed=int(data.get("mc_seed", 0)),
            confidence=float(data.get("confidence", 0.95)),
            calibration=(
                None if data.get("calibration") is None
                else CalibrationParams.from_dict(data["calibration"])
            ),
            label=data.get("label", ()),
        )


# --------------------------------------------------------------------- #
# Declarative sweep
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class SweepSpec:
    """A declarative grid over workloads × ADC configs × noise × MC seeds.

    :meth:`expand` enumerates the grid in a fixed nesting order (workload,
    then ADC, then noise scenario, then Monte Carlo seed / calibration
    point), so job indices — and therefore the order of the aggregate
    table's rows — are deterministic regardless of how the jobs execute.
    """

    name: str
    kind: str = "monte_carlo"
    workloads: List[WorkloadSpec] = dataclasses.field(default_factory=list)
    adcs: List[AdcSpec] = dataclasses.field(default_factory=lambda: [AdcSpec()])
    noises: List[NoiseScenario] = dataclasses.field(default_factory=list)
    mc_seeds: List[int] = dataclasses.field(default_factory=lambda: [0])
    calibrations: List[CalibrationParams] = dataclasses.field(default_factory=list)
    trials: int = 2
    images: int = 32
    batch_size: int = 16
    engine: str = "fast"
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r} (expected {JOB_KINDS})")
        if not self.workloads:
            raise ValueError("a sweep needs at least one workload")

    # ------------------------------------------------------------------ #
    def expand(self) -> List[JobSpec]:
        """The ordered atomic jobs of the grid."""
        jobs: List[JobSpec] = []
        multi_wl = len(self.workloads) > 1
        multi_adc = len(self.adcs) > 1
        multi_seed = len(self.mc_seeds) > 1
        for workload in self.workloads:
            for adc in self.adcs:
                base_label: Dict[str, object] = {"workload": workload.name}
                if multi_wl:
                    base_label["preset"] = workload.preset
                if multi_adc:
                    base_label["adc"] = _adc_label(adc)
                if self.kind == "evaluate":
                    jobs.append(
                        JobSpec(
                            kind="evaluate", workload=workload, adc=adc,
                            images=self.images, batch_size=self.batch_size,
                            engine=self.engine, label=base_label,
                        )
                    )
                elif self.kind == "monte_carlo":
                    for noise in self.noises or [NoiseScenario()]:
                        if not noise.models:
                            # A noise-free scenario *is* the clean reference:
                            # one deterministic evaluate job (the MC-seed axis
                            # is meaningless for it) instead of trivial trials.
                            label = dict(base_label)
                            label.update(noise.label_dict)
                            jobs.append(
                                JobSpec(
                                    kind="evaluate", workload=workload,
                                    adc=adc, images=self.images,
                                    batch_size=self.batch_size,
                                    engine=self.engine, label=label,
                                )
                            )
                            continue
                        for mc_seed in self.mc_seeds:
                            label = dict(base_label)
                            label.update(noise.label_dict)
                            if multi_seed:
                                label["mc_seed"] = mc_seed
                            jobs.append(
                                JobSpec(
                                    kind="monte_carlo", workload=workload,
                                    adc=adc, images=self.images,
                                    batch_size=self.batch_size,
                                    engine=self.engine, noise=noise,
                                    trials=self.trials, mc_seed=mc_seed,
                                    confidence=self.confidence, label=label,
                                )
                            )
                else:  # calibration
                    for calibration in self.calibrations or [CalibrationParams()]:
                        label = dict(base_label)
                        label["calibration_images"] = calibration.calibration_size
                        jobs.append(
                            JobSpec(
                                kind="calibration", workload=workload, adc=adc,
                                images=self.images, batch_size=self.batch_size,
                                engine=self.engine, calibration=calibration,
                                label=label,
                            )
                        )
        return jobs

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "workloads": [w.to_dict() for w in self.workloads],
            "adcs": [a.to_dict() for a in self.adcs],
            "noises": [n.to_dict() for n in self.noises],
            "mc_seeds": list(self.mc_seeds),
            "calibrations": [c.to_dict() for c in self.calibrations],
            "trials": self.trials,
            "images": self.images,
            "batch_size": self.batch_size,
            "engine": self.engine,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        return cls(
            name=data["name"],
            kind=data.get("kind", "monte_carlo"),
            workloads=[WorkloadSpec.from_dict(w) for w in data.get("workloads", [])],
            adcs=[AdcSpec.from_dict(a) for a in data.get("adcs", [{}])],
            noises=[NoiseScenario.from_dict(n) for n in data.get("noises", [])],
            mc_seeds=[int(s) for s in data.get("mc_seeds", [0])],
            calibrations=[
                CalibrationParams.from_dict(c) for c in data.get("calibrations", [])
            ],
            trials=int(data.get("trials", 2)),
            images=int(data.get("images", 32)),
            batch_size=int(data.get("batch_size", 16)),
            engine=data.get("engine", "fast"),
            confidence=float(data.get("confidence", 0.95)),
        )


@dataclasses.dataclass
class ExperimentSpec:
    """A named experiment: one sweep plus its reporting identity."""

    experiment_id: str
    sweep: SweepSpec
    description: str = ""
    paper_reference: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "paper_reference": self.paper_reference,
            "sweep": self.sweep.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        if "sweep" not in data:  # a bare sweep dict is accepted too
            sweep = SweepSpec.from_dict(data)
            return cls(experiment_id=sweep.name, sweep=sweep)
        return cls(
            experiment_id=data["experiment_id"],
            sweep=SweepSpec.from_dict(data["sweep"]),
            description=data.get("description", ""),
            paper_reference=data.get("paper_reference", ""),
        )


def _adc_label(adc: AdcSpec) -> str:
    if adc.mode == "ideal":
        return "ideal"
    if adc.mode == "uniform":
        bits = adc.uniform_bits if adc.uniform_bits is not None else adc.resolution
        return f"uniform{bits}"
    return f"trq{adc.n_r1}-{adc.n_r2}-m{adc.m}b{adc.bias}"
