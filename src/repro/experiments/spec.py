"""Declarative experiment specs.

A sweep is described *declaratively* — which workloads, which ADC
configurations, which non-ideality scenarios, which Monte Carlo seeds — and
:meth:`SweepSpec.expand` turns the grid into an ordered list of *atomic*
:class:`JobSpec` jobs.

**The hash contract.**  Every job resolves to a plain-JSON dict
(:meth:`JobSpec.resolved`) that includes the workload's full configuration
fingerprint (:func:`repro.workloads.workload_fingerprint`), and the
content-addressed result store hashes exactly that dict (plus the
code-version salt, see :mod:`repro.experiments.store`).  Two jobs with the
same resolved dict are the same experiment; any edited field the job kind
*consumes* — a preset's width multiplier, a noise sigma, a trial count, a
sensing-precision bit-width, a power-model constant — yields a new address
and therefore invalidates the stored result.  Conversely, fields a kind does
**not** consume (labels, a uniform spec's TRQ knobs, the engine of a
calibration job) are excluded from the resolved dict, so editing them keeps
serving the cached artifact.

Five job kinds cover the repository's evaluation surface:

* ``evaluate`` — one deterministic (noise-free) run.  The ``datapath`` axis
  selects what is evaluated: the PIM crossbar+ADC datapath (``"pim"``, the
  default — also the shared *clean reference* of Monte Carlo jobs, see
  :meth:`JobSpec.clean_job`), the trained float model (``"float"``, the
  paper's *f/f* reference) or the fake-quantized model (``"fakequant"``,
  the *8/f* reference).  The ADC axis includes ``uniform_calibrated`` mode,
  whose per-layer full-scale ranges derive from a shared bit-line
  distribution artifact (:meth:`JobSpec.distribution_job`) — the Fig. 6
  sensing-precision axis.
* ``monte_carlo`` — :meth:`repro.sim.PimSimulator.run_monte_carlo` trials
  under a keyed non-ideality stack.
* ``calibration`` — the Algorithm 1 co-design search
  (:class:`repro.core.CoDesignOptimizer`) under varying calibration budgets
  and sensing-precision caps (``initial_n_max`` — the Fig. 6b/6c axis).
* ``distribution`` — bit-line value capture on the calibration images
  (Fig. 3a); also the shared input of ``uniform_calibrated`` evaluations.
* ``power`` — the Fig. 7 accelerator energy breakdown (ISAAC baseline vs
  calibrated TRQ vs reduced-precision uniform), parameterized by a
  first-class :class:`PowerSpec` axis; shares its calibration sibling
  through the store (:meth:`JobSpec.calibration_job`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adc.config import AdcConfig, twin_range_config, uniform_config
from repro.core.trq import TRQParams
from repro.utils.config import canonical_json
from repro.workloads import default_epochs, workload_fingerprint

JOB_KINDS = ("evaluate", "monte_carlo", "calibration", "distribution", "power")

DATAPATHS = ("pim", "float", "fakequant")


# --------------------------------------------------------------------- #
# Grid axes
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One workload preparation configuration (model + dataset + training)."""

    name: str
    preset: str = "tiny"
    train_size: int = 384
    test_size: int = 128
    calibration_images: int = 32
    epochs: Optional[int] = None
    seed: int = 0

    @property
    def resolved_epochs(self) -> int:
        return self.epochs if self.epochs is not None else default_epochs(self.preset)

    def resolved(self) -> Dict[str, object]:
        """Fully-resolved configuration, including the registry fingerprint.

        The fingerprint folds in the preset's structural parameters and the
        workload's dataset shape, so editing either re-addresses every
        dependent artifact.
        """
        return {
            "fingerprint": workload_fingerprint(
                self.name, self.preset, self.train_size, self.resolved_epochs, self.seed
            ),
            "test_size": int(self.test_size),
            "calibration_images": int(self.calibration_images),
        }

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class AdcSpec:
    """Per-layer ADC configuration applied uniformly to every MVM layer.

    ``mode="ideal"`` is the no-ADC reference (ideal conversion).  The
    twin-range defaults are the TRQ parameters the benchmarks use.

    ``mode="uniform_calibrated"`` is the Fig. 6 sensing-precision axis: a
    ``uniform_bits``-bit uniform converter whose per-layer full scale is
    calibrated to the maximum bit-line value observed on the workload's
    calibration images (:func:`repro.core.uniform_adc_configs`).  The
    capture parameters (``calib_*``/``calib_capacity``) identify the shared
    bit-line distribution artifact the configs derive from — every
    bit-width over the same capture shares one stored distribution job.
    """

    mode: str = "twin_range"  # "ideal" | "uniform" | "twin_range" | "uniform_calibrated"
    resolution: int = 8
    v_grid: float = 1.0
    uniform_bits: Optional[int] = None
    n_r1: int = 2
    n_r2: int = 5
    m: int = 3
    delta_r1: float = 1.0
    bias: int = 0
    # uniform_calibrated only: the distribution-capture parameters.
    calib_images: int = 16
    calib_batch_size: int = 8
    calib_seed: int = 0
    calib_capacity: int = 100_000

    def __post_init__(self) -> None:
        if self.mode not in ("ideal", "uniform", "twin_range", "uniform_calibrated"):
            raise ValueError(f"unknown ADC mode {self.mode!r}")
        if self.mode == "uniform_calibrated":
            bits = self.resolved_uniform_bits
            if not 1 <= bits <= self.resolution:
                raise ValueError(
                    f"uniform_calibrated bits {bits} outside 1..{self.resolution}"
                )
        else:
            self.build_config()  # validate eagerly

    @property
    def resolved_uniform_bits(self) -> int:
        return self.uniform_bits if self.uniform_bits is not None else self.resolution

    @property
    def needs_distributions(self) -> bool:
        """True when building the configs requires bit-line samples."""
        return self.mode == "uniform_calibrated"

    def build_config(self) -> Optional[AdcConfig]:
        """The :class:`~repro.adc.config.AdcConfig` this spec denotes."""
        if self.mode == "ideal":
            return None
        if self.mode == "uniform_calibrated":
            raise ValueError(
                "uniform_calibrated configs derive from bit-line distributions; "
                "use build_configs_from_samples()"
            )
        if self.mode == "uniform":
            return uniform_config(
                resolution=self.resolution, bits=self.uniform_bits, v_grid=self.v_grid
            )
        params = TRQParams(
            n_r1=self.n_r1, n_r2=self.n_r2, m=self.m,
            delta_r1=self.delta_r1, bias=self.bias,
        )
        return twin_range_config(params, resolution=self.resolution, v_grid=self.v_grid)

    def build_configs(self, layer_names: Sequence[str]) -> Optional[Dict[str, AdcConfig]]:
        config = self.build_config()
        if config is None:
            return None
        return {name: config for name in layer_names}

    def build_configs_from_samples(self, layer_samples) -> Dict[str, AdcConfig]:
        """Range-calibrated per-layer configs from collected bit-line samples."""
        from repro.core.co_design import uniform_adc_configs  # lazy: avoids cycle

        return uniform_adc_configs(
            layer_samples, bits=self.resolved_uniform_bits, resolution=self.resolution
        )

    def distribution_params(self) -> "DistributionParams":
        """The capture that identifies the shared distribution artifact."""
        return DistributionParams(
            images=self.calib_images,
            batch_size=self.calib_batch_size,
            capacity_per_layer=self.calib_capacity,
            seed=self.calib_seed,
        )

    def resolved(self) -> Dict[str, object]:
        """Only the fields the mode actually consumes, so e.g. editing the
        (unused) TRQ defaults of a ``uniform`` spec cannot re-address
        results that are bit-identical."""
        if self.mode == "ideal":
            return {"mode": self.mode}
        if self.mode == "uniform_calibrated":
            # v_grid is derived from the captured distributions, not consumed.
            return {
                "mode": self.mode,
                "resolution": int(self.resolution),
                "uniform_bits": int(self.resolved_uniform_bits),
                "distribution": self.distribution_params().resolved(),
            }
        base = {
            "mode": self.mode,
            "resolution": int(self.resolution),
            "v_grid": float(self.v_grid),
        }
        if self.mode == "uniform":
            base["uniform_bits"] = int(self.resolved_uniform_bits)
            return base
        base.update(
            n_r1=int(self.n_r1), n_r2=int(self.n_r2), m=int(self.m),
            delta_r1=float(self.delta_r1), bias=int(self.bias),
        )
        return base

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AdcSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class DistributionParams:
    """One bit-line distribution capture (``kind="distribution"``).

    ``images`` counts *workload calibration images* (the capture runs on
    ``prepared.calibration.images[:images]``), so the sample arrays are a
    deterministic function of the workload fingerprint plus these fields.
    The reservoir ``capacity_per_layer`` is part of the identity because it
    changes which samples are retained (and hence the observed maxima).
    """

    images: int = 16
    batch_size: int = 8
    capacity_per_layer: int = 100_000
    seed: int = 0

    def resolved(self) -> Dict[str, object]:
        return {
            "images": int(self.images),
            "batch_size": int(self.batch_size),
            "capacity_per_layer": int(self.capacity_per_layer),
            "seed": int(self.seed),
        }

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DistributionParams":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class PowerSpec:
    """One point of the power-model axis (``kind="power"``, Fig. 7).

    ``uniform_bits`` is the resolution of the uniform-ADC alternative that
    reaches comparable accuracy (7-8 bits in the paper).  ``constants``
    optionally overrides individual :class:`repro.arch.EnergyConstants`
    fields; the *resolved* constants (defaults expanded) are part of the
    job address, so editing an energy constant — in the spec or in the
    library defaults — re-addresses every dependent breakdown.
    """

    uniform_bits: int = 7
    trq_label: str = "Ours/4b"
    constants: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.constants is not None:
            object.__setattr__(self, "constants", dict(self.constants))
        self.resolved_constants()  # validate overrides eagerly

    def resolved_constants(self) -> Dict[str, float]:
        from repro.arch.power import EnergyConstants  # lazy: heavy subpackage

        overrides = dict(self.constants or {})
        constants = EnergyConstants(**overrides)
        return {
            field.name: float(getattr(constants, field.name))
            for field in dataclasses.fields(constants)
        }

    def build_power_model(self):
        from repro.arch.power import EnergyConstants, PowerModel  # lazy

        return PowerModel(EnergyConstants(**dict(self.constants or {})))

    def resolved(self) -> Dict[str, object]:
        return {
            "uniform_bits": int(self.uniform_bits),
            "trq_label": str(self.trq_label),
            "constants": self.resolved_constants(),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "uniform_bits": self.uniform_bits,
            "trq_label": self.trq_label,
            "constants": None if self.constants is None else dict(self.constants),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PowerSpec":
        return cls(
            uniform_bits=int(data.get("uniform_bits", 7)),
            trq_label=data.get("trq_label", "Ours/4b"),
            constants=data.get("constants"),
        )


@dataclasses.dataclass(frozen=True)
class NoiseScenario:
    """One point of the non-ideality axis: registry model specs + base seed.

    ``models`` are the serializable registry dicts
    (:meth:`repro.nonideal.NonIdealityStack.specs` round-trips them); an
    empty tuple is the noise-free scenario.  ``label`` carries the sweep
    coordinates (e.g. ``{"sigma": 0.5, "fault_rate": 1e-3}``) into the
    aggregate table.
    """

    models: Tuple[Dict[str, object], ...] = ()
    seed: int = 0
    label: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Normalise mutable inputs (lists of dicts, dict labels) to the
        # hashable tuple forms the frozen dataclass stores.
        object.__setattr__(self, "models", tuple(dict(m) for m in self.models))
        label = self.label
        if isinstance(label, dict):
            label = tuple(sorted(label.items()))
        object.__setattr__(self, "label", tuple(tuple(item) for item in label))

    @property
    def label_dict(self) -> Dict[str, object]:
        return dict(self.label)

    def build_stack(self):
        """The keyed :class:`~repro.nonideal.NonIdealityStack` (or ``None``)."""
        if not self.models:
            return None
        from repro.nonideal.stack import NonIdealityStack

        return NonIdealityStack.from_specs(list(self.models), seed=self.seed)

    def resolved(self) -> Dict[str, object]:
        # ``label`` is reporting metadata (like JobSpec.label) and stays out
        # of the content address: relabelling a scenario must serve the
        # cached results, not re-run the grid.
        return {
            "models": [dict(m) for m in self.models],
            "seed": int(self.seed),
        }

    def to_dict(self) -> Dict[str, object]:
        return {**self.resolved(), "label": self.label_dict}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NoiseScenario":
        return cls(
            models=tuple(dict(m) for m in data.get("models", ())),
            seed=int(data.get("seed", 0)),
            label=data.get("label", ()),
        )


@dataclasses.dataclass(frozen=True)
class CalibrationParams:
    """Knobs of one Algorithm 1 co-design run (``kind="calibration"``).

    ``source`` selects the calibration images: ``"resampled"`` draws a fresh
    ``calibration_size``-image set from the training split (seeded by
    ``calib_seed`` — the calibration-size ablation), while ``"workload"``
    uses the workload's own prepared calibration split (truncated to
    ``calibration_size``) — exactly what the figure benchmarks feed the
    optimizer, so figure calibration jobs reproduce the pre-port pipeline
    bit for bit.  ``initial_n_max`` is the sensing-precision cap swept in
    Fig. 6b/6c.
    """

    calibration_size: int = 32
    calib_seed: Optional[int] = None  # None: use calibration_size (legacy sweep)
    num_v_grid_candidates: int = 12
    max_samples_per_layer: int = 8192
    use_accuracy_loop: bool = False
    initial_n_max: int = 4
    source: str = "resampled"  # "resampled" | "workload"

    def __post_init__(self) -> None:
        if self.source not in ("resampled", "workload"):
            raise ValueError(f"unknown calibration source {self.source!r}")

    @property
    def resolved_calib_seed(self) -> int:
        return self.calib_seed if self.calib_seed is not None else self.calibration_size

    def resolved(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        if self.source == "workload":
            # The workload split is fixed by the workload spec; the resample
            # seed is never consumed, so it must not re-address results.
            data.pop("calib_seed")
        else:
            data["calib_seed"] = self.resolved_calib_seed
        return data

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CalibrationParams":
        return cls(**data)


# --------------------------------------------------------------------- #
# Atomic job
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One hashable atomic job of a sweep.

    ``label`` carries the job's grid coordinates into the aggregate row but
    is *reporting metadata*: it is excluded from the resolved spec (and
    therefore from the content address), so relabelling a sweep does not
    re-run it, and a Monte Carlo job's clean reference shares one artifact
    with the zero-noise grid point of the same configuration.  Labels are
    merged into rows at aggregation time from the spec itself, keeping the
    stored artifacts label-independent.
    """

    kind: str
    workload: WorkloadSpec
    adc: AdcSpec = AdcSpec()
    images: int = 32
    batch_size: int = 16
    engine: str = "fast"
    datapath: str = "pim"
    noise: Optional[NoiseScenario] = None
    trials: int = 0
    mc_seed: int = 0
    confidence: float = 0.95
    calibration: Optional[CalibrationParams] = None
    distribution: Optional[DistributionParams] = None
    power: Optional[PowerSpec] = None
    label: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r} (expected {JOB_KINDS})")
        if self.datapath not in DATAPATHS:
            raise ValueError(
                f"unknown datapath {self.datapath!r} (expected {DATAPATHS})"
            )
        if self.kind == "monte_carlo":
            # (Zero-noise scenarios are rewritten to evaluate jobs by
            # SweepSpec.expand, so a monte_carlo job always carries models.)
            if self.noise is None or not self.noise.models:
                raise ValueError("monte_carlo jobs need a non-empty noise scenario")
            if self.trials < 1:
                raise ValueError("monte_carlo jobs need trials >= 1")
        if self.kind == "calibration" and self.calibration is None:
            raise ValueError("calibration jobs need calibration params")
        if self.kind == "distribution" and self.distribution is None:
            object.__setattr__(self, "distribution", DistributionParams())
        if self.kind == "power":
            if self.calibration is None:
                raise ValueError(
                    "power jobs need calibration params (the TRQ sibling "
                    "whose measured per-layer A/D operations they consume)"
                )
            if self.power is None:
                object.__setattr__(self, "power", PowerSpec())
        label = self.label
        if isinstance(label, dict):
            label = tuple(sorted(label.items()))
        object.__setattr__(self, "label", tuple(tuple(item) for item in label))

    # ------------------------------------------------------------------ #
    @property
    def label_dict(self) -> Dict[str, object]:
        return dict(self.label)

    def resolved(self) -> Dict[str, object]:
        """The fully-resolved plain-JSON job description that gets hashed.

        Only inputs the job kind actually consumes are included, so editing
        an irrelevant field can never re-address (and hence recompute) a
        bit-identical result — e.g. calibration jobs ignore the sweep's ADC
        spec and engine because Algorithm 1 derives its own configurations
        on the default engine.
        """
        data: Dict[str, object] = {
            "kind": self.kind,
            "workload": self.workload.resolved(),
        }
        if self.kind == "distribution":
            # The capture has its own image/batch parameters; the sweep-level
            # eval images/batch size are never consumed.
            data["distribution"] = self.distribution.resolved()
            return data
        data["images"] = int(self.images)
        if self.kind == "evaluate":
            data["datapath"] = self.datapath
            if self.datapath == "pim":
                data["batch_size"] = int(self.batch_size)
                data["adc"] = self.adc.resolved()
                data["engine"] = self.engine
            # float/fakequant references are single forward passes of the
            # trained (or fake-quantized) model: no ADC, engine or batching.
            return data
        data["batch_size"] = int(self.batch_size)
        if self.kind == "monte_carlo":
            data["adc"] = self.adc.resolved()
            data["engine"] = self.engine
            data["noise"] = None if self.noise is None else self.noise.resolved()
            data["trials"] = int(self.trials)
            data["mc_seed"] = int(self.mc_seed)
            data["confidence"] = float(self.confidence)
        if self.kind in ("calibration", "power"):
            data["calibration"] = self.calibration.resolved()
        if self.kind == "power":
            data["power"] = self.power.resolved()
        return data

    def canonical(self) -> str:
        return canonical_json(self.resolved())

    def dependencies(self) -> List["JobSpec"]:
        """The sibling jobs whose stored artifacts this job loads.

        *Direct* dependencies only — the scheduler
        (:mod:`repro.experiments.scheduler`) takes the transitive closure,
        so e.g. a Monte Carlo job over a calibrated-uniform ADC reaches its
        distribution capture both directly and through its clean reference
        (which itself depends on the capture), and the graph dedupes the two
        paths into one node.

        This is the single declarative source of the sweep-level dependency
        structure: the runner used to hard-code the same enumeration inline.
        """
        deps: List[JobSpec] = []
        if self.kind == "monte_carlo":
            deps.append(self.clean_job())
        if (
            self.kind in ("evaluate", "monte_carlo")
            and self.datapath == "pim"
            and self.adc.needs_distributions
        ):
            deps.append(self.distribution_job())
        if self.kind == "power":
            deps.append(self.calibration_job())
        return deps

    def clean_job(self) -> "JobSpec":
        """The deterministic reference job shared by Monte Carlo siblings.

        Every ``monte_carlo`` job over the same (workload, ADC config,
        images, batch size, engine) maps to the *same* clean job — and hence
        the same store address — so the noise-free reference is computed
        once per configuration and shared across trials, grid points, and
        resumed runs.
        """
        return JobSpec(
            kind="evaluate",
            workload=self.workload,
            adc=self.adc,
            images=self.images,
            batch_size=self.batch_size,
            engine=self.engine,
        )

    def distribution_job(self) -> "JobSpec":
        """The shared bit-line capture a ``uniform_calibrated`` evaluation
        derives its per-layer full-scale ranges from.

        Every bit-width over the same (workload, capture parameters) maps to
        the *same* distribution job — and hence the same store address — so
        the Fig. 6 sensing-precision sweep captures distributions once per
        workload, not once per precision.
        """
        return JobSpec(
            kind="distribution",
            workload=self.workload,
            distribution=self.adc.distribution_params(),
        )

    def calibration_job(self) -> "JobSpec":
        """The Algorithm 1 sibling a ``power`` job reads its measured
        per-layer A/D operation counts from.

        A Fig. 7 power job over the same (workload, calibration params,
        images, batch size) as a Fig. 6b/6c calibration job shares one
        stored artifact with it — the search runs once.
        """
        return JobSpec(
            kind="calibration",
            workload=self.workload,
            images=self.images,
            batch_size=self.batch_size,
            calibration=self.calibration,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "workload": self.workload.to_dict(),
            "adc": self.adc.to_dict(),
            "images": self.images,
            "batch_size": self.batch_size,
            "engine": self.engine,
            "datapath": self.datapath,
            "noise": None if self.noise is None else self.noise.to_dict(),
            "trials": self.trials,
            "mc_seed": self.mc_seed,
            "confidence": self.confidence,
            "calibration": None if self.calibration is None else self.calibration.to_dict(),
            "distribution": None if self.distribution is None else self.distribution.to_dict(),
            "power": None if self.power is None else self.power.to_dict(),
            "label": self.label_dict,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        return cls(
            kind=data["kind"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            adc=AdcSpec.from_dict(data.get("adc", {})),
            images=int(data.get("images", 32)),
            batch_size=int(data.get("batch_size", 16)),
            engine=data.get("engine", "fast"),
            datapath=data.get("datapath", "pim"),
            noise=(
                None if data.get("noise") is None
                else NoiseScenario.from_dict(data["noise"])
            ),
            trials=int(data.get("trials", 0)),
            mc_seed=int(data.get("mc_seed", 0)),
            confidence=float(data.get("confidence", 0.95)),
            calibration=(
                None if data.get("calibration") is None
                else CalibrationParams.from_dict(data["calibration"])
            ),
            distribution=(
                None if data.get("distribution") is None
                else DistributionParams.from_dict(data["distribution"])
            ),
            power=(
                None if data.get("power") is None
                else PowerSpec.from_dict(data["power"])
            ),
            label=data.get("label", ()),
        )


# --------------------------------------------------------------------- #
# Declarative sweep
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class SweepSpec:
    """A declarative grid over workloads × ADC configs × noise × MC seeds.

    :meth:`expand` enumerates the grid in a fixed nesting order (workload,
    then ADC, then noise scenario, then Monte Carlo seed / calibration /
    distribution / power point), so job indices — and therefore the order
    of the aggregate table's rows — are deterministic regardless of how the
    jobs execute.

    Grids are single-kind; sweeps that mix kinds (the figure pipelines,
    which pair reference evaluations with calibration searches) set
    ``kind="mixed"`` and list their jobs explicitly via ``explicit_jobs``
    (usually by concatenating the expansions of per-kind sub-grids).
    """

    name: str
    kind: str = "monte_carlo"
    workloads: List[WorkloadSpec] = dataclasses.field(default_factory=list)
    adcs: List[AdcSpec] = dataclasses.field(default_factory=lambda: [AdcSpec()])
    noises: List[NoiseScenario] = dataclasses.field(default_factory=list)
    mc_seeds: List[int] = dataclasses.field(default_factory=lambda: [0])
    calibrations: List[CalibrationParams] = dataclasses.field(default_factory=list)
    distributions: List[DistributionParams] = dataclasses.field(default_factory=list)
    powers: List[PowerSpec] = dataclasses.field(default_factory=list)
    trials: int = 2
    images: int = 32
    batch_size: int = 16
    engine: str = "fast"
    confidence: float = 0.95
    explicit_jobs: Optional[List[JobSpec]] = None

    def __post_init__(self) -> None:
        if self.kind == "mixed":
            if self.explicit_jobs is None:
                raise ValueError('kind="mixed" sweeps need explicit_jobs')
            return
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r} (expected {JOB_KINDS})")
        if not self.workloads and self.explicit_jobs is None:
            raise ValueError("a sweep needs at least one workload")

    # ------------------------------------------------------------------ #
    def expand(self) -> List[JobSpec]:
        """The ordered atomic jobs of the grid."""
        if self.explicit_jobs is not None:
            return list(self.explicit_jobs)
        jobs: List[JobSpec] = []
        multi_wl = len(self.workloads) > 1
        multi_adc = len(self.adcs) > 1
        multi_seed = len(self.mc_seeds) > 1
        if self.kind in ("distribution", "power"):
            # Neither kind consumes the ADC/noise axes.
            for workload in self.workloads:
                base_label = {"workload": workload.name}
                if multi_wl:
                    base_label["preset"] = workload.preset
                if self.kind == "distribution":
                    for params in self.distributions or [DistributionParams()]:
                        jobs.append(
                            JobSpec(
                                kind="distribution", workload=workload,
                                distribution=params, label=base_label,
                            )
                        )
                else:
                    for calibration in self.calibrations or [CalibrationParams()]:
                        for power in self.powers or [PowerSpec()]:
                            label = dict(base_label)
                            if len(self.powers) > 1:
                                label["uniform_bits"] = power.uniform_bits
                            jobs.append(
                                JobSpec(
                                    kind="power", workload=workload,
                                    images=self.images, batch_size=self.batch_size,
                                    calibration=calibration, power=power,
                                    label=label,
                                )
                            )
            return jobs
        for workload in self.workloads:
            for adc in self.adcs:
                base_label: Dict[str, object] = {"workload": workload.name}
                if multi_wl:
                    base_label["preset"] = workload.preset
                if multi_adc:
                    base_label["adc"] = _adc_label(adc)
                if self.kind == "evaluate":
                    jobs.append(
                        JobSpec(
                            kind="evaluate", workload=workload, adc=adc,
                            images=self.images, batch_size=self.batch_size,
                            engine=self.engine, label=base_label,
                        )
                    )
                elif self.kind == "monte_carlo":
                    for noise in self.noises or [NoiseScenario()]:
                        if not noise.models:
                            # A noise-free scenario *is* the clean reference:
                            # one deterministic evaluate job (the MC-seed axis
                            # is meaningless for it) instead of trivial trials.
                            label = dict(base_label)
                            label.update(noise.label_dict)
                            jobs.append(
                                JobSpec(
                                    kind="evaluate", workload=workload,
                                    adc=adc, images=self.images,
                                    batch_size=self.batch_size,
                                    engine=self.engine, label=label,
                                )
                            )
                            continue
                        for mc_seed in self.mc_seeds:
                            label = dict(base_label)
                            label.update(noise.label_dict)
                            if multi_seed:
                                label["mc_seed"] = mc_seed
                            jobs.append(
                                JobSpec(
                                    kind="monte_carlo", workload=workload,
                                    adc=adc, images=self.images,
                                    batch_size=self.batch_size,
                                    engine=self.engine, noise=noise,
                                    trials=self.trials, mc_seed=mc_seed,
                                    confidence=self.confidence, label=label,
                                )
                            )
                else:  # calibration
                    for calibration in self.calibrations or [CalibrationParams()]:
                        label = dict(base_label)
                        label["calibration_images"] = calibration.calibration_size
                        jobs.append(
                            JobSpec(
                                kind="calibration", workload=workload, adc=adc,
                                images=self.images, batch_size=self.batch_size,
                                engine=self.engine, calibration=calibration,
                                label=label,
                            )
                        )
        return jobs

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        data = {
            "name": self.name,
            "kind": self.kind,
            "workloads": [w.to_dict() for w in self.workloads],
            "adcs": [a.to_dict() for a in self.adcs],
            "noises": [n.to_dict() for n in self.noises],
            "mc_seeds": list(self.mc_seeds),
            "calibrations": [c.to_dict() for c in self.calibrations],
            "distributions": [d.to_dict() for d in self.distributions],
            "powers": [p.to_dict() for p in self.powers],
            "trials": self.trials,
            "images": self.images,
            "batch_size": self.batch_size,
            "engine": self.engine,
            "confidence": self.confidence,
        }
        if self.explicit_jobs is not None:
            data["explicit_jobs"] = [j.to_dict() for j in self.explicit_jobs]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        explicit = data.get("explicit_jobs")
        return cls(
            name=data["name"],
            kind=data.get("kind", "monte_carlo"),
            workloads=[WorkloadSpec.from_dict(w) for w in data.get("workloads", [])],
            adcs=[AdcSpec.from_dict(a) for a in data.get("adcs", [{}])],
            noises=[NoiseScenario.from_dict(n) for n in data.get("noises", [])],
            mc_seeds=[int(s) for s in data.get("mc_seeds", [0])],
            calibrations=[
                CalibrationParams.from_dict(c) for c in data.get("calibrations", [])
            ],
            distributions=[
                DistributionParams.from_dict(d) for d in data.get("distributions", [])
            ],
            powers=[PowerSpec.from_dict(p) for p in data.get("powers", [])],
            trials=int(data.get("trials", 2)),
            images=int(data.get("images", 32)),
            batch_size=int(data.get("batch_size", 16)),
            engine=data.get("engine", "fast"),
            confidence=float(data.get("confidence", 0.95)),
            explicit_jobs=(
                None if explicit is None
                else [JobSpec.from_dict(j) for j in explicit]
            ),
        )


@dataclasses.dataclass
class ExperimentSpec:
    """A named experiment: one sweep plus its reporting identity."""

    experiment_id: str
    sweep: SweepSpec
    description: str = ""
    paper_reference: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "paper_reference": self.paper_reference,
            "sweep": self.sweep.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        if "sweep" not in data:  # a bare sweep dict is accepted too
            sweep = SweepSpec.from_dict(data)
            return cls(experiment_id=sweep.name, sweep=sweep)
        return cls(
            experiment_id=data["experiment_id"],
            sweep=SweepSpec.from_dict(data["sweep"]),
            description=data.get("description", ""),
            paper_reference=data.get("paper_reference", ""),
        )


def _adc_label(adc: AdcSpec) -> str:
    if adc.mode == "ideal":
        return "ideal"
    if adc.mode == "uniform":
        return f"uniform{adc.resolved_uniform_bits}"
    if adc.mode == "uniform_calibrated":
        return f"ucal{adc.resolved_uniform_bits}"
    return f"trq{adc.n_r1}-{adc.n_r2}-m{adc.m}b{adc.bias}"
