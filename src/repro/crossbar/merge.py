"""Shift-and-add merging of sliced partial results.

Intermediate MVM results produced along bit lines, input cycles and crossbars
must be merged back into the full-precision dot product (paper Fig. 1 and the
modified S+A module of Fig. 5).  The functions here implement that digital
merge and serve as the *reference* implementation the mapped-layer fast path
is tested against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_in_range, check_integer


def weight_plane_factors(num_planes: int, bits_per_cell: int = 1) -> np.ndarray:
    """Binary weights of LSB-first weight slices: ``2^(plane · bits_per_cell)``."""
    check_in_range(check_integer(num_planes, "num_planes"), "num_planes", low=1)
    return np.array([1 << (p * bits_per_cell) for p in range(num_planes)], dtype=np.float64)


def input_cycle_factors(num_cycles: int, dac_bits: int = 1) -> np.ndarray:
    """Binary weights of LSB-first input cycles: ``2^(cycle · dac_bits)``."""
    check_in_range(check_integer(num_cycles, "num_cycles"), "num_cycles", low=1)
    return np.array([1 << (c * dac_bits) for c in range(num_cycles)], dtype=np.float64)


def shift_add_merge(
    partials: np.ndarray,
    bits_per_cell: int = 1,
    dac_bits: int = 1,
) -> np.ndarray:
    """Merge a full partial-sum tensor into signed MVM results.

    Parameters
    ----------
    partials:
        Array of shape ``(num_cycles, 2, num_planes, num_segments, batch, out)``
        holding bit-line results for every (input cycle, sign, weight plane,
        row segment) combination.  Index 0 of the sign axis is the positive
        crossbar, index 1 the negative crossbar.
    bits_per_cell, dac_bits:
        Slice widths used to produce the partials.

    Returns
    -------
    ``(batch, out)`` array of merged signed results.
    """
    partials = np.asarray(partials, dtype=np.float64)
    if partials.ndim != 6 or partials.shape[1] != 2:
        raise ValueError(
            "partials must have shape (cycles, 2, planes, segments, batch, out), "
            f"got {partials.shape}"
        )
    cycles, _, planes, _, _, _ = partials.shape
    cycle_f = input_cycle_factors(cycles, dac_bits).reshape(cycles, 1, 1, 1, 1, 1)
    sign_f = np.array([1.0, -1.0]).reshape(1, 2, 1, 1, 1, 1)
    plane_f = weight_plane_factors(planes, bits_per_cell).reshape(1, 1, planes, 1, 1, 1)
    weighted = partials * cycle_f * sign_f * plane_f
    return weighted.sum(axis=(0, 1, 2, 3))


def reference_integer_matmul(
    input_codes: np.ndarray, weight_codes: np.ndarray
) -> np.ndarray:
    """Exact integer MVM ``x @ W`` used as the golden reference in tests."""
    x = np.asarray(input_codes, dtype=np.int64)
    w = np.asarray(weight_codes, dtype=np.int64)
    if x.shape[-1] != w.shape[0]:
        raise ValueError(f"inner dimensions differ: {x.shape} @ {w.shape}")
    return (x @ w).astype(np.float64)
