"""Mapping quantized MVM layers onto crossbar resources.

:class:`MappedMVMLayer` is the workhorse of the PIM simulator: it takes the
integer weight matrix of one Conv2d/Linear layer (already lowered to a 2-D
``(in_features, out_features)`` matrix by im2col), applies the differential
positive/negative mapping, spatial weight bit-slicing and word-line
segmentation of the paper's datapath, and exposes a vectorised
``matmul(input_codes, adc)`` that reproduces — bit-line value by bit-line
value — what the accelerator's ADCs would digitise.

Layout of the internal "plane matrix"
-------------------------------------
All weight bit planes of both signs are packed side by side into one matrix
of shape ``(in_features, 2 · planes · out_features)`` with the output index
fastest, plane next and sign slowest.  One matmul per (input cycle, row
segment) then produces *every* bit-line value of that cycle/segment at once,
which keeps the Python overhead negligible while remaining exactly equivalent
to simulating each 128×128 array separately (verified by unit tests against
:func:`repro.crossbar.merge.shift_add_merge`).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.crossbar.slicing import (
    num_slices,
    slice_inputs_temporal,
    slice_weights_differential,
)
from repro.quantization.qconfig import DEFAULT_QUANT_CONFIG, QuantizationConfig
from repro.utils.validation import check_in_range, check_integer


@dataclasses.dataclass(frozen=True)
class CrossbarTopology:
    """Physical array parameters of the accelerator (paper Section V-A)."""

    crossbar_size: int = 128
    bits_per_cell: int = 1
    dac_bits: int = 1

    def __post_init__(self) -> None:
        check_in_range(check_integer(self.crossbar_size, "crossbar_size"), "crossbar_size", low=2)
        check_in_range(check_integer(self.bits_per_cell, "bits_per_cell"), "bits_per_cell", low=1, high=4)
        check_in_range(check_integer(self.dac_bits, "dac_bits"), "dac_bits", low=1, high=8)

    @property
    def ideal_adc_resolution(self) -> int:
        """Paper Eq. 2 with the stated architecture-level simplification:
        ``RADC,ideal = log2(S) + RDA + Rcell + δ`` where ``δ = −1`` when both
        the DAC and the cell are single-bit (so an S-row array with 1-bit
        operands needs ``log2(S) + 1`` bits)."""
        delta = -1 if (self.dac_bits == 1 and self.bits_per_cell == 1) else 0
        resolution = int(np.log2(self.crossbar_size)) + self.dac_bits + self.bits_per_cell + delta
        return max(1, resolution)


DEFAULT_TOPOLOGY = CrossbarTopology()


@dataclasses.dataclass
class MappingFootprint:
    """Resource accounting of one mapped layer."""

    in_features: int
    out_features: int
    num_segments: int
    num_weight_planes: int
    num_input_cycles: int
    total_columns: int
    num_crossbar_pairs: int
    conversions_per_mvm: int

    @property
    def num_crossbars(self) -> int:
        """Physical arrays used (a pair = one positive + one negative array)."""
        return 2 * self.num_crossbar_pairs


class MappedMVMLayer:
    """One MVM layer mapped onto ReRAM crossbars.

    Parameters
    ----------
    weight_codes:
        Signed integer weight matrix of shape ``(in_features, out_features)``
        (im2col-lowered for convolutions).
    quant_config:
        Bit-widths of the algorithm-level datapath (``Kw``, ``Ki``).
    topology:
        Crossbar size, cell and DAC resolutions.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        quant_config: QuantizationConfig = DEFAULT_QUANT_CONFIG,
        topology: CrossbarTopology = DEFAULT_TOPOLOGY,
    ) -> None:
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        if weight_codes.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D, got {weight_codes.shape}")
        self.quant_config = quant_config
        self.topology = topology
        self.in_features, self.out_features = weight_codes.shape

        magnitude_bits = quant_config.weight_magnitude_bits
        self.num_weight_planes = num_slices(magnitude_bits, topology.bits_per_cell)
        self.num_input_cycles = num_slices(quant_config.activation_bits, topology.dac_bits)

        pos_slices, neg_slices = slice_weights_differential(
            weight_codes, magnitude_bits, topology.bits_per_cell
        )
        # (2, planes, in, out) -> (in, 2, planes, out) -> (in, 2*planes*out)
        planes = np.stack([pos_slices, neg_slices], axis=0)
        self._plane_matrix = np.ascontiguousarray(
            planes.transpose(2, 0, 1, 3).reshape(
                self.in_features, 2 * self.num_weight_planes * self.out_features
            ),
            dtype=np.float32,
        )
        # Per-(sign, plane) merge factors.
        plane_shifts = np.array(
            [1 << (p * topology.bits_per_cell) for p in range(self.num_weight_planes)],
            dtype=np.float64,
        )
        self._merge_factors = np.stack([plane_shifts, -plane_shifts], axis=0)  # (2, planes)

        size = topology.crossbar_size
        self._segments: List[slice] = [
            slice(start, min(start + size, self.in_features))
            for start in range(0, self.in_features, size)
        ]

    # ------------------------------------------------------------------ #
    # resource accounting
    # ------------------------------------------------------------------ #
    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def segment_sizes(self) -> List[int]:
        return [seg.stop - seg.start for seg in self._segments]

    def footprint(self) -> MappingFootprint:
        """Crossbar usage and the number of A/D conversions per MVM (Eq. 3)."""
        size = self.topology.crossbar_size
        columns_per_sign = self.num_weight_planes * self.out_features
        crossbar_pairs = self.num_segments * (-(-columns_per_sign // size))
        conversions = (
            self.num_input_cycles
            * self.num_segments
            * 2
            * self.num_weight_planes
            * self.out_features
        )
        return MappingFootprint(
            in_features=self.in_features,
            out_features=self.out_features,
            num_segments=self.num_segments,
            num_weight_planes=self.num_weight_planes,
            num_input_cycles=self.num_input_cycles,
            total_columns=2 * columns_per_sign,
            num_crossbar_pairs=crossbar_pairs,
            conversions_per_mvm=conversions,
        )

    # ------------------------------------------------------------------ #
    # datapath
    # ------------------------------------------------------------------ #
    def bitline_partials(self, input_slice: np.ndarray, segment_index: int) -> np.ndarray:
        """Bit-line values of one (input cycle, row segment) combination.

        Parameters
        ----------
        input_slice:
            ``(batch, in_features)`` DAC codes of the current input cycle.
        segment_index:
            Which word-line segment (group of ≤ ``crossbar_size`` rows) drives
            the arrays.

        Returns
        -------
        ``(batch, 2 · planes · out_features)`` float32 array of exact integer
        bit-line values, ordered ``[sign, plane, out]`` with ``out`` fastest.
        """
        segment = self._segments[segment_index]
        x = np.asarray(input_slice, dtype=np.float32)[:, segment]
        return x @ self._plane_matrix[segment]

    def merge_partials(self, partials: np.ndarray) -> np.ndarray:
        """Shift-and-add merge of one cycle/segment block -> ``(batch, out)``."""
        batch = partials.shape[0]
        block = partials.reshape(batch, 2, self.num_weight_planes, self.out_features)
        return np.einsum(
            "bspo,sp->bo", block.astype(np.float64), self._merge_factors, optimize=True
        )

    def matmul(
        self,
        input_codes: np.ndarray,
        adc: Optional[object] = None,
        partial_observer: Optional[Callable[[np.ndarray], None]] = None,
    ) -> Tuple[np.ndarray, int]:
        """Execute the full bit-sliced MVM for a batch of input vectors.

        Parameters
        ----------
        input_codes:
            ``(batch, in_features)`` unsigned activation codes (``Ki`` bits).
        adc:
            Optional ADC model with a vectorised
            ``convert(values) -> (quantized_values, total_ops)`` method; when
            omitted the conversion is ideal (lossless) and the returned op
            count assumes the baseline ``RADC`` operations per conversion.
        partial_observer:
            Optional callable receiving every raw bit-line block (used to
            capture the value distributions of paper Fig. 3a).

        Returns
        -------
        results:
            ``(batch, out_features)`` merged signed integer results (float64).
        total_ops:
            Total number of A/D operations performed for the batch.
        """
        input_codes = np.asarray(input_codes)
        if input_codes.ndim != 2 or input_codes.shape[1] != self.in_features:
            raise ValueError(
                f"input_codes must be (batch, {self.in_features}), got {input_codes.shape}"
            )
        cycles = slice_inputs_temporal(
            input_codes, self.quant_config.activation_bits, self.topology.dac_bits
        )
        batch = input_codes.shape[0]
        accumulator = np.zeros((batch, self.out_features), dtype=np.float64)
        total_ops = 0
        baseline_ops = self.topology.ideal_adc_resolution

        for cycle_index in range(cycles.shape[0]):
            cycle_factor = float(1 << (cycle_index * self.topology.dac_bits))
            cycle_slice = cycles[cycle_index]
            for segment_index in range(self.num_segments):
                partials = self.bitline_partials(cycle_slice, segment_index)
                if partial_observer is not None:
                    partial_observer(partials)
                if adc is not None:
                    partials, ops = adc.convert(partials)
                    total_ops += int(ops)
                else:
                    total_ops += partials.size * baseline_ops
                accumulator += cycle_factor * self.merge_partials(partials)
        return accumulator, total_ops
