"""Mapping quantized MVM layers onto crossbar resources.

:class:`MappedMVMLayer` is the workhorse of the PIM simulator: it takes the
integer weight matrix of one Conv2d/Linear layer (already lowered to a 2-D
``(in_features, out_features)`` matrix by im2col), applies the differential
positive/negative mapping, spatial weight bit-slicing and word-line
segmentation of the paper's datapath, and exposes a vectorised
``matmul(input_codes, adc)`` that reproduces — bit-line value by bit-line
value — what the accelerator's ADCs would digitise.

Layout of the internal "plane matrix"
-------------------------------------
All weight bit planes of both signs are packed side by side into one matrix
of shape ``(in_features, 2 · planes · out_features)`` with the output index
fastest, plane next and sign slowest.  One matmul per (input cycle, row
segment) then produces *every* bit-line value of that cycle/segment at once,
which keeps the Python overhead negligible while remaining exactly equivalent
to simulating each 128×128 array separately (verified by unit tests against
:func:`repro.crossbar.merge.shift_add_merge`).

Simulation engines
------------------
``matmul`` offers two engines behind the ``engine`` switch:

* ``"reference"`` — the original loop over ``num_input_cycles ×
  num_segments`` blocks, one matmul and one element-wise ADC conversion per
  block.  Slow but maximally transparent; kept as the verification oracle.
* ``"fast"`` — the fused kernel: all input cycles of a batch are stacked into
  one ``(cycles · batch, segment_rows)`` operand so each segment needs a
  single matmul, and ADC conversion runs in the *integer domain*.  Bit-line
  values are exact non-negative integers bounded by ``segment_rows ·
  (2^RDA − 1) · (2^Rcell − 1)``, so LUT-capable ADCs (see
  :mod:`repro.adc.lut`) convert them with one integer gather and derive exact
  region/op totals from ``np.bincount`` instead of per-element float math.

Bit-reproducibility rests on the **integer-domain invariant**: every quantity
the datapath merges is an exact small integer.  ADCs with a uniform level
grid expose integer *output levels* ``k`` (quantized value = ``scale · k``
exactly), the shift-and-add factors and DAC cycle weights are signed powers
of two, and every partial sum stays far below ``2^53`` — so float64
accumulation is exact in *any* order.  Both engines therefore compute the
same exact integers, scale them once per output, and produce bit-identical
results with identical operation counts (asserted by the test suite and by
``benchmarks/bench_engine_fastpath.py``).  Converters without a level grid
(e.g. the non-uniform baseline) take an element-wise fallback inside the
fused kernel that replays the reference merge semantics.

Device non-idealities (the optional ``noise`` argument, a
:class:`repro.nonideal.stack.LayerNoiseState`) perturb the raw bit-line
blocks before conversion.  Because every perturbation is a *keyed,
counter-based* function of the block's logical coordinates (chunk, segment,
input cycle) rather than a shared RNG stream, both engines reconstruct the
same noise sample for sample and remain bit-identical under noise.
Integer-domain perturbations (stuck-at faults, quantized variation,
retention drift) keep the fused LUT conversion path — pure per-value maps
are even folded into the transfer LUT itself
(:func:`repro.adc.lut.compose_transfer_lut`) — while continuous
perturbations (read noise, analog variation, IR drop) route the fused
kernel through the element-wise fallback.

Observable differences are limited to the optional ``partial_observer``: the
reference engine emits blocks cycle-major, the fast engine segment-major
(block shapes and values are identical), and fast-engine blocks are
transient views into reused scratch buffers — observers must copy what they
keep.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.adc.lut import TrialLutGather, compose_transfer_lut, gather_levels
from repro.backend import active_ops
from repro.crossbar.slicing import (
    num_slices,
    slice_inputs_temporal,
    slice_weights_differential,
)
from repro.quantization.qconfig import DEFAULT_QUANT_CONFIG, QuantizationConfig
from repro.utils.validation import check_in_range, check_integer


@dataclasses.dataclass(frozen=True)
class CrossbarTopology:
    """Physical array parameters of the accelerator (paper Section V-A)."""

    crossbar_size: int = 128
    bits_per_cell: int = 1
    dac_bits: int = 1

    def __post_init__(self) -> None:
        check_in_range(check_integer(self.crossbar_size, "crossbar_size"), "crossbar_size", low=2)
        check_in_range(check_integer(self.bits_per_cell, "bits_per_cell"), "bits_per_cell", low=1, high=4)
        check_in_range(check_integer(self.dac_bits, "dac_bits"), "dac_bits", low=1, high=8)

    @property
    def ideal_adc_resolution(self) -> int:
        """Paper Eq. 2 with the stated architecture-level simplification:
        ``RADC,ideal = log2(S) + RDA + Rcell + δ`` where ``δ = −1`` when both
        the DAC and the cell are single-bit (so an S-row array with 1-bit
        operands needs ``log2(S) + 1`` bits)."""
        delta = -1 if (self.dac_bits == 1 and self.bits_per_cell == 1) else 0
        resolution = int(np.log2(self.crossbar_size)) + self.dac_bits + self.bits_per_cell + delta
        return max(1, resolution)


DEFAULT_TOPOLOGY = CrossbarTopology()


@dataclasses.dataclass
class MappingFootprint:
    """Resource accounting of one mapped layer."""

    in_features: int
    out_features: int
    num_segments: int
    num_weight_planes: int
    num_input_cycles: int
    total_columns: int
    num_crossbar_pairs: int
    conversions_per_mvm: int

    @property
    def num_crossbars(self) -> int:
        """Physical arrays used (a pair = one positive + one negative array)."""
        return 2 * self.num_crossbar_pairs


class MappedMVMLayer:
    """One MVM layer mapped onto ReRAM crossbars.

    Parameters
    ----------
    weight_codes:
        Signed integer weight matrix of shape ``(in_features, out_features)``
        (im2col-lowered for convolutions).
    quant_config:
        Bit-widths of the algorithm-level datapath (``Kw``, ``Ki``).
    topology:
        Crossbar size, cell and DAC resolutions.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        quant_config: QuantizationConfig = DEFAULT_QUANT_CONFIG,
        topology: CrossbarTopology = DEFAULT_TOPOLOGY,
    ) -> None:
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        if weight_codes.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D, got {weight_codes.shape}")
        self.quant_config = quant_config
        self.topology = topology
        self.in_features, self.out_features = weight_codes.shape

        magnitude_bits = quant_config.weight_magnitude_bits
        self.num_weight_planes = num_slices(magnitude_bits, topology.bits_per_cell)
        self.num_input_cycles = num_slices(quant_config.activation_bits, topology.dac_bits)

        pos_slices, neg_slices = slice_weights_differential(
            weight_codes, magnitude_bits, topology.bits_per_cell
        )
        # (2, planes, in, out) -> (in, 2, planes, out) -> (in, 2*planes*out)
        planes = np.stack([pos_slices, neg_slices], axis=0)
        self._plane_matrix = np.ascontiguousarray(
            planes.transpose(2, 0, 1, 3).reshape(
                self.in_features, 2 * self.num_weight_planes * self.out_features
            ),
            dtype=np.float32,
        )
        # Per-(sign, plane) merge factors.
        plane_shifts = np.array(
            [1 << (p * topology.bits_per_cell) for p in range(self.num_weight_planes)],
            dtype=np.float64,
        )
        self._merge_factors = np.stack([plane_shifts, -plane_shifts], axis=0)  # (2, planes)
        # Fused (cycle, sign, plane) factors of the fast engine: every entry is
        # an exact (signed) power of two, so multiplying integer levels by it
        # and summing in float64 is exact arithmetic.
        cycle_shifts = np.array(
            [1 << (c * topology.dac_bits) for c in range(self.num_input_cycles)],
            dtype=np.float64,
        )
        self._fused_factors = cycle_shifts[:, None, None] * self._merge_factors[None, :, :]

        size = topology.crossbar_size
        self._segments: List[slice] = [
            slice(start, min(start + size, self.in_features))
            for start in range(0, self.in_features, size)
        ]
        # Exact upper bound on any bit-line value of this layer: the largest
        # per-segment column sum of the plane matrix times the largest DAC
        # code.  Sizes the ADC transfer LUTs of the fast engine.
        dac_max = (1 << topology.dac_bits) - 1
        self._max_bitline = int(
            dac_max
            * max(
                (float(self._plane_matrix[seg].sum(axis=0).max()) for seg in self._segments),
                default=0.0,
            )
        )

    # ------------------------------------------------------------------ #
    # resource accounting
    # ------------------------------------------------------------------ #
    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def max_bitline_value(self) -> int:
        """Largest bit-line value this layer can produce (LUT bound)."""
        return self._max_bitline

    @property
    def segment_sizes(self) -> List[int]:
        return [seg.stop - seg.start for seg in self._segments]

    def footprint(self) -> MappingFootprint:
        """Crossbar usage and the number of A/D conversions per MVM (Eq. 3)."""
        size = self.topology.crossbar_size
        columns_per_sign = self.num_weight_planes * self.out_features
        crossbar_pairs = self.num_segments * (-(-columns_per_sign // size))
        conversions = (
            self.num_input_cycles
            * self.num_segments
            * 2
            * self.num_weight_planes
            * self.out_features
        )
        return MappingFootprint(
            in_features=self.in_features,
            out_features=self.out_features,
            num_segments=self.num_segments,
            num_weight_planes=self.num_weight_planes,
            num_input_cycles=self.num_input_cycles,
            total_columns=2 * columns_per_sign,
            num_crossbar_pairs=crossbar_pairs,
            conversions_per_mvm=conversions,
        )

    # ------------------------------------------------------------------ #
    # datapath
    # ------------------------------------------------------------------ #
    def bitline_partials(self, input_slice: np.ndarray, segment_index: int) -> np.ndarray:
        """Bit-line values of one (input cycle, row segment) combination.

        Parameters
        ----------
        input_slice:
            ``(batch, in_features)`` DAC codes of the current input cycle.
        segment_index:
            Which word-line segment (group of ≤ ``crossbar_size`` rows) drives
            the arrays.

        Returns
        -------
        ``(batch, 2 · planes · out_features)`` float32 array of exact integer
        bit-line values, ordered ``[sign, plane, out]`` with ``out`` fastest.
        """
        segment = self._segments[segment_index]
        x = np.asarray(input_slice, dtype=np.float32)[:, segment]
        return x @ self._plane_matrix[segment]

    def merge_partials(self, partials: np.ndarray) -> np.ndarray:
        """Shift-and-add merge of one cycle/segment block -> ``(batch, out)``."""
        batch = partials.shape[0]
        block = partials.reshape(batch, 2, self.num_weight_planes, self.out_features)
        return np.einsum(
            "bspo,sp->bo",
            np.asarray(block, dtype=np.float64),
            self._merge_factors,
            optimize=True,
        )

    def matmul(
        self,
        input_codes: np.ndarray,
        adc: Optional[object] = None,
        partial_observer: Optional[Callable[[np.ndarray], None]] = None,
        engine: str = "reference",
        noise: Optional[object] = None,
    ) -> Tuple[np.ndarray, int]:
        """Execute the full bit-sliced MVM for a batch of input vectors.

        Parameters
        ----------
        input_codes:
            ``(batch, in_features)`` unsigned activation codes (``Ki`` bits).
        adc:
            Optional ADC model with a vectorised
            ``convert(values) -> (quantized_values, total_ops)`` method; when
            omitted the conversion is ideal (lossless) and the returned op
            count assumes the baseline ``RADC`` operations per conversion.
        partial_observer:
            Optional callable receiving every raw bit-line block (used to
            capture the value distributions of paper Fig. 3a).  Observers see
            the *ideal* (pre-noise) values.
        engine:
            ``"reference"`` (per-cycle/segment loop, the oracle) or ``"fast"``
            (fused cycles + integer-domain LUT conversion).  Both produce
            bit-identical results and identical operation counts; see the
            module docstring.
        noise:
            Optional :class:`repro.nonideal.stack.LayerNoiseState` bound to
            this layer.  Perturbations are keyed on (chunk, segment, cycle),
            so both engines apply identical noise and stay bit-identical.

        Returns
        -------
        results:
            ``(batch, out_features)`` merged signed integer results (float64).
        total_ops:
            Total number of A/D operations performed for the batch.
        """
        input_codes = np.asarray(input_codes)
        if input_codes.ndim != 2 or input_codes.shape[1] != self.in_features:
            raise ValueError(
                f"input_codes must be (batch, {self.in_features}), got {input_codes.shape}"
            )
        if engine == "reference":
            cycles = slice_inputs_temporal(
                input_codes, self.quant_config.activation_bits, self.topology.dac_bits
            )
            return self._matmul_reference(cycles, adc, partial_observer, noise)
        if engine == "fast":
            return self._matmul_fast(input_codes, adc, partial_observer, noise)
        raise ValueError(f"unknown engine {engine!r} (expected 'fast' or 'reference')")

    def _stack_cycles(self, input_codes: np.ndarray) -> np.ndarray:
        """Temporal slicing fused with cycle stacking for the fast engine.

        Writes the ``num_cycles`` DAC slices directly into one reused
        ``(cycles · batch, in_features)`` float32 operand (cycle-major), with
        the same range validation and slice values as
        :func:`repro.crossbar.slicing.slice_inputs_temporal`.
        """
        activation_bits = self.quant_config.activation_bits
        dac_bits = self.topology.dac_bits
        batch = input_codes.shape[0]
        codes = input_codes.astype(np.int64, copy=False)
        if codes.size:
            if codes.min() < 0:
                raise ValueError("bit_slice expects non-negative integers")
            if codes.max() >= (1 << activation_bits):
                raise ValueError(
                    f"values exceed {activation_bits} bits (max={codes.max()})"
                )
        stacked = self._fast_buffer(
            "stacked", (self.num_input_cycles * batch, self.in_features), np.float32
        )
        view = stacked.reshape(self.num_input_cycles, batch, self.in_features)
        mask = (1 << dac_bits) - 1
        for cycle_index in range(self.num_input_cycles):
            np.copyto(
                view[cycle_index],
                (codes >> (cycle_index * dac_bits)) & mask,
                casting="unsafe",
            )
        return stacked

    def _matmul_reference(
        self,
        cycles: np.ndarray,
        adc: Optional[object],
        partial_observer: Optional[Callable[[np.ndarray], None]],
        noise: Optional[object] = None,
    ) -> Tuple[np.ndarray, int]:
        """The per-``(cycle, segment)`` block loop (oracle path).

        LUT-free by construction: conversions go through the ADC's
        transparent per-element float formulas (``convert_levels`` when the
        converter has an integer level grid, ``convert`` otherwise), so this
        path independently defines the behaviour the fused engine must
        reproduce.  For level-grid converters the loop merges integer levels
        and applies the step scale once per output — the integer-domain
        semantics of the datapath — which can differ from scaling each
        reconstructed value individually by ~1 ulp per sample.  Noise, when
        given, perturbs each raw block after the observer and before
        conversion, via the keyed sampling that both engines share.
        """
        batch = cycles.shape[1]
        accumulator = np.zeros((batch, self.out_features), dtype=np.float64)
        total_ops = 0
        baseline_ops = self.topology.ideal_adc_resolution
        convert_levels = getattr(adc, "convert_levels", None)
        scale = float(adc.level_scale) if convert_levels is not None else 1.0

        for cycle_index in range(cycles.shape[0]):
            cycle_factor = float(1 << (cycle_index * self.topology.dac_bits))
            cycle_slice = cycles[cycle_index]
            for segment_index in range(self.num_segments):
                partials = self.bitline_partials(cycle_slice, segment_index)
                if partial_observer is not None:
                    partial_observer(partials)
                if noise is not None:
                    partials = noise.perturb_block(partials, segment_index, cycle_index)
                if adc is None:
                    total_ops += partials.size * baseline_ops
                elif convert_levels is not None:
                    partials, ops = convert_levels(partials)
                    total_ops += int(ops)
                else:
                    partials, ops = adc.convert(partials)
                    total_ops += int(ops)
                accumulator += cycle_factor * self.merge_partials(partials)
        if scale != 1.0:
            accumulator *= scale
        return accumulator, total_ops

    #: Elements per conversion tile of the fast engine; sized so the tile's
    #: integer codes and gathered levels stay cache-resident.
    _FAST_TILE = 1 << 18

    def _matmul_fast(
        self,
        input_codes: np.ndarray,
        adc: Optional[object],
        partial_observer: Optional[Callable[[np.ndarray], None]],
        noise: Optional[object] = None,
    ) -> Tuple[np.ndarray, int]:
        """Fused kernel: one matmul per segment, integer-domain conversion.

        All input cycles are stacked into a single ``(cycles · batch, rows)``
        operand per segment, so the matmul count drops from ``cycles ×
        segments`` to ``segments``.  ADCs with an integer level grid (see
        :mod:`repro.adc.lut`) are applied as a tiled integer gather of output
        *levels*; the cycle/plane/sign merge then collapses into a single
        einsum per segment whose factors are exact powers of two, making
        every partial sum exact integer arithmetic in float64 — bit-identical
        to the reference loop regardless of summation order.  Exact operation
        and region totals come from ``np.bincount`` on the same codes.
        Converters without a level grid (e.g. the non-uniform baseline) fall
        back to element-wise conversion on the fused block with the
        reference engine's merge semantics.

        Integer-domain noise keeps this path: pure per-value maps are folded
        into the transfer LUT (zero per-element cost), column-dependent
        integer perturbations are applied per (cycle, segment) block before
        the gather with the LUT sized to the perturbed bound.  Continuous
        noise leaves the integer domain and routes through the fallback.

        Blocks handed to ``partial_observer`` are transient views into a
        reused buffer — observers must copy what they keep (the distribution
        collector does).
        """
        num_cycles, batch = self.num_input_cycles, input_codes.shape[0]
        stacked = self._stack_cycles(input_codes)
        integer_noise = noise is None or noise.integer_domain
        lut = None
        value_mapped = False
        if adc is not None:
            transfer_lut = getattr(adc, "transfer_lut", None)
            if transfer_lut is not None and integer_noise:
                if noise is None:
                    lut = transfer_lut(self._max_bitline)
                else:
                    vmap = noise.pure_value_map()
                    if vmap is not None:
                        lut = transfer_lut(int(vmap.max(initial=0)))
                        if lut.levels is not None:
                            lut = compose_transfer_lut(lut, vmap)
                            value_mapped = True
                    else:
                        lut = transfer_lut(noise.lut_bound)
                if lut is not None and lut.levels is None:
                    lut = None
            if lut is None:
                return self._matmul_fast_fallback(
                    stacked, num_cycles, batch, adc, partial_observer, noise
                )
        elif not integer_noise:
            # Ideal conversion under continuous noise merges floats, where
            # summation order matters; replay the reference order.
            return self._matmul_fast_fallback(
                stacked, num_cycles, batch, None, partial_observer, noise
            )

        ops_shim = active_ops()
        perturb_blocks = noise is not None and not value_mapped
        total_ops = 0
        cols = 2 * self.num_weight_planes * self.out_features
        block_shape = (num_cycles, batch, 2 * self.num_weight_planes, self.out_features)
        fused_factors = self._fused_factors.reshape(num_cycles, -1)
        accumulator = np.zeros((batch, self.out_features), dtype=np.float64)
        partials_buf = self._fast_buffer("partials", (num_cycles * batch, cols), np.float32)
        if perturb_blocks:
            noisy_buf = self._fast_buffer("noisy", (num_cycles * batch, cols), np.float64)
        if lut is not None:
            counts = np.zeros(lut.values.size, dtype=np.int64)
            levels_buf = self._fast_buffer(
                "levels", (num_cycles * batch, cols), lut.levels.dtype
            )

        for segment_index, segment in enumerate(self._segments):
            ops_shim.matmul(
                stacked[:, segment], self._plane_matrix[segment], out=partials_buf
            )
            if partial_observer is not None:
                blocks = partials_buf.reshape(num_cycles, batch, cols)
                for cycle_index in range(num_cycles):
                    partial_observer(blocks[cycle_index])
            if perturb_blocks:
                # Same keyed draws as the reference loop's per-block calls.
                raw = partials_buf.reshape(num_cycles, batch, cols)
                noisy = noisy_buf.reshape(num_cycles, batch, cols)
                for cycle_index in range(num_cycles):
                    np.copyto(
                        noisy[cycle_index],
                        noise.perturb_block(raw[cycle_index], segment_index, cycle_index),
                    )
                conversion_source = noisy_buf
            else:
                conversion_source = partials_buf
            if lut is None:
                total_ops += partials_buf.size * self.topology.ideal_adc_resolution
                merged_source = conversion_source
            else:
                gather_levels(
                    lut,
                    conversion_source.reshape(-1),
                    counts,
                    levels_buf.reshape(-1),
                    tile=self._FAST_TILE,
                )
                merged_source = levels_buf
            # Contract the (cycle, sign·plane) axes with the fused power-of-two
            # factors — exact float64 accumulation, tiled over the batch so the
            # contraction operands stay cache-resident.
            blocks = merged_source.reshape(block_shape)
            row_tile = max(1, self._FAST_TILE // max(1, num_cycles * cols))
            for start in range(0, batch, row_tile):
                stop = min(start + row_tile, batch)
                accumulator[start:stop] += np.tensordot(
                    blocks[:, start:stop], fused_factors, axes=([0, 2], [0, 1])
                )

        if lut is not None:
            total_ops += adc.record_code_counts(counts, lut)
            if lut.scale != 1.0:
                accumulator *= lut.scale
        return accumulator, total_ops

    def _matmul_fast_fallback(
        self,
        stacked: np.ndarray,
        num_cycles: int,
        batch: int,
        adc: Optional[object],
        partial_observer: Optional[Callable[[np.ndarray], None]],
        noise: Optional[object] = None,
    ) -> Tuple[np.ndarray, int]:
        """Fused-GEMM path for element-wise (non-LUT) conversion.

        One matmul per segment is kept; conversion and noise run per
        (cycle, segment) block — the same blocks, values and keyed noise
        draws as the reference loop — so the result matches the loop path
        bit for bit whenever the converter is deterministic.  Converters
        with an integer level grid merge integer levels (scale applied once
        per output), which is order-free exact arithmetic and is accumulated
        directly.  Converters without one (and ideal conversion of
        continuous-noise floats) merge floats, where order matters: their
        ``cycles × segments`` contributions are replayed in the reference
        order, trading memory for bit-parity at large ``chunk_size`` —
        shrink the chunk if that matters.
        """
        total_ops = 0
        baseline_ops = self.topology.ideal_adc_resolution
        convert_levels = getattr(adc, "convert_levels", None) if adc is not None else None
        scale = float(adc.level_scale) if convert_levels is not None else 1.0
        # Integer levels merge exactly in any order; float merges replay the
        # reference (cycle-major) accumulation order.
        preserve_order = convert_levels is None
        ops_shim = active_ops()
        accumulator = np.zeros((batch, self.out_features), dtype=np.float64)
        contributions: List[List[np.ndarray]] = [[] for _ in range(num_cycles)]
        for segment_index, segment in enumerate(self._segments):
            partials = ops_shim.matmul(stacked[:, segment], self._plane_matrix[segment])
            blocks = partials.reshape(num_cycles, batch, -1)
            if partial_observer is not None:
                for cycle_index in range(num_cycles):
                    partial_observer(blocks[cycle_index])
            for cycle_index in range(num_cycles):
                block = blocks[cycle_index]
                if noise is not None:
                    block = noise.perturb_block(block, segment_index, cycle_index)
                if adc is None:
                    quantized = block
                    total_ops += block.size * baseline_ops
                elif convert_levels is not None:
                    quantized, ops = convert_levels(block)
                    total_ops += int(ops)
                else:
                    quantized, ops = adc.convert(block)
                    total_ops += int(ops)
                cycle_factor = float(1 << (cycle_index * self.topology.dac_bits))
                contribution = cycle_factor * self.merge_partials(quantized)
                if preserve_order:
                    contributions[cycle_index].append(contribution)
                else:
                    accumulator += contribution
        for per_cycle in contributions:
            for contribution in per_cycle:
                accumulator += contribution
        if scale != 1.0:
            accumulator *= scale
        return accumulator, total_ops

    # ------------------------------------------------------------------ #
    # batched Monte Carlo datapath
    # ------------------------------------------------------------------ #
    def matmul_trials(
        self,
        input_codes: np.ndarray,
        adcs: Optional[List[object]],
        noise,
        engine: str = "fast",
    ) -> Tuple[np.ndarray, List[int]]:
        """Execute one MVM batch for several Monte Carlo trials at once.

        Parameters
        ----------
        input_codes:
            ``(trials, batch, in_features)`` unsigned activation codes —
            ``input_codes[t]`` is what a solo run of trial ``t`` would pass
            to :meth:`matmul` for this chunk.
        adcs:
            Per-trial ADC instances (or ``None`` for ideal conversion); each
            trial needs its own because the perturbed LUT bound — and the
            recorded statistics — are trial-specific.
        noise:
            :class:`repro.nonideal.stack.TrialNoiseStates` bound to this
            layer, chunk counters already advanced in lockstep.
        engine:
            ``"fast"`` runs the fused batched kernel; ``"reference"`` loops
            the solo oracle per trial (transparent, for verification).

        Returns
        -------
        results:
            ``(trials, batch, out_features)`` float64 — ``results[t]`` is
            **bit-identical** to the solo ``matmul`` of trial ``t``.
        total_ops:
            Per-trial A/D operation counts (identical to the solo runs).
        """
        input_codes = np.asarray(input_codes)
        if input_codes.ndim != 3 or input_codes.shape[2] != self.in_features:
            raise ValueError(
                f"input_codes must be (trials, batch, {self.in_features}), "
                f"got {input_codes.shape}"
            )
        trials = input_codes.shape[0]
        if noise is None or noise.trials != trials:
            raise ValueError(
                "matmul_trials needs a TrialNoiseStates with one state per trial"
            )
        if adcs is not None and len(adcs) != trials:
            raise ValueError(
                f"expected {trials} per-trial ADCs, got {len(adcs)}"
            )
        if engine == "reference":
            outputs = np.empty(
                (trials, input_codes.shape[1], self.out_features), dtype=np.float64
            )
            total_ops: List[int] = []
            for t in range(trials):
                outputs[t], ops = self.matmul(
                    input_codes[t],
                    adc=None if adcs is None else adcs[t],
                    engine="reference",
                    noise=noise.states[t],
                )
                total_ops.append(int(ops))
            return outputs, total_ops
        if engine != "fast":
            raise ValueError(
                f"unknown engine {engine!r} (expected 'fast' or 'reference')"
            )
        return self._matmul_fast_trials(input_codes, adcs, noise)

    def _matmul_fast_trials(
        self,
        input_codes: np.ndarray,
        adcs: Optional[List[object]],
        noise,
    ) -> Tuple[np.ndarray, List[int]]:
        """Fused kernel over a leading ``trials`` batch dimension.

        The trial axis rides through the same integer-exact datapath as the
        solo fast engine, which is why the batch is bit-identical per trial:

        * the stacked-cycle matmul computes exact small integers, so its
          results do not depend on operand blocking (a ``(trials · batch)``
          row block equals the per-trial rows);
        * noise is applied as one ``(trials, rows, cols)`` batched pass per
          (cycle, segment) block through
          :meth:`~repro.nonideal.stack.TrialNoiseStates.perturb_trials`,
          whose per-trial slices equal the solo keyed draws exactly;
        * conversion and merge run per trial — each trial's (differently
          sized) transfer LUT gathers through
          :func:`repro.adc.lut.gather_levels` and merges with the same
          order-free exact power-of-two contraction as the solo kernel.

        When every trial receives the same input rows (always true for the
        first MVM layer), the matmul is computed once and broadcast into the
        batched perturbation instead of repeated per trial.
        """
        trials, batch = input_codes.shape[0], input_codes.shape[1]
        num_cycles = self.num_input_cycles
        cols = 2 * self.num_weight_planes * self.out_features
        if trials == 1:
            shared_input = True
        elif not np.array_equal(input_codes[0], input_codes[1]):
            # Diverged trials almost always differ in the first pair; one
            # short-circuit compare settles the common case.
            shared_input = False
        else:
            shared_input = trials == 2 or bool(
                (input_codes[2:] == input_codes[:1]).all()
            )

        # The conversion setup below — value maps, per-trial transfer LUTs,
        # the combined gather tables — is a pure function of (noise binding,
        # ADC instances), both stable across the chunks of one Monte Carlo
        # run.  A single-slot identity-keyed cache makes it a per-run cost
        # instead of a per-chunk one; in the overhead-bound small-row regime
        # the batching targets, this setup would otherwise rival the kernel
        # work itself.
        cache = self.__dict__.setdefault("_trials_conversion_cache", {})
        cached = cache.get(id(noise))
        adcs_key = tuple(adcs) if adcs is not None else None
        if (
            cached is not None
            and cached[0] is noise
            and cached[1] is not None
            and adcs_key is not None
            and len(cached[1]) == len(adcs_key)
            and all(a is b for a, b in zip(cached[1], adcs_key))
        ):
            luts, value_mapped, gather = cached[2], cached[3], cached[4]
            if luts is None:
                return self._matmul_fast_trials_fallback(
                    input_codes, adcs, noise, shared_input
                )
            integer_noise = True
        else:
            integer_noise = noise.integer_domain
            luts = None
            value_mapped = False
            gather = None
            if adcs is not None:
                lut_capable = all(
                    getattr(adc, "transfer_lut", None) is not None for adc in adcs
                )
                if lut_capable and integer_noise:
                    vmaps = noise.pure_value_maps()
                    if vmaps is not None:
                        luts = []
                        for adc, vmap in zip(adcs, vmaps):
                            lut = adc.transfer_lut(int(vmap.max(initial=0)))
                            if lut.levels is None:
                                luts = None
                                break
                            luts.append(compose_transfer_lut(lut, vmap))
                        if luts is not None:
                            value_mapped = True
                    else:
                        luts = [
                            adc.transfer_lut(bound)
                            for adc, bound in zip(adcs, noise.lut_bounds)
                        ]
                        if any(lut.levels is None for lut in luts):
                            luts = None
                if luts is not None:
                    gather = TrialLutGather(luts)
                if len(cache) >= 64:
                    cache.clear()
                # The entry holds a strong reference to its noise object, so
                # the ``id`` key cannot be recycled while the entry lives.
                cache[id(noise)] = (noise, adcs_key, luts, value_mapped, gather)
                if luts is None:
                    return self._matmul_fast_trials_fallback(
                        input_codes, adcs, noise, shared_input
                    )
            elif not integer_noise:
                return self._matmul_fast_trials_fallback(
                    input_codes, None, noise, shared_input
                )

        ops_shim = active_ops()
        eff = 1 if shared_input else trials
        stacked = self._stack_cycles(
            input_codes[0]
            if shared_input
            else input_codes.reshape(trials * batch, self.in_features)
        )
        perturb_blocks = not value_mapped
        baseline_ops = self.topology.ideal_adc_resolution
        fused_factors = self._fused_factors.reshape(num_cycles, -1)
        # Cache blocking: the per-trial loop incidentally works on small,
        # cache-resident blocks; a naive trial batch would drag every
        # element-wise pass to DRAM-sized arrays and *lose* to the loop.
        # Tile the batch (MVM-row) axis so one ``(trials, cycles, rows,
        # cols)`` block of the perturb → gather → merge chain stays near
        # ``_FAST_TILE`` elements.  Blocking the row axis is bit-safe only
        # for cycle-invariant (row-count-agnostic) noise; per-read draws
        # are shaped by the full chunk, so that path materializes the
        # whole chunk first and the blocking only covers gather + merge.
        row_blk = max(1, self._FAST_TILE // max(1, trials * num_cycles * cols))
        invariant_perturb = perturb_blocks and noise.cycle_invariant
        outputs = np.zeros((trials, batch, self.out_features), dtype=np.float64)
        total_ops = [0] * trials
        partials_buf = self._fast_buffer(
            "partials", (num_cycles * eff * batch, cols), np.float32
        )
        if perturb_blocks and not invariant_perturb:
            noisy_buf = self._fast_buffer(
                "noisy_trials", (trials * num_cycles * batch, cols), np.float64
            )
        if luts is not None:
            counts = gather.new_counts()
            blk_rows = min(row_blk, batch)
            levels_buf = self._fast_buffer(
                "levels_trials",
                (trials * num_cycles * blk_rows, cols),
                gather.levels.dtype,
            )

        for segment_index, segment in enumerate(self._segments):
            ops_shim.matmul(
                stacked[:, segment], self._plane_matrix[segment], out=partials_buf
            )
            raw = partials_buf.reshape(num_cycles, eff, batch, cols)
            noisy_full = None
            if perturb_blocks and not invariant_perturb:
                # Per-read draws are shaped by the whole chunk: one batched
                # keyed-noise pass per (cycle, segment) block, materialized
                # before the blocked gather/merge below.  The per-trial
                # slices equal the solo perturb_block calls.
                noisy_full = noisy_buf.reshape(trials, num_cycles, batch, cols)
                for cycle_index in range(num_cycles):
                    values = raw[cycle_index]
                    if eff == 1:
                        values = np.broadcast_to(values[0], (trials, batch, cols))
                    np.copyto(
                        noisy_full[:, cycle_index],
                        noise.perturb_trials(values, segment_index, cycle_index),
                    )
            for start in range(0, batch, row_blk):
                stop = min(start + row_blk, batch)
                rows = stop - start
                if noisy_full is not None:
                    source = noisy_full[:, :, start:stop]
                elif invariant_perturb:
                    # Static stacks perturb every input cycle identically,
                    # so one batched pass covers the block's whole cycle
                    # axis — the models are row-count-agnostic, making each
                    # row's result equal the per-cycle chain bit for bit.
                    block = raw[:, :, start:stop]
                    if eff == 1:
                        values = np.broadcast_to(
                            block.reshape(num_cycles * rows, cols),
                            (trials, num_cycles * rows, cols),
                        )
                    else:
                        values = block.transpose(1, 0, 2, 3).reshape(
                            trials, num_cycles * rows, cols
                        )
                    source = noise.perturb_trials(
                        values, segment_index, 0
                    ).reshape(trials, num_cycles, rows, cols)
                elif eff == 1:
                    source = np.broadcast_to(
                        raw[:, 0, start:stop], (trials, num_cycles, rows, cols)
                    )
                else:
                    source = raw[:, :, start:stop].transpose(1, 0, 2, 3)
                if luts is None:
                    merged = source
                else:
                    levels = levels_buf[: trials * num_cycles * rows].reshape(
                        trials, num_cycles, rows, cols
                    )
                    gather.gather(source, counts, levels)
                    merged = levels
                # The same order-free exact power-of-two contraction as the
                # solo kernel, one cache-sized batched block at a time.
                outputs[:, start:stop] += np.tensordot(
                    merged.reshape(
                        trials,
                        num_cycles,
                        rows,
                        2 * self.num_weight_planes,
                        self.out_features,
                    ),
                    fused_factors,
                    axes=([1, 3], [0, 1]),
                )
            if luts is None:
                for t in range(trials):
                    total_ops[t] += num_cycles * batch * cols * baseline_ops

        if luts is not None:
            for t, ops_count in enumerate(gather.record_trials(counts, adcs)):
                total_ops[t] += ops_count
                if luts[t].scale != 1.0:
                    outputs[t] *= luts[t].scale
        return outputs, total_ops

    def _matmul_fast_trials_fallback(
        self,
        input_codes: np.ndarray,
        adcs: Optional[List[object]],
        noise,
        shared_input: bool,
    ) -> Tuple[np.ndarray, List[int]]:
        """Batched element-wise (non-LUT) conversion path.

        Mirrors :meth:`_matmul_fast_fallback` per trial — same block order,
        same replayed reference accumulation for float merges — but the
        keyed noise still runs as one ``(trials, rows, cols)`` batched pass
        per block, and the segment matmul is shared across trials whenever
        the inputs are.
        """
        trials, batch = input_codes.shape[0], input_codes.shape[1]
        num_cycles = self.num_input_cycles
        cols = 2 * self.num_weight_planes * self.out_features
        ops_shim = active_ops()
        eff = 1 if shared_input else trials
        stacked = self._stack_cycles(
            input_codes[0]
            if shared_input
            else input_codes.reshape(trials * batch, self.in_features)
        )
        baseline_ops = self.topology.ideal_adc_resolution
        if adcs is None:
            converters = [None] * trials
        else:
            converters = [getattr(adc, "convert_levels", None) for adc in adcs]
        scale = (
            float(adcs[0].level_scale) if converters[0] is not None else 1.0
        )
        preserve_order = converters[0] is None
        outputs = np.zeros((trials, batch, self.out_features), dtype=np.float64)
        total_ops = [0] * trials
        contributions: List[List[List[np.ndarray]]] = [
            [[] for _ in range(num_cycles)] for _ in range(trials)
        ]
        for segment_index, segment in enumerate(self._segments):
            partials = ops_shim.matmul(stacked[:, segment], self._plane_matrix[segment])
            blocks = partials.reshape(num_cycles, eff, batch, cols)
            noisy_all = None
            if noise.cycle_invariant:
                # Same cycle-axis fold as the LUT path: static stacks
                # perturb the segment's cycles in one batched pass.
                if eff == 1:
                    values = np.broadcast_to(
                        blocks.reshape(num_cycles * batch, cols),
                        (trials, num_cycles * batch, cols),
                    )
                else:
                    values = blocks.transpose(1, 0, 2, 3).reshape(
                        trials, num_cycles * batch, cols
                    )
                noisy_all = noise.perturb_trials(values, segment_index, 0).reshape(
                    trials, num_cycles, batch, cols
                )
            for cycle_index in range(num_cycles):
                if noisy_all is not None:
                    noisy = noisy_all[:, cycle_index]
                else:
                    values = blocks[cycle_index]
                    if eff == 1:
                        values = np.broadcast_to(values[0], (trials, batch, cols))
                    noisy = noise.perturb_trials(values, segment_index, cycle_index)
                cycle_factor = float(1 << (cycle_index * self.topology.dac_bits))
                for t in range(trials):
                    block = noisy[t]
                    if adcs is None:
                        quantized = block
                        total_ops[t] += block.size * baseline_ops
                    elif converters[t] is not None:
                        quantized, ops = converters[t](block)
                        total_ops[t] += int(ops)
                    else:
                        quantized, ops = adcs[t].convert(block)
                        total_ops[t] += int(ops)
                    contribution = cycle_factor * self.merge_partials(quantized)
                    if preserve_order:
                        contributions[t][cycle_index].append(contribution)
                    else:
                        outputs[t] += contribution
        for t in range(trials):
            for per_cycle in contributions[t]:
                for contribution in per_cycle:
                    outputs[t] += contribution
        if scale != 1.0:
            outputs *= scale
        return outputs, total_ops

    def _fast_buffer(self, name: str, shape: Tuple[int, int], dtype) -> np.ndarray:
        """A reusable scratch buffer (avoids large re-allocations per chunk)."""
        cache = getattr(self, "_fast_buffers", None)
        if cache is None:
            cache = self._fast_buffers = {}
        buffer = cache.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != np.dtype(dtype):
            buffer = cache[name] = np.empty(shape, dtype=dtype)
        return buffer

    def release_scratch(self) -> None:
        """Free the fast engine's scratch buffers.

        The buffers are sized ``num_input_cycles · batch × total_columns``
        and are kept between ``matmul`` calls so consecutive chunks of one
        execution reuse them; call this after a run to return the memory
        (the backend does so after each layer execution).
        """
        self._fast_buffers = None
