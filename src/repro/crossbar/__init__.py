"""ReRAM crossbar substrate: cells, arrays, bit-slicing, mapping and merging."""

from repro.crossbar.array import CrossbarArray
from repro.crossbar.cell import DEFAULT_CELL_CONFIG, CellConfig, ReRAMCellModel
from repro.crossbar.dac import DEFAULT_DAC_CONFIG, DacConfig, DacModel
from repro.crossbar.mapping import (
    DEFAULT_TOPOLOGY,
    CrossbarTopology,
    MappedMVMLayer,
    MappingFootprint,
)
from repro.crossbar.merge import (
    input_cycle_factors,
    reference_integer_matmul,
    shift_add_merge,
    weight_plane_factors,
)
from repro.crossbar.slicing import (
    bit_slice,
    num_slices,
    reconstruct_from_slices,
    slice_inputs_temporal,
    slice_weights_differential,
)

__all__ = [
    "CellConfig",
    "CrossbarArray",
    "CrossbarTopology",
    "DEFAULT_CELL_CONFIG",
    "DEFAULT_DAC_CONFIG",
    "DEFAULT_TOPOLOGY",
    "DacConfig",
    "DacModel",
    "MappedMVMLayer",
    "MappingFootprint",
    "ReRAMCellModel",
    "bit_slice",
    "input_cycle_factors",
    "num_slices",
    "reconstruct_from_slices",
    "reference_integer_matmul",
    "shift_add_merge",
    "slice_inputs_temporal",
    "slice_weights_differential",
    "weight_plane_factors",
]
