"""ReRAM cell behavioural model.

The paper's evaluation uses single-bit cells with device parameters from a
fabricated memristor CNN chip [19].  Because no physical device is available
here, the cell is modelled behaviourally: a cell stores a small integer code
and presents a conductance on a linear grid between ``g_off`` and ``g_on``;
optional log-normal programming variation and additive read noise reproduce
the dominant analog non-idealities.  The default (ideal) configuration keeps
the datapath integer-exact, matching the paper's accuracy evaluation which
attributes all error to ADC quantization.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_in_range, check_integer, check_positive
from repro.utils.warnings import warn_once


@dataclasses.dataclass(frozen=True)
class CellConfig:
    """Device parameters of one ReRAM cell.

    Attributes
    ----------
    bits_per_cell:
        ``Rcell`` — number of bits one cell stores (1 in the paper's setup).
    g_on, g_off:
        On/off conductance in Siemens; defaults follow the ~µS-range devices
        of [19] with an on/off ratio of 50.
    programming_sigma:
        Relative log-normal programming variation (0 disables it).  For
        datapath simulations this knob is realised by
        ``repro.nonideal.NonIdealityStack.from_cell_config``, which maps it
        to a keyed :class:`~repro.nonideal.ConductanceVariation` model.
    read_noise_sigma:
        Relative additive Gaussian read noise per access (0 disables it);
        mapped to a relative :class:`~repro.nonideal.GaussianReadNoise` by
        ``from_cell_config``.
    """

    bits_per_cell: int = 1
    g_on: float = 100e-6
    g_off: float = 2e-6
    programming_sigma: float = 0.0
    read_noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        check_integer(self.bits_per_cell, "bits_per_cell")
        check_in_range(self.bits_per_cell, "bits_per_cell", low=1, high=4)
        check_positive(self.g_on, "g_on")
        check_positive(self.g_off, "g_off")
        if self.g_on <= self.g_off:
            raise ValueError("g_on must exceed g_off")
        check_in_range(self.programming_sigma, "programming_sigma", low=0.0)
        check_in_range(self.read_noise_sigma, "read_noise_sigma", low=0.0)

    @property
    def levels(self) -> int:
        """Number of programmable conductance levels."""
        return 1 << self.bits_per_cell

    @property
    def on_off_ratio(self) -> float:
        return self.g_on / self.g_off

    @property
    def is_ideal(self) -> bool:
        """True when no stochastic non-ideality is configured."""
        return self.programming_sigma == 0.0 and self.read_noise_sigma == 0.0


DEFAULT_CELL_CONFIG = CellConfig()


class ReRAMCellModel:
    """Maps cell codes to conductances and back, with optional non-idealities.

    .. deprecated:: the stochastic knobs
        The ``programming_sigma`` / ``read_noise_sigma`` code paths here are
        superseded for datapath simulations by :mod:`repro.nonideal`
        (``NonIdealityStack.from_cell_config(config)``), whose counter-based
        keyed sampling keeps the fast and reference engines bit-identical.
        This model's internal RNG remains only for the standalone
        :class:`repro.crossbar.array.CrossbarArray` analog mode.
    """

    def __init__(
        self,
        config: CellConfig = DEFAULT_CELL_CONFIG,
        rng: SeedLike = None,
        warn_deprecated: bool = True,
    ) -> None:
        if warn_deprecated and not config.is_ideal:
            # Once per process (parallel sweeps build one model per worker).
            warn_once(
                ("crossbar.cell", "nonideal-knobs"),
                "for MVM-datapath simulations, ReRAMCellModel's "
                "programming_sigma/read_noise_sigma never take effect; build "
                "the equivalent keyed models with "
                "repro.nonideal.NonIdealityStack.from_cell_config(config) and "
                "pass them to the simulator's noise= argument. (The standalone "
                "CrossbarArray analog mode still honours these knobs.)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config
        self._rng = new_rng(rng)

    def code_to_conductance(self, codes: np.ndarray) -> np.ndarray:
        """Programme integer codes into conductances (with variation if set)."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.config.levels):
            raise ValueError(
                f"cell codes must be in [0, {self.config.levels - 1}], "
                f"got range [{codes.min()}, {codes.max()}]"
            )
        span = self.config.g_on - self.config.g_off
        conductance = self.config.g_off + codes.astype(np.float64) * span / (
            self.config.levels - 1
        )
        if self.config.programming_sigma > 0.0:
            variation = self._rng.lognormal(
                mean=0.0, sigma=self.config.programming_sigma, size=conductance.shape
            )
            conductance = conductance * variation
        return conductance

    def read_currents(self, conductance: np.ndarray, voltages: np.ndarray) -> np.ndarray:
        """Ohm's law per cell (``I = G·V``) with optional read noise."""
        currents = conductance * voltages
        if self.config.read_noise_sigma > 0.0:
            noise = self._rng.normal(
                0.0, self.config.read_noise_sigma * np.abs(currents).max(initial=0.0) or 1e-30,
                size=currents.shape,
            )
            currents = currents + noise
        return currents

    def effective_levels_from_conductance(self, conductance: np.ndarray) -> np.ndarray:
        """Invert :meth:`code_to_conductance` to fractional level values."""
        span = self.config.g_on - self.config.g_off
        return (conductance - self.config.g_off) * (self.config.levels - 1) / span
