"""Word-line DAC model.

With the paper's 1-bit DACs each input slice is simply a 0/1 word-line
voltage; multi-bit DAC configurations scale the voltage linearly with the
slice code.  The model exists mostly so that analog-fidelity simulations and
the energy model have an explicit component to account for.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.utils.validation import check_in_range, check_integer, check_positive


@dataclasses.dataclass(frozen=True)
class DacConfig:
    """DAC parameters: resolution ``RDA`` and full-scale word-line voltage."""

    resolution_bits: int = 1
    v_read: float = 0.2

    def __post_init__(self) -> None:
        check_integer(self.resolution_bits, "resolution_bits")
        check_in_range(self.resolution_bits, "resolution_bits", low=1, high=8)
        check_positive(self.v_read, "v_read")

    @property
    def levels(self) -> int:
        return 1 << self.resolution_bits


DEFAULT_DAC_CONFIG = DacConfig()


class DacModel:
    """Converts digital input slices to word-line voltages."""

    def __init__(self, config: DacConfig = DEFAULT_DAC_CONFIG) -> None:
        self.config = config

    def to_voltages(self, slice_codes: np.ndarray) -> np.ndarray:
        """Map slice codes ``0 … 2^RDA − 1`` to voltages ``0 … v_read``."""
        codes = np.asarray(slice_codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.config.levels):
            raise ValueError(
                f"DAC codes must be in [0, {self.config.levels - 1}], got "
                f"[{codes.min()}, {codes.max()}]"
            )
        return codes.astype(np.float64) * self.config.v_read / (self.config.levels - 1)
