"""A single ReRAM crossbar array.

The crossbar performs the analog MVM ``I_i = Σ_j G_ij · V_j`` along its bit
lines (paper Section II-A).  Two fidelity modes are provided:

* **ideal** — the bit-line value is the exact integer dot product of the
  input slice and the stored cell codes.  This is the default and matches
  the paper's assumption that all conversion error comes from the ADC.
* **analog** — cell codes are programmed into conductances (with optional
  variation), word-line voltages are applied, currents are summed and then
  re-normalised to "level" units so the rest of the datapath is unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.cell import DEFAULT_CELL_CONFIG, CellConfig, ReRAMCellModel
from repro.crossbar.dac import DEFAULT_DAC_CONFIG, DacConfig, DacModel
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in_range, check_integer


class CrossbarArray:
    """An ``S × S`` (rows × columns) array of ReRAM cells.

    Parameters
    ----------
    size:
        Number of word lines / bit lines (128 in the paper's evaluation).
    cell_config, dac_config:
        Device and DAC parameters.
    analog:
        Select the analog fidelity mode (see module docstring).
    """

    def __init__(
        self,
        size: int = 128,
        cell_config: CellConfig = DEFAULT_CELL_CONFIG,
        dac_config: DacConfig = DEFAULT_DAC_CONFIG,
        analog: bool = False,
        rng: SeedLike = None,
    ) -> None:
        check_integer(size, "size")
        check_in_range(size, "size", low=1)
        self.size = int(size)
        self.cell_config = cell_config
        self.dac_config = dac_config
        self.analog = bool(analog)
        # Analog mode is the one place the cell model's stochastic knobs are
        # still first-class, so its construction is exempt from the
        # datapath-oriented deprecation warning.
        self._cell_model = ReRAMCellModel(cell_config, rng=rng, warn_deprecated=False)
        self._dac = DacModel(dac_config)
        self._codes: Optional[np.ndarray] = None
        self._conductance: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def program(self, codes: np.ndarray) -> None:
        """Programme cell codes into the array.

        ``codes`` may be smaller than ``size × size``; the remaining cells are
        left at code 0 (off state), mirroring partially-used arrays at the
        edges of a layer mapping.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {codes.shape}")
        rows, cols = codes.shape
        if rows > self.size or cols > self.size:
            raise ValueError(
                f"codes of shape {codes.shape} do not fit a {self.size}x{self.size} array"
            )
        full = np.zeros((self.size, self.size), dtype=np.int64)
        full[:rows, :cols] = codes
        self._codes = full
        self._conductance = self._cell_model.code_to_conductance(full) if self.analog else None

    @property
    def codes(self) -> np.ndarray:
        if self._codes is None:
            raise RuntimeError("crossbar has not been programmed")
        return self._codes

    @property
    def utilisation(self) -> float:
        """Fraction of cells holding a non-zero code."""
        return float(np.count_nonzero(self.codes)) / float(self.size * self.size)

    # ------------------------------------------------------------------ #
    def bitline_values(self, input_slices: np.ndarray) -> np.ndarray:
        """Analog bit-line values for a batch of input slices.

        Parameters
        ----------
        input_slices:
            ``(batch, rows_used)`` or ``(rows_used,)`` array of DAC codes for
            the active word lines (unused rows are treated as zero).

        Returns
        -------
        values:
            ``(batch, size)`` array of bit-line results in *level* units (the
            exact integer dot product in ideal mode).
        """
        input_slices = np.atleast_2d(np.asarray(input_slices))
        batch, rows_used = input_slices.shape
        if rows_used > self.size:
            raise ValueError(
                f"input has {rows_used} rows but the array only has {self.size}"
            )
        padded = np.zeros((batch, self.size), dtype=np.float64)
        padded[:, :rows_used] = input_slices

        if not self.analog:
            return padded @ self.codes.astype(np.float64)

        voltages = self._dac.to_voltages(padded.astype(np.int64))
        conductance = self._conductance
        currents = voltages @ conductance
        # Re-normalise: one fully-on cell driven at full scale contributes one
        # "level"; subtract the off-state pedestal contributed by every driven
        # cell so the ideal and analog modes agree when non-idealities are off.
        v_read = self.dac_config.v_read
        span = self.cell_config.g_on - self.cell_config.g_off
        pedestal = voltages.sum(axis=1, keepdims=True) * self.cell_config.g_off
        per_level = (
            v_read
            * span
            / ((self.cell_config.levels - 1) * (self.dac_config.levels - 1))
        )
        return (currents - pedestal) / per_level
