"""Bit-slicing of weights (spatial) and input activations (temporal).

Resolution limits of ReRAM cells and DACs force the datapath to split
multi-bit operands (paper Fig. 1):

* a ``Kw``-bit weight is split into ``Kw / Rcell`` slices stored on different
  bit lines (spatial slicing);
* a ``Ki``-bit input is split into ``Ki / RDA`` slices fed to the DAC in
  consecutive cycles (temporal slicing).

All helpers use LSB-first slice ordering; slice ``j`` has binary weight
``2^(j · bits_per_slice)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_in_range, check_integer


def num_slices(total_bits: int, bits_per_slice: int) -> int:
    """Number of slices needed to cover ``total_bits`` (ceil division)."""
    total_bits = check_integer(total_bits, "total_bits")
    bits_per_slice = check_integer(bits_per_slice, "bits_per_slice")
    check_in_range(total_bits, "total_bits", low=1)
    check_in_range(bits_per_slice, "bits_per_slice", low=1)
    return -(-total_bits // bits_per_slice)


def bit_slice(values: np.ndarray, total_bits: int, bits_per_slice: int = 1) -> np.ndarray:
    """Split non-negative integers into LSB-first slices.

    Returns an array of shape ``(num_slices,) + values.shape`` whose slice
    ``j`` holds ``(values >> (j · bits_per_slice)) mod 2^bits_per_slice``.
    """
    values = np.asarray(values)
    if values.size and values.min() < 0:
        raise ValueError("bit_slice expects non-negative integers")
    if values.size and values.max() >= (1 << total_bits):
        raise ValueError(
            f"values exceed {total_bits} bits (max={values.max()})"
        )
    count = num_slices(total_bits, bits_per_slice)
    mask = (1 << bits_per_slice) - 1
    values = values.astype(np.int64)
    slices = np.empty((count,) + values.shape, dtype=np.int64)
    for j in range(count):
        slices[j] = (values >> (j * bits_per_slice)) & mask
    return slices


def reconstruct_from_slices(slices: np.ndarray, bits_per_slice: int = 1) -> np.ndarray:
    """Inverse of :func:`bit_slice` (exact for integer slices)."""
    slices = np.asarray(slices)
    result = np.zeros(slices.shape[1:], dtype=np.int64)
    for j in range(slices.shape[0]):
        result += slices[j].astype(np.int64) << (j * bits_per_slice)
    return result


def slice_weights_differential(
    weight_codes: np.ndarray, magnitude_bits: int, bits_per_cell: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Split signed weight codes into positive/negative magnitude bit slices.

    The differential mapping stores ``max(w, 0)`` on the positive crossbar and
    ``max(-w, 0)`` on the negative crossbar (paper Fig. 5); each magnitude is
    then bit-sliced.  Returns ``(pos_slices, neg_slices)`` of shape
    ``(num_slices,) + weight_codes.shape``.
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    pos = np.maximum(weight_codes, 0)
    neg = np.maximum(-weight_codes, 0)
    max_magnitude = (1 << magnitude_bits) - 1
    if pos.size and max(pos.max(), neg.max()) > max_magnitude:
        raise ValueError(
            f"weight magnitude {max(pos.max(), neg.max())} exceeds {magnitude_bits} bits"
        )
    return (
        bit_slice(pos, magnitude_bits, bits_per_cell),
        bit_slice(neg, magnitude_bits, bits_per_cell),
    )


def slice_inputs_temporal(
    input_codes: np.ndarray, activation_bits: int, dac_bits: int = 1
) -> np.ndarray:
    """Split unsigned activation codes into DAC-width temporal slices.

    Returns shape ``(num_cycles,) + input_codes.shape``; cycle ``j`` carries
    binary weight ``2^(j · dac_bits)`` in the shift-and-add merge.
    """
    return bit_slice(input_codes, activation_bits, dac_bits)
