"""Accelerator energy/power breakdown model (paper Fig. 7).

The paper reports the inference power of the ISAAC-style accelerator broken
down into ADC, crossbar, DAC, buffer, register (shift-and-add/configuration)
and bus/router components, comparing the ISAAC baseline, the TRQ design and a
reduced-resolution uniform ADC.  The authors obtain their constants from
CACTI 6.5, FreePDK-45 synthesis and published ADC/ReRAM measurements; none of
those tools are available here, so this module ships a documented table of
per-event energy constants representative of the same public sources
(ISAAC [3], DNN+NeuroSim [22], the referenced SAR ADC [20]).  Fig. 7 is a
*relative* comparison, and the reproduction treats it the same way: the
shape of the breakdown (ADC dominant; TRQ shrinking the ADC share without
touching the other components) is the reproduced quantity, not absolute mW.

Event model
-----------
For one inference of one layer the model charges:

* ``ADC``       — one ``e_adc_op`` per A/D *operation* (this is the component
  TRQ reduces; everything else is independent of the ADC scheme),
* ``DAC``       — one ``e_dac_drive`` per word-line drive per input cycle,
* ``Crossbar``  — one ``e_cell_access`` per cell touched per input cycle,
* ``Register``  — one ``e_shift_add`` per conversion result merged (the S+A
  module and configuration registers of paper Fig. 5 ➎),
* ``Buffer``    — one ``e_buffer_byte`` per activation byte read/written,
* ``Bus&Router``— one ``e_bus_byte`` per output-activation byte routed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from repro.arch.mapping import AcceleratorMapping, LayerWorkload
from repro.utils.validation import check_in_range


#: Component names in the order the paper's Fig. 7 legend lists them.
COMPONENTS = ("ADC", "Crossbar", "DAC", "Buffer", "Register", "Bus&Router")


@dataclasses.dataclass(frozen=True)
class EnergyConstants:
    """Per-event energy constants (joules).

    Defaults are representative mid-points of published numbers for 32 nm to
    45 nm implementations: a ~2 pJ 8-bit SAR conversion (0.25 pJ per
    operation) [20], ~fJ-scale ReRAM cell reads [19], ~0.1 pJ single-bit DAC
    word-line drives, ~1 pJ/byte SRAM buffer accesses (CACTI-class) and
    ~1.7 pJ/byte on-chip interconnect hops (ISAAC-class HTree).
    """

    e_adc_op: float = 0.25e-12
    e_dac_drive: float = 0.3e-12
    e_cell_access: float = 1.0e-15
    e_shift_add: float = 0.08e-12
    e_buffer_byte: float = 1.0e-12
    e_bus_byte: float = 5.0e-12

    def __post_init__(self) -> None:
        for name in (
            "e_adc_op",
            "e_dac_drive",
            "e_cell_access",
            "e_shift_add",
            "e_buffer_byte",
            "e_bus_byte",
        ):
            check_in_range(getattr(self, name), name, low=0.0)


DEFAULT_ENERGY_CONSTANTS = EnergyConstants()


@dataclasses.dataclass
class EnergyBreakdown:
    """Per-component energy of one inference (joules)."""

    per_component: Dict[str, float]
    label: str = ""

    @property
    def total(self) -> float:
        return float(sum(self.per_component.values()))

    def fraction(self, component: str) -> float:
        """Share of ``component`` in the total energy."""
        total = self.total
        if total == 0:
            return 0.0
        return self.per_component.get(component, 0.0) / total

    def fractions(self) -> Dict[str, float]:
        return {name: self.fraction(name) for name in self.per_component}

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Scale all components (e.g. to a batch or to average power)."""
        return EnergyBreakdown(
            per_component={k: v * factor for k, v in self.per_component.items()},
            label=self.label,
        )

    def as_power(self, inference_seconds: float) -> Dict[str, float]:
        """Convert the energy breakdown to average power (watts)."""
        if inference_seconds <= 0:
            raise ValueError("inference_seconds must be positive")
        return {k: v / inference_seconds for k, v in self.per_component.items()}


class PowerModel:
    """Computes Fig. 7-style energy breakdowns from a workload mapping."""

    def __init__(self, constants: EnergyConstants = DEFAULT_ENERGY_CONSTANTS) -> None:
        self.constants = constants

    # ------------------------------------------------------------------ #
    def _layer_energy(
        self,
        workload: LayerWorkload,
        ops_per_conversion: float,
    ) -> Dict[str, float]:
        c = self.constants
        geometry = workload.geometry
        mvms = geometry.mvms_per_image
        cycles = workload.input_cycles
        in_features = geometry.in_features
        columns = 2 * workload.weight_planes * geometry.out_features

        conversions = workload.conversions_per_image
        adc = conversions * ops_per_conversion * c.e_adc_op
        dac = mvms * cycles * in_features * c.e_dac_drive
        crossbar = mvms * cycles * in_features * columns * c.e_cell_access
        register = conversions * c.e_shift_add
        # Input buffer reads: every active word line is re-read each input
        # cycle of each sliding window (ISAAC-style operand reuse happens in
        # the buffer, not in the array); output writes add 16-bit partials.
        buffer = (
            mvms * cycles * in_features + 2 * geometry.output_elements_per_image
        ) * c.e_buffer_byte
        # Bus/router traffic: merged 16-bit partial sums leave the PE towards
        # the tile accumulator, final activations leave the tile.
        bus = (
            2 * mvms * geometry.out_features + geometry.output_elements_per_image
        ) * c.e_bus_byte
        return {
            "ADC": adc,
            "Crossbar": crossbar,
            "DAC": dac,
            "Buffer": buffer,
            "Register": register,
            "Bus&Router": bus,
        }

    # ------------------------------------------------------------------ #
    def breakdown(
        self,
        mapping: AcceleratorMapping,
        ops_per_conversion: Optional[Mapping[str, float]] = None,
        default_ops_per_conversion: Optional[float] = None,
        label: str = "",
    ) -> EnergyBreakdown:
        """Energy breakdown of one inference.

        Parameters
        ----------
        mapping:
            The workload mapping of the network.
        ops_per_conversion:
            Per-layer average A/D operations per conversion (e.g. measured by
            the simulator with TRQ enabled).  Layers missing from the mapping
            fall back to ``default_ops_per_conversion``.
        default_ops_per_conversion:
            Value used when a layer has no entry; defaults to the topology's
            full-resolution baseline (8 ops for 128×128 / 1-bit operands).
        """
        baseline = mapping.architecture.baseline_adc_resolution
        if default_ops_per_conversion is None:
            default_ops_per_conversion = float(baseline)
        totals = {name: 0.0 for name in COMPONENTS}
        for name, workload in mapping.layer_workloads.items():
            ops = default_ops_per_conversion
            if ops_per_conversion is not None and name in ops_per_conversion:
                ops = float(ops_per_conversion[name])
            layer_energy = self._layer_energy(workload, ops)
            for component, value in layer_energy.items():
                totals[component] += value
        return EnergyBreakdown(per_component=totals, label=label)

    def baseline_breakdown(self, mapping: AcceleratorMapping, label: str = "ISAAC") -> EnergyBreakdown:
        """Breakdown with full-resolution conversions (the ISAAC baseline)."""
        return self.breakdown(mapping, ops_per_conversion=None, label=label)

    def uniform_breakdown(
        self, mapping: AcceleratorMapping, bits: int, label: Optional[str] = None
    ) -> EnergyBreakdown:
        """Breakdown with a reduced-precision uniform ADC (``bits`` ops/conv)."""
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        return self.breakdown(
            mapping,
            ops_per_conversion=None,
            default_ops_per_conversion=float(bits),
            label=label or f"UQ({bits}b)",
        )
