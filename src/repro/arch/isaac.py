"""ISAAC-style accelerator organisation (paper Section III-D1, Fig. 5).

The paper adopts the ISAAC [3] hierarchy: a chip is a grid of tiles connected
by a bus/router network; each tile contains processing elements (PEs) built
around ReRAM crossbar pairs, ADCs shared across bit lines in a time-division
manner, shift-and-add merge units, and input/output buffers.  The reproduction
only needs this organisation for resource counting (how many crossbars and
ADCs a workload occupies) and for the power/latency models, so the class below
is a parameter container with derived quantities rather than a cycle-level
micro-architecture simulator.
"""

from __future__ import annotations

import dataclasses

from repro.crossbar.mapping import CrossbarTopology, DEFAULT_TOPOLOGY
from repro.utils.validation import check_in_range, check_integer, check_positive


@dataclasses.dataclass(frozen=True)
class IsaacArchitecture:
    """Architectural parameters of the ISAAC-style accelerator.

    Defaults follow the paper's evaluation settings (Section V-A): 128×128
    crossbars with single-bit cells, 8-bit datapaths, a 100 MHz system clock,
    and an ISAAC-like tile organisation (8 PEs per tile, 8 crossbar pairs per
    PE, one shared ADC per crossbar pair).
    """

    topology: CrossbarTopology = DEFAULT_TOPOLOGY
    pes_per_tile: int = 8
    crossbar_pairs_per_pe: int = 8
    adcs_per_pe: int = 8
    clock_hz: float = 100e6
    adc_sample_rate_hz: float = 1.2e9
    input_buffer_bytes: int = 2048
    output_buffer_bytes: int = 2048

    def __post_init__(self) -> None:
        check_in_range(check_integer(self.pes_per_tile, "pes_per_tile"), "pes_per_tile", low=1)
        check_in_range(check_integer(self.crossbar_pairs_per_pe, "crossbar_pairs_per_pe"),
                       "crossbar_pairs_per_pe", low=1)
        check_in_range(check_integer(self.adcs_per_pe, "adcs_per_pe"), "adcs_per_pe", low=1)
        check_positive(self.clock_hz, "clock_hz")
        check_positive(self.adc_sample_rate_hz, "adc_sample_rate_hz")
        check_in_range(check_integer(self.input_buffer_bytes, "input_buffer_bytes"),
                       "input_buffer_bytes", low=1)
        check_in_range(check_integer(self.output_buffer_bytes, "output_buffer_bytes"),
                       "output_buffer_bytes", low=1)

    # ------------------------------------------------------------------ #
    @property
    def crossbar_pairs_per_tile(self) -> int:
        return self.pes_per_tile * self.crossbar_pairs_per_pe

    @property
    def adcs_per_tile(self) -> int:
        return self.pes_per_tile * self.adcs_per_pe

    @property
    def baseline_adc_resolution(self) -> int:
        """Full-precision conversion resolution of the crossbar topology."""
        return self.topology.ideal_adc_resolution

    def tiles_needed(self, crossbar_pairs: int) -> int:
        """Number of tiles needed to host ``crossbar_pairs`` (weight-stationary)."""
        if crossbar_pairs < 0:
            raise ValueError("crossbar_pairs must be non-negative")
        return -(-crossbar_pairs // self.crossbar_pairs_per_tile) if crossbar_pairs else 0


DEFAULT_ARCHITECTURE = IsaacArchitecture()
