"""Network-level mapping of a DNN onto the accelerator.

Turns a quantized model plus an input shape into per-layer *workload
geometry*: how many MVMs one inference performs in each layer (the number of
sliding windows for convolutions, 1 for fully-connected layers), how many
crossbar pairs the layer's weights occupy, and how many A/D conversions one
inference triggers (paper Eq. 3).  These numbers feed the power and latency
models and the Fig. 7 benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.arch.isaac import DEFAULT_ARCHITECTURE, IsaacArchitecture
from repro.crossbar.mapping import MappedMVMLayer
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quantization.ptq import QuantizedModel, find_mvm_layers


@dataclasses.dataclass(frozen=True)
class LayerGeometry:
    """Shape information of one MVM layer observed on a real forward pass."""

    name: str
    kind: str
    in_features: int
    out_features: int
    mvms_per_image: int
    input_elements_per_image: int
    output_elements_per_image: int


@dataclasses.dataclass(frozen=True)
class LayerWorkload:
    """Geometry plus crossbar mapping footprint of one layer."""

    geometry: LayerGeometry
    crossbar_pairs: int
    conversions_per_mvm: int
    weight_planes: int
    input_cycles: int
    segments: int

    @property
    def conversions_per_image(self) -> int:
        """Paper Eq. 3: A/D conversions one inference needs in this layer."""
        return self.geometry.mvms_per_image * self.conversions_per_mvm


def trace_layer_geometry(
    model: Module, input_shape: Tuple[int, int, int]
) -> Dict[str, LayerGeometry]:
    """Run one dummy image through ``model`` and record MVM layer shapes.

    ``input_shape`` is ``(C, H, W)``; the model must be in eval mode capable
    of a single-image forward pass (BatchNorm running statistics are used).
    """
    geometries: Dict[str, LayerGeometry] = {}
    handles = []
    for name, layer in find_mvm_layers(model):

        def hook(module, inputs, output, _name=name, _layer=layer):
            x = np.asarray(inputs)
            if isinstance(_layer, Conv2d):
                n, _, oh, ow = output.shape
                geometries[_name] = LayerGeometry(
                    name=_name,
                    kind="conv",
                    in_features=_layer.in_channels * _layer.kernel_size[0] * _layer.kernel_size[1],
                    out_features=_layer.out_channels,
                    mvms_per_image=(oh * ow),
                    input_elements_per_image=int(np.prod(x.shape[1:])),
                    output_elements_per_image=int(np.prod(output.shape[1:])),
                )
            else:
                geometries[_name] = LayerGeometry(
                    name=_name,
                    kind="linear",
                    in_features=_layer.in_features,
                    out_features=_layer.out_features,
                    mvms_per_image=1,
                    input_elements_per_image=int(np.prod(x.shape[1:])),
                    output_elements_per_image=int(np.prod(output.shape[1:])),
                )

        handles.append(layer.register_forward_hook(hook))

    was_training = model.training
    model.eval()
    try:
        dummy = np.zeros((1,) + tuple(input_shape), dtype=np.float64)
        model(dummy)
    finally:
        for handle in handles:
            handle.remove()
        model.train(was_training)
    return geometries


class AcceleratorMapping:
    """Workload mapping of one quantized model onto the accelerator."""

    def __init__(
        self,
        quantized: QuantizedModel,
        input_shape: Tuple[int, int, int],
        architecture: IsaacArchitecture = DEFAULT_ARCHITECTURE,
    ) -> None:
        self.quantized = quantized
        self.architecture = architecture
        self.input_shape = tuple(input_shape)
        self._geometries = trace_layer_geometry(quantized.model, self.input_shape)
        self._workloads = self._build_workloads()

    # ------------------------------------------------------------------ #
    def _build_workloads(self) -> Dict[str, LayerWorkload]:
        workloads: Dict[str, LayerWorkload] = {}
        for name, _ in find_mvm_layers(self.quantized.model):
            geometry = self._geometries[name]
            lq = self.quantized.layer(name)
            if geometry.kind == "conv":
                out_channels = lq.weight_codes.shape[0]
                weight_matrix = lq.weight_codes.reshape(out_channels, -1).T
            else:
                weight_matrix = lq.weight_codes.T
            mapped = MappedMVMLayer(
                weight_matrix, self.quantized.config, self.architecture.topology
            )
            footprint = mapped.footprint()
            workloads[name] = LayerWorkload(
                geometry=geometry,
                crossbar_pairs=footprint.num_crossbar_pairs,
                conversions_per_mvm=footprint.conversions_per_mvm,
                weight_planes=footprint.num_weight_planes,
                input_cycles=footprint.num_input_cycles,
                segments=footprint.num_segments,
            )
        return workloads

    # ------------------------------------------------------------------ #
    @property
    def layer_workloads(self) -> Dict[str, LayerWorkload]:
        return dict(self._workloads)

    @property
    def layer_names(self) -> List[str]:
        return list(self._workloads)

    @property
    def total_crossbar_pairs(self) -> int:
        return sum(w.crossbar_pairs for w in self._workloads.values())

    @property
    def total_tiles(self) -> int:
        return self.architecture.tiles_needed(self.total_crossbar_pairs)

    @property
    def total_mvms_per_image(self) -> int:
        return sum(w.geometry.mvms_per_image for w in self._workloads.values())

    @property
    def total_conversions_per_image(self) -> int:
        """Paper Eq. 3 summed over layers for one inference."""
        return sum(w.conversions_per_image for w in self._workloads.values())

    def summary(self) -> Dict[str, float]:
        return {
            "layers": float(len(self._workloads)),
            "crossbar_pairs": float(self.total_crossbar_pairs),
            "tiles": float(self.total_tiles),
            "mvms_per_image": float(self.total_mvms_per_image),
            "conversions_per_image": float(self.total_conversions_per_image),
        }
