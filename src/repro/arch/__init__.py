"""ISAAC-style accelerator architecture model: mapping, power, latency."""

from repro.arch.energy_report import (
    WorkloadComparison,
    breakdown_table,
    compare_configurations,
)
from repro.arch.isaac import DEFAULT_ARCHITECTURE, IsaacArchitecture
from repro.arch.latency import (
    DEFAULT_LATENCY_PARAMS,
    LatencyBreakdown,
    LatencyModel,
    LatencyParams,
)
from repro.arch.mapping import (
    AcceleratorMapping,
    LayerGeometry,
    LayerWorkload,
    trace_layer_geometry,
)
from repro.arch.power import (
    COMPONENTS,
    DEFAULT_ENERGY_CONSTANTS,
    EnergyBreakdown,
    EnergyConstants,
    PowerModel,
)

__all__ = [
    "AcceleratorMapping",
    "COMPONENTS",
    "DEFAULT_ARCHITECTURE",
    "DEFAULT_ENERGY_CONSTANTS",
    "DEFAULT_LATENCY_PARAMS",
    "EnergyBreakdown",
    "EnergyConstants",
    "IsaacArchitecture",
    "LatencyBreakdown",
    "LatencyModel",
    "LatencyParams",
    "LayerGeometry",
    "LayerWorkload",
    "PowerModel",
    "WorkloadComparison",
    "breakdown_table",
    "breakdown_table",
    "compare_configurations",
    "trace_layer_geometry",
]
