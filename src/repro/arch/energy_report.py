"""Fig. 7-style comparisons: ISAAC baseline vs TRQ vs reduced-precision UQ.

Combines the workload mapping, the power model and measured (or predicted)
per-layer A/D operation counts into the grouped breakdown the paper plots.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional

from repro.arch.mapping import AcceleratorMapping
from repro.arch.power import COMPONENTS, EnergyBreakdown, PowerModel


@dataclasses.dataclass
class WorkloadComparison:
    """All breakdowns of one workload (one network/dataset pair)."""

    workload: str
    breakdowns: List[EnergyBreakdown]

    def by_label(self, label: str) -> EnergyBreakdown:
        for breakdown in self.breakdowns:
            if breakdown.label == label:
                return breakdown
        raise KeyError(f"no breakdown labelled '{label}' for workload '{self.workload}'")

    @property
    def labels(self) -> List[str]:
        return [b.label for b in self.breakdowns]

    def adc_reduction_vs_baseline(self, label: str, baseline_label: str = "ISAAC") -> float:
        """Factor by which the ADC energy shrank relative to the baseline."""
        baseline_adc = self.by_label(baseline_label).per_component["ADC"]
        target_adc = self.by_label(label).per_component["ADC"]
        return baseline_adc / target_adc if target_adc > 0 else float("inf")

    def total_reduction_vs_baseline(self, label: str, baseline_label: str = "ISAAC") -> float:
        baseline_total = self.by_label(baseline_label).total
        target_total = self.by_label(label).total
        return baseline_total / target_total if target_total > 0 else float("inf")


def compare_configurations(
    workload: str,
    mapping: AcceleratorMapping,
    trq_ops_per_conversion: Mapping[str, float],
    uniform_bits: int,
    power_model: Optional[PowerModel] = None,
    trq_label: str = "Ours/4b",
) -> WorkloadComparison:
    """Build the paper's three-way comparison for one workload.

    Parameters
    ----------
    trq_ops_per_conversion:
        Per-layer mean A/D operations per conversion measured with the
        calibrated TRQ configuration (simulator output).
    uniform_bits:
        Resolution of the uniform-ADC alternative that reaches comparable
        accuracy (7 or 8 bits in the paper's Fig. 7).
    """
    model = power_model or PowerModel()
    breakdowns = [
        model.baseline_breakdown(mapping, label="ISAAC"),
        model.breakdown(mapping, ops_per_conversion=trq_ops_per_conversion, label=trq_label),
        model.uniform_breakdown(mapping, bits=uniform_bits),
    ]
    return WorkloadComparison(workload=workload, breakdowns=breakdowns)


def breakdown_table(comparisons: List[WorkloadComparison]) -> List[Dict[str, object]]:
    """Flatten comparisons into rows suitable for tabulation/JSON export."""
    rows: List[Dict[str, object]] = []
    for comparison in comparisons:
        for breakdown in comparison.breakdowns:
            row: Dict[str, object] = {
                "workload": comparison.workload,
                "config": breakdown.label,
                "total_J": breakdown.total,
            }
            for component in COMPONENTS:
                row[component] = breakdown.per_component.get(component, 0.0)
            rows.append(row)
    return rows
