"""First-order latency/throughput model of the accelerator.

The paper's contribution also reduces conversion *latency* (fewer SAR steps
per conversion), so the reproduction includes a simple analytic model: each
layer's time is the maximum of its crossbar-read time, its ADC time and its
digital merge time, assuming the ISAAC-style time-division sharing of ADCs
within a PE.  The model is intentionally coarse (no inter-layer pipelining,
no buffer stalls) — it is used for relative comparisons and the ablation
benchmarks, not absolute FPS claims.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from repro.arch.isaac import DEFAULT_ARCHITECTURE, IsaacArchitecture
from repro.arch.mapping import AcceleratorMapping
from repro.utils.validation import check_positive


@dataclasses.dataclass(frozen=True)
class LatencyParams:
    """Timing constants of the datapath."""

    crossbar_read_seconds: float = 100e-9
    adc_operation_seconds: float = 1.0 / 1.2e9
    shift_add_seconds: float = 10e-9

    def __post_init__(self) -> None:
        check_positive(self.crossbar_read_seconds, "crossbar_read_seconds")
        check_positive(self.adc_operation_seconds, "adc_operation_seconds")
        check_positive(self.shift_add_seconds, "shift_add_seconds")


DEFAULT_LATENCY_PARAMS = LatencyParams()


@dataclasses.dataclass
class LatencyBreakdown:
    """Per-layer and total inference latency (seconds)."""

    per_layer: Dict[str, float]
    label: str = ""

    @property
    def total(self) -> float:
        return float(sum(self.per_layer.values()))


class LatencyModel:
    """Analytic per-layer latency estimation."""

    def __init__(
        self,
        architecture: IsaacArchitecture = DEFAULT_ARCHITECTURE,
        params: LatencyParams = DEFAULT_LATENCY_PARAMS,
    ) -> None:
        self.architecture = architecture
        self.params = params

    def breakdown(
        self,
        mapping: AcceleratorMapping,
        ops_per_conversion: Optional[Mapping[str, float]] = None,
        default_ops_per_conversion: Optional[float] = None,
        label: str = "",
    ) -> LatencyBreakdown:
        """Latency of one inference under the given conversion cost."""
        baseline = float(mapping.architecture.baseline_adc_resolution)
        if default_ops_per_conversion is None:
            default_ops_per_conversion = baseline
        per_layer: Dict[str, float] = {}
        adcs_per_pair = max(
            1, self.architecture.adcs_per_pe // self.architecture.crossbar_pairs_per_pe
        )
        for name, workload in mapping.layer_workloads.items():
            ops = default_ops_per_conversion
            if ops_per_conversion is not None and name in ops_per_conversion:
                ops = float(ops_per_conversion[name])
            mvms = workload.geometry.mvms_per_image
            cycles = workload.input_cycles
            # Crossbar: every input cycle is one analog read of all segments
            # (they operate in parallel arrays).
            crossbar_time = mvms * cycles * self.params.crossbar_read_seconds
            # ADC: conversions serialised onto the ADCs available to this
            # layer's crossbar pairs.
            conversions = workload.conversions_per_image
            available_adcs = max(1, workload.crossbar_pairs * adcs_per_pair)
            adc_time = conversions * ops * self.params.adc_operation_seconds / available_adcs
            # Digital merge.
            merge_time = conversions * self.params.shift_add_seconds / max(
                1, workload.crossbar_pairs
            )
            per_layer[name] = max(crossbar_time, adc_time, merge_time)
        return LatencyBreakdown(per_layer=per_layer, label=label)
