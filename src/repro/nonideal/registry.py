"""Registry of device non-ideality models.

Models register themselves by class decorator; specs (plain dicts with a
``"model"`` key naming the registered class plus its constructor parameters)
round-trip through :func:`build_model` / :meth:`NonIdealityModel.spec`, which
is what lets benchmark configurations, Monte Carlo sweeps and saved
experiment records describe noise setups as data.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple, Type

from repro.nonideal.base import NonIdealityModel

_REGISTRY: Dict[str, Type[NonIdealityModel]] = {}


def register_model(cls: Type[NonIdealityModel]) -> Type[NonIdealityModel]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"non-ideality model name {name!r} is already registered "
            f"by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def registered_models() -> Tuple[str, ...]:
    """Names of every registered model, sorted."""
    return tuple(sorted(_REGISTRY))


def model_class(name: str) -> Type[NonIdealityModel]:
    """The registered class for ``name`` (raises ``KeyError`` with hints)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown non-ideality model {name!r}; registered models: "
            f"{', '.join(registered_models()) or '(none)'}"
        ) from None


def build_model(spec: Mapping[str, object]) -> NonIdealityModel:
    """Instantiate a model from its spec dict (inverse of ``model.spec()``)."""
    spec = dict(spec)
    try:
        name = spec.pop("model")
    except KeyError:
        raise ValueError(f"model spec {spec!r} is missing the 'model' key") from None
    return model_class(str(name))(**spec)


def build_models(specs) -> List[NonIdealityModel]:
    """Instantiate a list of models from specs (or pass instances through)."""
    models = []
    for spec in specs:
        if isinstance(spec, NonIdealityModel):
            models.append(spec)
        else:
            models.append(build_model(spec))
    return models
