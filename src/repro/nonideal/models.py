"""The registered device non-ideality models.

Each model perturbs raw bit-line values (exact non-negative integers in the
ideal datapath) at the point where the crossbar hands them to the ADC.  The
modelling level is deliberately the *bit line*, not the individual cell: a
128-row column aggregates its cells' currents before conversion, so column-
level statistics (a static per-column variation factor, a per-column stuck
cell count, a fresh per-read noise sample) capture the dominant effects
while keeping the fast engine's fused kernels intact.  See
:mod:`repro.nonideal.base` for the keyed-sampling rules that make every
model bit-identical between the fast and reference engines.

Integer-domain models (stuck-at faults, retention drift, quantized
variation) keep bit-line values on the integer grid, so the fast engine
converts them with its integer-LUT gather — retention drift is even folded
*into* the LUT (a perturbed :class:`~repro.adc.lut.AdcTransferLut`) at zero
per-element cost.  Continuous models (read noise, analog variation, IR
drop) leave the integer domain; the engines then take the element-wise
conversion path, still bit-identical between them.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

import numpy as np

from repro.nonideal.base import (
    BoundModel,
    LayerNoiseContext,
    NonIdealityModel,
    stacked_trial_state,
)
from repro.nonideal.registry import register_model
from repro.utils.numeric import round_half_up
from repro.utils.validation import check_in_range


class _IdentityBound(BoundModel):
    """Bound form of a model whose parameters make it a no-op.

    Declaring the identity explicitly (integer-domain, identity value map)
    lets zero-strength models — common as the clean sentinel row of a sweep
    — keep the fast engine on its integer-LUT path instead of dragging the
    whole stack onto the element-wise fallback.
    """

    @property
    def integer_domain(self) -> bool:
        return True

    @property
    def cycle_invariant(self) -> bool:
        return True

    def value_map(self, input_bound: int) -> Optional[np.ndarray]:
        return np.arange(input_bound + 1, dtype=np.int64)

    @staticmethod
    def perturb_trials(siblings, values, segment, cycle, chunk):
        return np.asarray(values, dtype=np.float64)


def _per_trial(stacked: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Reshape per-trial ``(trials, columns)`` state to broadcast over
    ``values`` of shape ``(trials, ..., columns)`` (any middle dims)."""
    return stacked.reshape((stacked.shape[0],) + (1,) * (values.ndim - 2) + (-1,))


# --------------------------------------------------------------------- #
# Gaussian read noise
# --------------------------------------------------------------------- #
class _BoundGaussianRead(BoundModel):
    def __init__(self, ctx: LayerNoiseContext, sigma: float) -> None:
        super().__init__(ctx)
        self.sigma = sigma

    def _draw(self, shape, segment, cycle, chunk):
        from repro.backend import active_ops  # lazy: avoid an import cycle

        # Numpy-canonical on every backend (the draw is hash-relevant).
        return active_ops().keyed_normal(
            self.ctx.draw_key("read", chunk, segment, cycle), self.sigma, shape
        )

    def perturb(self, values, segment, cycle, chunk):
        noise = self._draw(values.shape, segment, cycle, chunk)
        # Bit-line currents are physically non-negative.
        return np.maximum(np.asarray(values, dtype=np.float64) + noise, 0.0)

    @staticmethod
    def perturb_trials(siblings, values, segment, cycle, chunk):
        # The draws stay per-trial (each replica owns an independent keyed
        # stream) but are applied in one fused element-wise pass — exact,
        # because addition and the clamp act element by element per trial.
        noise = np.empty(
            (len(siblings),) + tuple(values.shape[1:]), dtype=np.float64
        )
        for index, bound in enumerate(siblings):
            noise[index] = bound._draw(values.shape[1:], segment, cycle, chunk)
        return np.maximum(np.asarray(values, dtype=np.float64) + noise, 0.0)


@register_model
class GaussianReadNoise(NonIdealityModel):
    """Additive Gaussian noise per read access (thermal/readout noise).

    ``sigma`` is the standard deviation in full-precision level units
    (LSBs); with ``relative=True`` it is instead a fraction of the layer's
    largest bit-line value, matching the relative convention of
    :class:`repro.crossbar.cell.CellConfig.read_noise_sigma`.
    """

    name = "gaussian_read_noise"

    def __init__(self, sigma: float, relative: bool = False) -> None:
        check_in_range(float(sigma), "sigma", low=0.0)
        self.sigma = float(sigma)
        self.relative = bool(relative)

    def params(self) -> Dict[str, object]:
        return {"sigma": self.sigma, "relative": self.relative}

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        sigma = self.sigma * ctx.max_bitline if self.relative else self.sigma
        if sigma == 0.0:
            return _IdentityBound(ctx)
        return _BoundGaussianRead(ctx, sigma)


# --------------------------------------------------------------------- #
# log-normal conductance / programming variation
# --------------------------------------------------------------------- #
class _BoundConductanceVariation(BoundModel):
    def __init__(self, ctx: LayerNoiseContext, sigma: float, quantize: bool) -> None:
        super().__init__(ctx)
        self.quantize = quantize
        # Static device state: one multiplicative factor per (segment, column),
        # drawn once at bind time — every cycle, chunk and batch of the run
        # sees the same programmed devices.
        self._factors: List[np.ndarray] = [
            ctx.rng("program", s).lognormal(mean=0.0, sigma=sigma, size=ctx.columns)
            if sigma > 0.0
            else np.ones(ctx.columns)
            for s in range(len(ctx.segment_sizes))
        ]
        self._max_factor = max((float(f.max()) for f in self._factors), default=1.0)

    @property
    def integer_domain(self) -> bool:
        return self.quantize

    @property
    def cycle_invariant(self) -> bool:
        return True

    def output_bound(self, input_bound: int) -> int:
        return int(round_half_up(input_bound * self._max_factor))

    def perturb(self, values, segment, cycle, chunk):
        scaled = np.asarray(values, dtype=np.float64) * self._factors[segment]
        if self.quantize:
            return np.maximum(round_half_up(scaled), 0.0)
        return scaled

    @staticmethod
    def perturb_trials(siblings, values, segment, cycle, chunk):
        # One multiply against the stacked static factors; every step is
        # element-wise per trial, so the batch is exactly the per-trial chain.
        factors = stacked_trial_state(
            siblings,
            segment,
            lambda: np.stack([bound._factors[segment] for bound in siblings]),
        )
        scaled = np.asarray(values, dtype=np.float64) * _per_trial(factors, values)
        if siblings[0].quantize:
            return np.maximum(round_half_up(scaled), 0.0)
        return scaled


@register_model
class ConductanceVariation(NonIdealityModel):
    """Multiplicative log-normal cell-programming variation, per column.

    Programming a target conductance lands on ``G · exp(ε)`` with
    ``ε ~ N(0, σ²)``; the aggregate effect on a bit line scales its summed
    current by a static per-column factor.  ``quantize=True`` re-quantizes
    the perturbed value onto the integer level grid (drift-quantized
    variation), which keeps the fast engine's integer-LUT conversion live.
    """

    name = "conductance_variation"

    def __init__(self, sigma: float, quantize: bool = False) -> None:
        check_in_range(float(sigma), "sigma", low=0.0)
        self.sigma = float(sigma)
        self.quantize = bool(quantize)

    def params(self) -> Dict[str, object]:
        return {"sigma": self.sigma, "quantize": self.quantize}

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        if self.sigma == 0.0:
            return _IdentityBound(ctx)
        return _BoundConductanceVariation(ctx, self.sigma, self.quantize)


# --------------------------------------------------------------------- #
# stuck-at-ON / stuck-at-OFF faults
# --------------------------------------------------------------------- #
class _BoundStuckAt(BoundModel):
    def __init__(self, ctx: LayerNoiseContext, rate_on: float, rate_off: float) -> None:
        super().__init__(ctx)
        # Static fault map: per (segment, column) counts of stuck cells among
        # that column's ``segment_rows`` devices.
        self._delta: List[np.ndarray] = []
        max_on = 0
        for s, rows in enumerate(ctx.segment_sizes):
            rng = ctx.rng("faults", s)
            on = rng.binomial(rows, rate_on, size=ctx.columns)
            off = rng.binomial(rows, rate_off, size=ctx.columns)
            max_on = max(max_on, int(on.max(initial=0)))
            self._delta.append((on - off).astype(np.float64))
        self._max_on = max_on

    @property
    def integer_domain(self) -> bool:
        return True

    @property
    def cycle_invariant(self) -> bool:
        return True

    def output_bound(self, input_bound: int) -> int:
        return int(input_bound) + self._max_on

    def perturb(self, values, segment, cycle, chunk):
        return np.maximum(
            np.asarray(values, dtype=np.float64) + self._delta[segment], 0.0
        )

    @staticmethod
    def perturb_trials(siblings, values, segment, cycle, chunk):
        delta = stacked_trial_state(
            siblings,
            segment,
            lambda: np.stack([bound._delta[segment] for bound in siblings]),
        )
        return np.maximum(
            np.asarray(values, dtype=np.float64) + _per_trial(delta, values), 0.0
        )


@register_model
class StuckAtFaults(NonIdealityModel):
    """Stuck-at-ON / stuck-at-OFF cell faults (behavioural, per column).

    A fraction ``rate_on`` of a column's cells is stuck conducting and a
    fraction ``rate_off`` stuck open; the counts are Binomial draws over the
    segment's rows, fixed per device.  Stuck-ON cells add their worst-case
    unit current to every conversion of the column, stuck-OFF cells remove
    up to their count (clamped at zero) — a deliberate bit-line-level
    simplification that avoids per-cell weight bookkeeping while preserving
    the integer domain.
    """

    name = "stuck_at_faults"

    def __init__(self, rate_on: float = 0.0, rate_off: float = 0.0) -> None:
        check_in_range(float(rate_on), "rate_on", low=0.0, high=1.0)
        check_in_range(float(rate_off), "rate_off", low=0.0, high=1.0)
        self.rate_on = float(rate_on)
        self.rate_off = float(rate_off)

    def params(self) -> Dict[str, object]:
        return {"rate_on": self.rate_on, "rate_off": self.rate_off}

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        if self.rate_on == 0.0 and self.rate_off == 0.0:
            return _IdentityBound(ctx)
        return _BoundStuckAt(ctx, self.rate_on, self.rate_off)


# --------------------------------------------------------------------- #
# retention drift
# --------------------------------------------------------------------- #
class _BoundRetentionDrift(BoundModel):
    def __init__(self, ctx: LayerNoiseContext, factor: float) -> None:
        super().__init__(ctx)
        self.factor = factor

    @property
    def integer_domain(self) -> bool:
        return True

    @property
    def cycle_invariant(self) -> bool:
        return True

    def output_bound(self, input_bound: int) -> int:
        return int(round_half_up(input_bound * self.factor))

    def value_map(self, input_bound: int) -> Optional[np.ndarray]:
        levels = np.arange(input_bound + 1, dtype=np.float64)
        return round_half_up(levels * self.factor).astype(np.int64)

    def perturb(self, values, segment, cycle, chunk):
        # Must equal value_map element for element on exact integers.
        return round_half_up(np.asarray(values, dtype=np.float64) * self.factor)

    @staticmethod
    def perturb_trials(siblings, values, segment, cycle, chunk):
        # ``factor`` is parameter-derived (seed-free): identical across trials.
        return round_half_up(
            np.asarray(values, dtype=np.float64) * siblings[0].factor
        )


@register_model
class RetentionDrift(NonIdealityModel):
    """Power-law conductance retention loss, quantized to the level grid.

    After ``time`` (arbitrary units, e.g. hours since programming) every
    conductance has decayed by the deterministic factor ``(1 + time)^-nu``
    (``nu`` is the drift exponent of filamentary ReRAM retention models).
    The bit-line value scales by the same factor and is re-quantized onto
    the integer grid — a pure per-value map, which the fast engine folds
    directly into the ADC transfer LUT.
    """

    name = "retention_drift"

    def __init__(self, time: float = 1.0, nu: float = 0.05) -> None:
        check_in_range(float(time), "time", low=0.0)
        check_in_range(float(nu), "nu", low=0.0)
        self.time = float(time)
        self.nu = float(nu)

    @property
    def factor(self) -> float:
        """Multiplicative conductance retention ``(1 + time)^-nu``."""
        return float((1.0 + self.time) ** (-self.nu))

    def params(self) -> Dict[str, object]:
        return {"time": self.time, "nu": self.nu}

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        if self.factor == 1.0:
            return _IdentityBound(ctx)
        return _BoundRetentionDrift(ctx, self.factor)


# --------------------------------------------------------------------- #
# IR-drop attenuation
# --------------------------------------------------------------------- #
class _BoundIRDrop(BoundModel):
    def __init__(self, ctx: LayerNoiseContext, alpha: float) -> None:
        super().__init__(ctx)
        size = max(2, ctx.crossbar_size)
        # Column position within its physical array: columns are packed
        # ``crossbar_size`` to an array, so the wire-resistance path grows
        # with the position modulo the array width.
        position = (np.arange(ctx.columns) % size) / (size - 1)
        self._factors = 1.0 - alpha * position

    @property
    def cycle_invariant(self) -> bool:
        return True

    def perturb(self, values, segment, cycle, chunk):
        return np.asarray(values, dtype=np.float64) * self._factors

    @staticmethod
    def perturb_trials(siblings, values, segment, cycle, chunk):
        # Attenuation is deterministic geometry (seed-free): one broadcast.
        return np.asarray(values, dtype=np.float64) * siblings[0]._factors


@register_model
class IRDropAttenuation(NonIdealityModel):
    """Deterministic per-column IR-drop attenuation.

    Wire resistance along the word/bit lines attenuates the current reaching
    the ADC; a column at the far end of its physical array loses up to
    ``alpha`` of its value (linear in position, the standard first-order
    approximation).  Deterministic — no RNG stream — but continuous, so runs
    with it take the element-wise conversion path.
    """

    name = "ir_drop"

    def __init__(self, alpha: float) -> None:
        check_in_range(float(alpha), "alpha", low=0.0, high=1.0)
        self.alpha = float(alpha)

    def params(self) -> Dict[str, object]:
        return {"alpha": self.alpha}

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        if self.alpha == 0.0:
            return _IdentityBound(ctx)
        return _BoundIRDrop(ctx, self.alpha)


# --------------------------------------------------------------------- #
# adapter for pre-subsystem noise objects
# --------------------------------------------------------------------- #
class _BoundLegacy(BoundModel):
    def __init__(self, ctx: LayerNoiseContext, legacy) -> None:
        super().__init__(ctx)
        self._legacy = legacy

    def perturb(self, values, segment, cycle, chunk):
        return np.asarray(self._legacy.apply(values), dtype=np.float64)


class LegacyNoiseAdapter(NonIdealityModel):
    """Wraps an old-protocol object (``apply(values)``) as a stack model.

    The wrapped object owns a mutable RNG, so the two engines — which visit
    blocks in different orders — consume its stream differently: noisy runs
    agree only *statistically*, exactly the defect the keyed models above
    eliminate.  The adapter exists so user code holding a custom legacy
    model keeps running; everything in-tree uses the keyed models.
    """

    name = "legacy_adapter"

    def __init__(self, legacy) -> None:
        if not hasattr(legacy, "apply"):
            raise TypeError(
                f"{type(legacy).__name__} does not implement the legacy "
                "NoiseModel protocol (no .apply method)"
            )
        warnings.warn(
            "wrapping a legacy NoiseModel via its shared RNG stream; fast and "
            "reference engines will agree only statistically under this model. "
            "Port it to repro.nonideal.NonIdealityModel for bit-identical runs.",
            DeprecationWarning,
            stacklevel=3,
        )
        self.legacy = legacy

    def params(self) -> Dict[str, object]:  # pragma: no cover - not serializable
        raise TypeError("LegacyNoiseAdapter wraps a live object and has no spec")

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        return _BoundLegacy(ctx, self.legacy)
