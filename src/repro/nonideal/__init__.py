"""Device non-ideality subsystem: composable, registry-driven noise models.

The paper's accuracy evaluation assumes an ideal analog front end (all error
from ADC quantization); this package answers the standard reviewer question
— *how do the TRQ / co-design results hold up under device noise?* — with
five composable models (Gaussian read noise, log-normal conductance
variation, stuck-at faults, retention drift, IR-drop attenuation), each
implemented as a vectorized, counter-based keyed sampler so the fast and
reference simulation engines consume **identical** noise and stay
bit-identical (see :mod:`repro.nonideal.base` for the keying rules).

Quick use::

    from repro.nonideal import GaussianReadNoise, StuckAtFaults, NonIdealityStack

    stack = NonIdealityStack(
        [GaussianReadNoise(sigma=0.5), StuckAtFaults(rate_on=1e-3)], seed=0
    )
    result = simulator.evaluate(images, labels, configs, noise=stack)
    robustness = simulator.run_monte_carlo(images, labels, noise=stack, trials=16)
"""

from repro.nonideal.base import BoundModel, LayerNoiseContext, NonIdealityModel
from repro.nonideal.models import (
    ConductanceVariation,
    GaussianReadNoise,
    IRDropAttenuation,
    LegacyNoiseAdapter,
    RetentionDrift,
    StuckAtFaults,
)
from repro.nonideal.registry import (
    build_model,
    build_models,
    model_class,
    register_model,
    registered_models,
)
from repro.nonideal.stack import LayerNoiseState, NonIdealityStack, as_stack

__all__ = [
    "BoundModel",
    "ConductanceVariation",
    "GaussianReadNoise",
    "IRDropAttenuation",
    "LayerNoiseContext",
    "LayerNoiseState",
    "LegacyNoiseAdapter",
    "NonIdealityModel",
    "NonIdealityStack",
    "RetentionDrift",
    "StuckAtFaults",
    "as_stack",
    "build_model",
    "build_models",
    "model_class",
    "register_model",
    "registered_models",
]
