"""Composing non-ideality models into the object the engines consume.

A :class:`NonIdealityStack` is an ordered, immutable list of models plus a
base seed.  Binding it to a mapped layer produces a :class:`LayerNoiseState`
— the thing :meth:`repro.crossbar.mapping.MappedMVMLayer.matmul` actually
receives — which carries the bound models (with their static device draws),
the per-layer chunk counter, and the pre-computed facts the fast engine
needs to pick its conversion path:

* ``integer_domain`` — every model keeps bit-line values on the integer
  grid, so the fused kernel can stay on the integer-LUT gather;
* ``lut_bound`` — upper bound of perturbed integer values (sizes the LUT);
* ``pure_value_map()`` — when every model is a pure per-value map, the
  composed map to fold into the ADC transfer LUT
  (:func:`repro.adc.lut.compose_transfer_lut`) at zero per-element cost.

The chunk counter advances once per backend chunk (``next_chunk``), giving
per-read models a fresh keyed stream per chunk while both engines — which
chunk identically — stay bit-identical.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nonideal.base import BoundModel, LayerNoiseContext, NonIdealityModel
from repro.nonideal.registry import build_models
from repro.utils.rng import derive_seed


class LayerNoiseState:
    """All models of one stack bound to one mapped layer.

    Created via :meth:`NonIdealityStack.bind_layer`; holds the static device
    draws and the chunk counter for the layer.  Never share one state
    between two runs you want independent — bind a fresh one (the draws are
    keyed, so two states from the same stack are identical replicas, which
    is exactly what engine-equivalence checks need).
    """

    def __init__(self, bound: Sequence[BoundModel], max_bitline: int) -> None:
        self._bound: Tuple[BoundModel, ...] = tuple(bound)
        self._max_bitline = int(max_bitline)
        self._chunk = 0
        self.integer_domain = all(b.integer_domain for b in self._bound)
        self.lut_bound = self._max_bitline
        if self.integer_domain:
            bound_value = self._max_bitline
            for model in self._bound:
                bound_value = model.output_bound(bound_value)
            self.lut_bound = int(bound_value)
        self._pure_map: Optional[np.ndarray] = None
        self._pure_map_known = False

    # ------------------------------------------------------------------ #
    def next_chunk(self) -> "LayerNoiseState":
        """Advance the chunk counter (the backend calls this once per chunk)."""
        self._chunk += 1
        return self

    @property
    def chunk(self) -> int:
        return self._chunk

    # ------------------------------------------------------------------ #
    def pure_value_map(self) -> Optional[np.ndarray]:
        """Composed integer value map of the whole stack, or ``None``.

        Non-``None`` only when *every* model publishes a
        :meth:`~repro.nonideal.base.BoundModel.value_map`; the result maps
        each raw bit-line value ``0 … max_bitline`` to its fully perturbed
        integer value, identical to chaining ``perturb`` on integers.
        """
        if not self._pure_map_known:
            self._pure_map_known = True
            composed = np.arange(self._max_bitline + 1, dtype=np.int64)
            bound_value = self._max_bitline
            for model in self._bound:
                vmap = model.value_map(bound_value)
                if vmap is None:
                    composed = None
                    break
                composed = np.asarray(vmap, dtype=np.int64)[composed]
                bound_value = model.output_bound(bound_value)
            self._pure_map = composed
        return self._pure_map

    def perturb_block(
        self, values: np.ndarray, segment: int, cycle: int
    ) -> np.ndarray:
        """Apply every model, in stack order, to one raw bit-line block.

        ``values`` is ``(rows, columns)`` and is never mutated; the result is
        float64 (exact integers throughout for integer-domain stacks).
        """
        out = np.asarray(values, dtype=np.float64)
        chunk = self._chunk
        for model in self._bound:
            out = model.perturb(out, segment, cycle, chunk)
        return out


class TrialNoiseStates:
    """Lockstep view over the sibling :class:`LayerNoiseState` of N trials.

    The batched Monte Carlo kernel perturbs a ``(trials, rows, columns)``
    block in one pass; this wrapper holds one bound state per trial (all
    bound from the *same models* under different derived seeds, so every
    trial carries the same model classes in the same order) and chains the
    models model-major through
    :meth:`~repro.nonideal.base.BoundModel.perturb_trials`.

    The chunk counters advance in lockstep (:meth:`next_chunk`), keeping
    every trial's keyed draws identical to what a solo run of that trial
    would produce — the bit-identity contract of the batched path.
    """

    def __init__(self, states: Sequence[LayerNoiseState]) -> None:
        if not states:
            raise ValueError("TrialNoiseStates needs at least one trial state")
        self.states: Tuple[LayerNoiseState, ...] = tuple(states)
        # bind() picks the Bound class from parameters alone (never the
        # seed), so the class sequence is identical across trials.
        self.integer_domain = all(s.integer_domain for s in self.states)
        self.lut_bounds: Tuple[int, ...] = tuple(s.lut_bound for s in self.states)
        # Static stacks (no per-read draws) perturb every input cycle of a
        # segment identically; the batched kernel then folds the cycle axis
        # into a single perturb_trials call per segment.
        self.cycle_invariant = all(
            bound.cycle_invariant for state in self.states for bound in state._bound
        )

    @property
    def trials(self) -> int:
        return len(self.states)

    def next_chunk(self) -> "TrialNoiseStates":
        """Advance every trial's chunk counter in lockstep."""
        for state in self.states:
            state.next_chunk()
        return self

    def pure_value_maps(self) -> Optional[List[np.ndarray]]:
        """Per-trial composed value maps, or ``None`` if any trial lacks one.

        ``value_map`` availability is class-determined, so this is
        all-or-none across trials in practice.
        """
        maps = [state.pure_value_map() for state in self.states]
        if any(vmap is None for vmap in maps):
            return None
        return maps

    def perturb_trials(
        self, values: np.ndarray, segment: int, cycle: int
    ) -> np.ndarray:
        """Apply every model, in stack order, to a ``(trials, rows, cols)`` batch.

        ``result[t]`` is bit-identical to
        ``states[t].perturb_block(values[t], segment, cycle)`` because each
        model's batched form is exactly per-trial-sliceable.  For
        ``cycle_invariant`` stacks the kernel may fold several cycles' rows
        into one call — the models are row-count-agnostic, so the result
        still equals the per-cycle chain row for row.
        """
        out = np.asarray(values, dtype=np.float64)
        chunk = self.states[0].chunk
        num_models = len(self.states[0]._bound)
        for index in range(num_models):
            siblings = [state._bound[index] for state in self.states]
            out = type(siblings[0]).perturb_trials(
                siblings, out, segment, cycle, chunk
            )
        return out


class NonIdealityStack:
    """An ordered set of device non-ideality models with one base seed.

    Stateless and reusable: all randomness is keyed off ``seed`` and the
    layer/segment/cycle/chunk coordinates (see :mod:`repro.nonideal.base`),
    so the same stack produces the same perturbations in every run, and
    :meth:`reseeded` derives an independent replica for Monte Carlo trials.
    Models may be given as instances or as registry spec dicts.
    """

    def __init__(
        self,
        models: Iterable[Union[NonIdealityModel, Dict[str, object]]],
        seed: int = 0,
    ) -> None:
        self.models: Tuple[NonIdealityModel, ...] = tuple(build_models(models))
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    def specs(self) -> List[Dict[str, object]]:
        """Registry specs of every model (round-trips via ``from_specs``)."""
        return [model.spec() for model in self.models]

    @classmethod
    def from_specs(cls, specs, seed: int = 0) -> "NonIdealityStack":
        return cls(specs, seed=seed)

    def reseeded(self, seed: int) -> "NonIdealityStack":
        """The same models under a different base seed (fresh devices/noise)."""
        return NonIdealityStack(self.models, seed=seed)

    def derive_trial(self, base_seed: int, trial: int) -> "NonIdealityStack":
        """Replica for Monte Carlo trial ``trial`` of a run seeded ``base_seed``.

        The stack's own seed is folded into the derivation, so two stacks
        with different seeds run genuinely different trial sequences even
        under the same ``base_seed``.
        """
        return self.reseeded(
            derive_seed(self.seed, "monte-carlo-trial", base_seed, trial)
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_cell_config(cls, cell_config, seed: int = 0) -> "NonIdealityStack":
        """Build the stack equivalent of :class:`repro.crossbar.cell.CellConfig`.

        ``programming_sigma`` maps to log-normal
        :class:`~repro.nonideal.models.ConductanceVariation` and
        ``read_noise_sigma`` to relative
        :class:`~repro.nonideal.models.GaussianReadNoise` — the same
        distributions :class:`~repro.crossbar.cell.ReRAMCellModel` draws,
        but keyed so the datapath engines stay bit-identical.
        """
        from repro.nonideal.models import ConductanceVariation, GaussianReadNoise

        models: List[NonIdealityModel] = []
        if cell_config.programming_sigma > 0.0:
            models.append(ConductanceVariation(sigma=cell_config.programming_sigma))
        if cell_config.read_noise_sigma > 0.0:
            models.append(
                GaussianReadNoise(sigma=cell_config.read_noise_sigma, relative=True)
            )
        return cls(models, seed=seed)

    # ------------------------------------------------------------------ #
    def bind_layer(
        self,
        layer: str,
        *,
        crossbar_size: int,
        segment_sizes: Sequence[int],
        columns: int,
        max_bitline: int,
    ) -> LayerNoiseState:
        """Bind every model to one layer's mapping geometry."""
        bound = [
            model.bind(
                LayerNoiseContext(
                    layer=str(layer),
                    seed=self.seed,
                    model_index=index,
                    crossbar_size=int(crossbar_size),
                    segment_sizes=tuple(int(s) for s in segment_sizes),
                    columns=int(columns),
                    max_bitline=int(max_bitline),
                )
            )
            for index, model in enumerate(self.models)
        ]
        return LayerNoiseState(bound, max_bitline=max_bitline)

    def bind_mapped(self, layer: str, mapped) -> LayerNoiseState:
        """Convenience binding from a :class:`~repro.crossbar.mapping.MappedMVMLayer`."""
        return self.bind_layer(
            layer,
            crossbar_size=mapped.topology.crossbar_size,
            segment_sizes=mapped.segment_sizes,
            columns=2 * mapped.num_weight_planes * mapped.out_features,
            max_bitline=mapped.max_bitline_value,
        )

    def __len__(self) -> int:
        return len(self.models)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(type(m).__name__ for m in self.models)
        return f"NonIdealityStack([{inner}], seed={self.seed})"


def as_stack(noise, seed: Optional[int] = None) -> Optional[NonIdealityStack]:
    """Normalise the many accepted ``noise=`` forms into a stack (or ``None``).

    Accepts ``None``, a :class:`NonIdealityStack`, a single
    :class:`NonIdealityModel`, a sequence of models and/or registry spec
    dicts, or a legacy object implementing the old ``apply(values)``
    protocol (wrapped with a deprecation warning; see
    :class:`~repro.nonideal.models.LegacyNoiseAdapter`).
    """
    if noise is None:
        return None
    if isinstance(noise, NonIdealityStack):
        return noise if seed is None else noise.reseeded(seed)
    if isinstance(noise, NonIdealityModel):
        default = getattr(noise, "seed", None)
        base = seed if seed is not None else (default if default is not None else 0)
        return NonIdealityStack([noise], seed=int(base))
    if isinstance(noise, (list, tuple)):
        if not noise:
            return None
        from repro.nonideal.models import LegacyNoiseAdapter

        items = [
            LegacyNoiseAdapter(item)
            if not isinstance(item, (NonIdealityModel, dict)) and hasattr(item, "apply")
            else item
            for item in noise
        ]
        stack = NonIdealityStack(items, seed=0 if seed is None else seed)
        if seed is None:
            # Honour a seed carried by a legacy-shim model (same rule as the
            # single-model form): the first one found becomes the base seed.
            carried = [
                int(s) for s in
                (getattr(model, "seed", None) for model in stack.models)
                if s is not None
            ]
            if carried:
                stack = stack.reseeded(carried[0])
                if len(set(carried)) > 1:
                    warnings.warn(
                        f"multiple per-model seeds {carried} in a noise list; "
                        f"only the first ({carried[0]}) becomes the stack base "
                        "seed — construct NonIdealityStack(models, seed=...) "
                        "explicitly to control the stream",
                        UserWarning,
                        stacklevel=2,
                    )
        return stack
    if hasattr(noise, "apply"):
        from repro.nonideal.models import LegacyNoiseAdapter

        return NonIdealityStack(
            [LegacyNoiseAdapter(noise)], seed=0 if seed is None else seed
        )
    raise TypeError(
        f"cannot interpret {type(noise).__name__!r} as a non-ideality model, "
        "stack, spec list, or legacy NoiseModel"
    )
