"""Foundations of the device non-ideality subsystem.

The design constraint that shapes everything here is **engine bit-parity**:
the fast (fused) and reference (per-cycle/segment loop) simulation engines
must produce *bit-identical* outputs under noise, even though they traverse
the datapath in different block orders.  A shared mutable RNG stream cannot
provide that — whichever engine asks first changes what the other sees — so
every stochastic draw in this subsystem is **counter-based and keyed**: the
noise applied to a bit-line element is a pure function of

    (stack seed, model index, layer, chunk, segment, input cycle, position)

derived through :func:`repro.utils.rng.derive_seed`.  Both engines visit the
same logical blocks (identical shapes and coordinates, merely in a different
order), so they reconstruct the same noise sample for sample.

Two lifetimes of randomness are distinguished:

* **static** draws model device state fixed at programming time (conductance
  variation, stuck-at fault maps).  Keyed by ``(layer, segment)`` only and
  cached on the bound model, so every input cycle, chunk and trial of one
  run sees the same device.
* **per-read** draws model noise regenerated on every access (read noise).
  Keyed additionally by ``(chunk, segment, cycle)``, so each conversion
  batch sees a fresh — but reproducible — sample.

A model is *bound* to a layer before use: :meth:`NonIdealityModel.bind`
receives the layer's mapping geometry (:class:`LayerNoiseContext`) and
returns a :class:`BoundModel` holding any pre-drawn static state.  Bound
models expose three capabilities the engines exploit:

* ``perturb`` — perturb one raw bit-line block (works for every model);
* ``integer_domain`` — the perturbation maps exact integer bit-line values
  to exact integer values, so the fast engine can stay on its integer-LUT
  conversion path (with the LUT bound enlarged to ``output_bound``);
* ``value_map`` — the perturbation is a pure per-value integer map (no
  column or RNG dependence), so the fast engine can fold it into the ADC
  transfer LUT (:func:`repro.adc.lut.compose_transfer_lut`) and pay *zero*
  per-element cost.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import derive_seed, new_rng


@dataclasses.dataclass(frozen=True)
class LayerNoiseContext:
    """Everything a model may key its draws on for one mapped layer.

    Attributes
    ----------
    layer:
        Name of the MVM layer (part of every derived seed).
    seed:
        Base seed of the owning :class:`~repro.nonideal.stack.NonIdealityStack`.
    model_index:
        Position of the model in the stack (separates the streams of two
        instances of the same model class).
    crossbar_size:
        Physical array width (used e.g. by IR-drop column positions).
    segment_sizes:
        Rows of each word-line segment (cell populations for fault draws).
    columns:
        Bit lines per segment block (``2 · planes · out_features``).
    max_bitline:
        Largest ideal bit-line value of the layer (LUT bound, and the
        reference scale for ``relative`` noise magnitudes).
    """

    layer: str
    seed: int
    model_index: int
    crossbar_size: int
    segment_sizes: Tuple[int, ...]
    columns: int
    max_bitline: int

    def draw_key(self, *labels) -> int:
        """The derived seed for ``labels`` under this context.

        This integer *is* the keyed-sampling counter: feeding it to
        :func:`repro.utils.rng.new_rng` (as :meth:`rng` does) or to the
        array backend's ``keyed_normal`` yields the same numpy-canonical
        stream in every engine, batch layout and backend.
        """
        return derive_seed(self.seed, "nonideal", self.model_index, self.layer, *labels)

    def rng(self, *labels) -> np.random.Generator:
        """A fresh generator for ``labels``, keyed under this context.

        The same ``(seed, model_index, layer, labels)`` tuple always yields
        the same stream — this is what makes the subsystem's sampling
        *counter-based* rather than sequential.
        """
        return new_rng(self.draw_key(*labels))


class BoundModel:
    """One non-ideality model bound to one mapped layer.

    The base implementation is the identity; models override the pieces they
    need.  ``perturb`` must never mutate its input (the engines may pass
    views into reused scratch buffers) and must return float64 so both
    engines merge exactly the same values.
    """

    def __init__(self, ctx: LayerNoiseContext) -> None:
        self.ctx = ctx

    @property
    def integer_domain(self) -> bool:
        """True when ``perturb`` maps exact integers to exact integers."""
        return False

    @property
    def cycle_invariant(self) -> bool:
        """True when ``perturb`` is independent of ``(cycle, chunk)``.

        Static device state (programmed variation factors, fault maps,
        drift, wire geometry) perturbs every input cycle of a segment
        identically, element-wise per (row, column) — independent of the
        row count and of which cycle or chunk a block belongs to.
        Declaring this lets the batched Monte Carlo kernel collapse its
        per-(segment, cycle) loop into **one** ``perturb_trials`` call per
        segment covering all input cycles at once.  Models that re-draw
        per read access (noise keyed by ``(chunk, segment, cycle)`` or
        shaped by the row count) must leave this ``False``.
        """
        return False

    def output_bound(self, input_bound: int) -> int:
        """Upper bound of perturbed values given inputs in ``0 … input_bound``.

        Only meaningful for integer-domain models (sizes the conversion LUT).
        """
        return int(input_bound)

    def value_map(self, input_bound: int) -> Optional[np.ndarray]:
        """Pure per-value integer map over ``0 … input_bound``, or ``None``.

        When every model of a stack publishes a map, the fast engine composes
        them into the ADC transfer LUT instead of touching the data blocks.
        The map must satisfy ``map[v] == perturb(v)`` for every integer ``v``.
        """
        return None

    def perturb(
        self, values: np.ndarray, segment: int, cycle: int, chunk: int
    ) -> np.ndarray:
        """Perturb one raw bit-line block of shape ``(rows, columns)``."""
        return values

    @staticmethod
    def perturb_trials(
        siblings: Sequence["BoundModel"],
        values: np.ndarray,
        segment: int,
        cycle: int,
        chunk: int,
    ) -> np.ndarray:
        """Perturb a ``(trials, rows, columns)`` batch of sibling replicas.

        ``siblings[t]`` is the same model bound under Monte Carlo trial
        ``t``'s derived seed; ``values[t]`` is that trial's raw block.  The
        batched Monte Carlo kernel calls this once per (segment, cycle)
        block instead of ``trials`` separate ``perturb`` calls.

        The contract is **bit-identity**: ``result[t]`` must equal
        ``siblings[t].perturb(values[t], ...)`` exactly.  This default
        simply loops; concrete models override it with a vectorised batch
        (stacked static factors, one fused element-wise pass) whose
        per-trial slices are exact because every operation involved is
        element-wise per trial.
        """
        out = np.empty(
            (len(siblings),) + tuple(values.shape[1:]), dtype=np.float64
        )
        for index, bound in enumerate(siblings):
            out[index] = bound.perturb(values[index], segment, cycle, chunk)
        return out


def stacked_trial_state(siblings, segment, builder):
    """Cached per-trial stacked static state of one sibling group.

    Vectorised ``perturb_trials`` implementations stack each sibling's
    static per-segment state (variation factors, fault deltas) into one
    ``(trials, …)`` array.  Rebuilding that stack on every chunk call is a
    fixed cost the batched kernel pays per invocation — dominant in the
    overhead-bound small-row regime the batching targets — so the stack is
    cached on the first sibling, keyed by ``segment``.  Each entry remembers
    the exact sibling tuple it was built from and is rebuilt whenever the
    grouping changes (trial sub-groups slice sibling lists differently), so
    a hit can never mix state across groups.
    """
    owner = siblings[0]
    cache = owner.__dict__.setdefault("_stacked_trial_cache", {})
    entry = cache.get(segment)
    if entry is not None:
        group, stacked = entry
        if len(group) == len(siblings) and all(
            a is b for a, b in zip(group, siblings)
        ):
            return stacked
    stacked = builder()
    cache[segment] = (tuple(siblings), stacked)
    return stacked


class NonIdealityModel:
    """Base class of all registered device non-ideality models.

    Subclasses are immutable parameter holders; all state derived from a
    layer (static device draws, caches) lives on the :class:`BoundModel`
    returned by :meth:`bind`.  ``name`` is the registry key and ``params``
    must round-trip through the constructor:
    ``type(m)(**m.params())`` ≡ ``m``.
    """

    name: ClassVar[str] = ""

    def params(self) -> Dict[str, object]:
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """Serializable description; inverse of
        :func:`repro.nonideal.registry.build_model`."""
        return {"model": self.name, **self.params()}

    def bind(self, ctx: LayerNoiseContext) -> BoundModel:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"

    # ------------------------------------------------------------------ #
    # Legacy one-off API (the old ``NoiseModel.apply`` protocol).
    # ------------------------------------------------------------------ #
    _apply_calls: int = 0

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Perturb an arbitrary array outside the engine plumbing.

        Retained for the deprecated :mod:`repro.sim.fidelity` interface and
        for quick interactive use.  Successive calls advance an internal
        counter that is folded into the binding key, so repeated
        applications draw fresh (but reproducible) noise — for static
        models too, since each call binds a fresh pseudo-device.  Inside
        the simulator the engines call :meth:`bind` / ``perturb`` directly
        — never this method.
        """
        raw = np.asarray(values, dtype=np.float64)
        block = raw.reshape(1, -1) if raw.ndim < 2 else raw.reshape(-1, raw.shape[-1])
        columns = block.shape[1] if block.size else 1
        ctx = LayerNoiseContext(
            layer=f"<apply:{self._apply_calls}>",
            seed=int(getattr(self, "seed", None) or 0),
            model_index=0,
            crossbar_size=columns,
            segment_sizes=(max(1, block.shape[0]),),
            columns=columns,
            max_bitline=max(1, int(np.ceil(block.max(initial=0.0)))),
        )
        out = self.bind(ctx).perturb(block, segment=0, cycle=0, chunk=self._apply_calls)
        self._apply_calls += 1
        if out is block:  # identity models hand the input back untouched
            return values
        return out.reshape(raw.shape)
