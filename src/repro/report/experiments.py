"""Experiment records: structured results for every reproduced figure.

Each benchmark builds an :class:`ExperimentRecord`, prints it, and (when a
path is supplied) saves it as JSON so EXPERIMENTS.md can quote exact numbers.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.report.tables import format_table

Number = Union[int, float]


@dataclasses.dataclass
class ExperimentRecord:
    """One reproduced experiment (a figure or an ablation).

    Attributes
    ----------
    experiment_id:
        Identifier from DESIGN.md's experiment index (e.g. ``"fig6c"``).
    description:
        One-line description of what is being reproduced.
    paper_reference:
        What the paper reports for this artefact (free text).
    rows:
        The regenerated data, one dict per row/series point.
    metadata:
        Workload sizes, presets, seeds — whatever is needed to rerun.
    """

    experiment_id: str
    description: str
    paper_reference: str
    rows: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def add_row(self, **fields: object) -> None:
        self.rows.append(dict(fields))

    def to_table(self, columns: Optional[Sequence[str]] = None) -> str:
        header = f"[{self.experiment_id}] {self.description}\npaper: {self.paper_reference}"
        return f"{header}\n{format_table(self.rows, columns=columns)}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "paper_reference": self.paper_reference,
            "rows": self.rows,
            "metadata": self.metadata,
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True, default=float))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentRecord":
        data = json.loads(Path(path).read_text())
        return cls(
            experiment_id=data["experiment_id"],
            description=data["description"],
            paper_reference=data["paper_reference"],
            rows=list(data.get("rows", [])),
            metadata=dict(data.get("metadata", {})),
        )


def summarize_records(records: Sequence[ExperimentRecord]) -> str:
    """Short index of a set of experiment records."""
    rows = [
        {
            "experiment": record.experiment_id,
            "description": record.description,
            "rows": len(record.rows),
        }
        for record in records
    ]
    return format_table(rows)
