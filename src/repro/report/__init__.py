"""Reporting: text tables, figure builders and experiment records."""

from repro.report.experiments import ExperimentRecord, summarize_records
from repro.report.figures import (
    fig3a_distribution_record,
    fig6_accuracy_record,
    fig6c_ops_record,
    fig7_power_record,
)
from repro.report.tables import (
    ascii_bar_chart,
    format_cell,
    format_series,
    format_table,
    histogram_rows,
)

__all__ = [
    "ExperimentRecord",
    "ascii_bar_chart",
    "fig3a_distribution_record",
    "fig6_accuracy_record",
    "fig6c_ops_record",
    "fig7_power_record",
    "format_cell",
    "format_series",
    "format_table",
    "histogram_rows",
    "summarize_records",
]
