"""Reporting: text tables, figure builders and experiment records."""

from repro.report.experiments import ExperimentRecord, summarize_records
from repro.report.figures import (
    fig3a_distribution_record,
    fig3a_records_from_run,
    fig6_accuracy_record,
    fig6a_record_from_run,
    fig6b_record_from_run,
    fig6c_ops_record,
    fig6c_record_from_run,
    fig7_power_record,
    fig7_record_from_run,
    figure_records_from_run,
    record_to_ascii,
    record_to_csv,
    record_to_markdown,
    render_figure_outputs,
)
from repro.report.tables import (
    ascii_bar_chart,
    format_cell,
    format_series,
    format_table,
    histogram_rows,
)

__all__ = [
    "ExperimentRecord",
    "ascii_bar_chart",
    "fig3a_distribution_record",
    "fig3a_records_from_run",
    "fig6_accuracy_record",
    "fig6a_record_from_run",
    "fig6b_record_from_run",
    "fig6c_ops_record",
    "fig6c_record_from_run",
    "fig7_power_record",
    "fig7_record_from_run",
    "figure_records_from_run",
    "record_to_ascii",
    "record_to_csv",
    "record_to_markdown",
    "render_figure_outputs",
    "format_cell",
    "format_series",
    "format_table",
    "histogram_rows",
    "summarize_records",
]
