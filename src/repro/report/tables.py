"""Plain-text tabulation helpers used by the examples and benchmarks.

No plotting libraries are assumed; every figure of the paper is regenerated
as a text table / series that can be diffed, logged by pytest-benchmark, or
pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Render one table cell (floats at fixed precision, rest via ``str``)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}g}"
    return str(value)


def union_columns(rows: Sequence[Mapping[str, Cell]]) -> List[str]:
    """The union of the rows' keys in first-appearance order — the shared
    column policy of the ASCII, markdown and CSV renderings."""
    return list(dict.fromkeys(key for row in rows for key in row))


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned ASCII table.

    ``columns`` defaults to the union of the rows' keys in first-appearance
    order, so heterogeneous rows (e.g. an experiment sweep mixing clean
    evaluations with Monte Carlo grid points) keep every column visible.
    """
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = union_columns(rows)
    rendered = [
        [format_cell(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    )
    return f"{header}\n{separator}\n{body}"


def format_series(
    name: str, xs: Iterable[Cell], ys: Iterable[Number], precision: int = 4
) -> str:
    """Render one (x, y) series as ``name: x=y, x=y, ...`` for logs."""
    pairs = ", ".join(
        f"{format_cell(x, precision)}={format_cell(float(y), precision)}"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def histogram_rows(
    values, num_bins: int = 16, precision: int = 3
) -> List[Dict[str, Cell]]:
    """Summarise a sample as histogram rows (used for the Fig. 3a text view)."""
    import numpy as np

    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return []
    counts, edges = np.histogram(values, bins=num_bins)
    total = counts.sum()
    rows: List[Dict[str, Cell]] = []
    for i, count in enumerate(counts):
        rows.append(
            {
                "bin_low": round(float(edges[i]), precision),
                "bin_high": round(float(edges[i + 1]), precision),
                "count": int(count),
                "fraction": round(float(count / total), precision) if total else 0.0,
            }
        )
    return rows


def ascii_bar_chart(
    data: Mapping[str, Number], width: int = 40, precision: int = 3
) -> str:
    """Horizontal ASCII bar chart (for quick visual inspection in examples)."""
    if not data:
        return "(no data)"
    max_value = max(float(v) for v in data.values()) or 1.0
    label_width = max(len(str(k)) for k in data)
    lines = []
    for key, value in data.items():
        bar = "#" * max(0, int(round(width * float(value) / max_value)))
        lines.append(f"{str(key).ljust(label_width)} | {bar} {format_cell(float(value), precision)}")
    return "\n".join(lines)
