"""Builders that assemble the paper's figures as experiment records.

These helpers contain the *reporting* logic shared between the benchmark
harness, the experiments CLI and CI: given simulator/calibration outputs —
or, since the figure pipeline moved onto the experiment store, a
:class:`~repro.experiments.runner.SweepRun` plus the store its jobs wrote —
they produce the rows of each figure.  The heavy lifting (training,
simulation, search) stays in the runner so figure sweeps cache, resume and
parallelise like any other experiment.

Two layers of API:

* ``fig*_record(...)`` — pure row builders from in-memory data (the
  original seed interface, still used directly by tests).
* ``fig*_record_from_run(run, store)`` / :func:`render_figure_outputs` —
  the store-backed path: rebuild each figure's record from a figure
  preset's stored rows/arrays and emit the paper-style JSON + markdown +
  CSV tables.  This is the one code path shared by the ``bench_fig*.py``
  shims, ``python -m repro.experiments run --preset fig*`` and CI.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.report.experiments import ExperimentRecord
from repro.report.tables import (
    ascii_bar_chart,
    format_cell,
    format_table,
    histogram_rows,
    union_columns,
)


def fig3a_distribution_record(
    layer_samples: Mapping[str, np.ndarray],
    num_bins: int = 16,
    max_layers: Optional[int] = None,
) -> ExperimentRecord:
    """Fig. 3a: the skewed distribution of crossbar bit-line outputs."""
    record = ExperimentRecord(
        experiment_id="fig3a",
        description="Distribution of crossbar bit-line outputs",
        paper_reference=(
            "Highly imbalanced distribution; the majority of samples concentrate "
            "in a small interval close to zero (Fig. 3a)"
        ),
    )
    names = list(layer_samples)
    if max_layers is not None:
        names = names[:max_layers]
    for name in names:
        samples = np.asarray(layer_samples[name], dtype=np.float64)
        if samples.size == 0:
            continue
        median = float(np.median(samples))
        p95 = float(np.percentile(samples, 95))
        maximum = float(samples.max())
        low_eighth = float(np.mean(samples <= maximum / 8.0)) if maximum > 0 else 1.0
        record.add_row(
            layer=name,
            count=int(samples.size),
            median=median,
            p95=p95,
            max=maximum,
            frac_below_max_over_8=low_eighth,
        )
    record.metadata["histograms"] = {
        name: histogram_rows(layer_samples[name], num_bins=num_bins) for name in names
    }
    return record


def fig6_accuracy_record(
    experiment_id: str,
    description: str,
    paper_reference: str,
    accuracy_by_config: Mapping[str, Mapping[str, float]],
) -> ExperimentRecord:
    """Fig. 6a/6b: accuracy versus ADC sensing precision.

    ``accuracy_by_config`` maps workload name to an ordered mapping of
    configuration label (``"f/f"``, ``"8/f"``, ``"8"``, … ``"4"``) to accuracy.
    """
    record = ExperimentRecord(
        experiment_id=experiment_id,
        description=description,
        paper_reference=paper_reference,
    )
    for workload, series in accuracy_by_config.items():
        for label, accuracy in series.items():
            record.add_row(workload=workload, config=label, accuracy=float(accuracy))
    return record


def fig6c_ops_record(
    remaining_by_workload: Mapping[str, float],
    per_layer: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> ExperimentRecord:
    """Fig. 6c: remaining A/D operations with TRQ (relative to 8-op baseline)."""
    record = ExperimentRecord(
        experiment_id="fig6c",
        description="Remaining A/D operations with TRQ",
        paper_reference="42%-62% of baseline operations remain (1.6-2.3x reduction)",
    )
    for workload, fraction in remaining_by_workload.items():
        record.add_row(
            workload=workload,
            remaining_fraction=float(fraction),
            reduction_factor=float(1.0 / fraction) if fraction > 0 else float("inf"),
        )
    if per_layer:
        record.metadata["per_layer_remaining_fraction"] = {
            workload: dict(layers) for workload, layers in per_layer.items()
        }
    return record


def fig7_power_record(rows: Sequence[Dict[str, object]]) -> ExperimentRecord:
    """Fig. 7: power/energy breakdown per workload and configuration."""
    record = ExperimentRecord(
        experiment_id="fig7",
        description="Accelerator energy breakdown (ISAAC vs Ours vs UQ)",
        paper_reference=(
            "ADC dominates the ISAAC baseline (>60%); TRQ significantly reduces the "
            "ADC component while other components stay unchanged (Fig. 7)"
        ),
    )
    for row in rows:
        record.add_row(**row)
    return record


# --------------------------------------------------------------------- #
# Store-backed figure reports: rebuild each figure from a figure preset's
# SweepRun + ResultStore (the post-port pipeline).
# --------------------------------------------------------------------- #
def _stored(run, store):
    """(job, key, payload) for every job of the run with a stored artifact,
    in grid order (tolerated failures simply contribute nothing)."""
    for job, key in zip(run.sweep.expand(), run.keys):
        if store.has(key):
            yield job, key, store.load(key)


def _workload_series(
    run, store, include
) -> Dict[str, Dict[str, float]]:
    """Per-workload ``{config label: accuracy}`` series in grid order."""
    series: Dict[str, Dict[str, float]] = {}
    for job, _key, payload in _stored(run, store):
        label = job.label_dict
        config = label.get("config")
        if config is None or not include(job, config):
            continue
        series.setdefault(label["workload"], {})[config] = payload["row"]["accuracy"]
    return series


def _eval_images(run) -> Optional[int]:
    counts = {job.images for job in run.sweep.expand() if job.kind != "distribution"}
    return sorted(counts)[0] if counts else None


def fig3a_records_from_run(run, store) -> Dict[str, ExperimentRecord]:
    """Per-workload Fig. 3a records rebuilt from stored bit-line samples."""
    records: Dict[str, ExperimentRecord] = {}
    for job, key, _payload in _stored(run, store):
        if job.kind != "distribution":
            continue
        samples = store.load_arrays(key)
        record = fig3a_distribution_record(samples, num_bins=16)
        record.metadata.update(
            {"workload": job.workload.name,
             "calibration_images": job.distribution.images}
        )
        records[job.workload.name] = record
    return records


def fig6a_record_from_run(run, store) -> ExperimentRecord:
    """Fig. 6a from stored reference + calibrated-uniform evaluation rows."""
    def include(job, config):
        return job.kind == "evaluate" and (
            job.datapath in ("float", "fakequant") or config.isdigit()
        )

    raw = _workload_series(run, store, include)
    accuracy_by_config: Dict[str, Dict[str, float]] = {}
    for workload, series in raw.items():
        bits = sorted((int(c) for c in series if c.isdigit()), reverse=True)
        ordered: Dict[str, float] = {}
        for config in ("f/f", "8/f", *map(str, bits)):
            if config in series:
                ordered[config] = series[config]
        accuracy_by_config[workload] = ordered
    record = fig6_accuracy_record(
        "fig6a",
        "Accuracy vs ADC resolution, uniform ADC (no TRQ)",
        "Uniform quantization needs >= 7 bits to preserve accuracy (Fig. 6a)",
        accuracy_by_config,
    )
    if (images := _eval_images(run)) is not None:
        record.metadata["eval_images"] = images
    return record


def fig6b_record_from_run(run, store) -> ExperimentRecord:
    """Fig. 6b from stored TRQ calibration rows (+ the uniform 4-bit point)."""
    accuracy_by_config: Dict[str, Dict[str, float]] = {}
    ops_by_config: Dict[str, Dict[str, float]] = {}
    uniform_4bit: Dict[str, float] = {}
    for job, _key, payload in _stored(run, store):
        config = job.label_dict.get("config", "")
        workload = job.workload.name
        row = payload["row"]
        if job.kind == "evaluate" and config == "4":
            uniform_4bit[workload] = row["accuracy"]
        elif job.kind == "calibration" and config.startswith("trq"):
            bits = config[len("trq"):]
            series = accuracy_by_config.setdefault(workload, {})
            series[bits] = row["accuracy"]
            if "ideal" not in series:
                series["ideal"] = row["baseline_accuracy"]
            ops_by_config.setdefault(workload, {})[bits] = row["remaining_ops_fraction"]
    record = fig6_accuracy_record(
        "fig6b",
        "Accuracy vs ADC resolution with TRQ",
        "TRQ at 4-bit sensing matches uniform conversion at 7-8 bits (Fig. 6b)",
        accuracy_by_config,
    )
    record.metadata["remaining_ops_fraction"] = ops_by_config
    record.metadata["uniform_4bit_accuracy"] = uniform_4bit
    if (images := _eval_images(run)) is not None:
        record.metadata["eval_images"] = images
    return record


def fig6c_record_from_run(run, store) -> ExperimentRecord:
    """Fig. 6c from the stored 4-bit TRQ calibration artifacts.

    Byte-identical to the pre-port benchmark's record: same row builder
    (:func:`fig6c_ops_record`), same per-layer metadata, values read back
    from the store's exact-round-trip JSON.
    """
    remaining: Dict[str, float] = {}
    per_layer: Dict[str, Dict[str, float]] = {}
    accuracy: Dict[str, Dict[str, float]] = {}
    for job, _key, payload in _stored(run, store):
        if job.kind != "calibration" or job.calibration.initial_n_max != 4:
            continue
        workload = job.workload.name
        row = payload["row"]
        remaining[workload] = row["remaining_ops_fraction"]
        per_layer[workload] = dict(payload["per_layer_remaining_fraction"])
        accuracy[workload] = {"ideal": row["baseline_accuracy"], "trq": row["accuracy"]}
    record = fig6c_ops_record(remaining, per_layer=per_layer)
    record.metadata["accuracy_ideal_vs_trq"] = accuracy
    if (images := _eval_images(run)) is not None:
        record.metadata["eval_images"] = images
    return record


def fig7_record_from_run(run, store) -> ExperimentRecord:
    """Fig. 7 from the stored power-breakdown artifacts."""
    rows: List[Dict[str, object]] = []
    adc_reduction: Dict[str, float] = {}
    for job, _key, payload in _stored(run, store):
        if job.kind != "power":
            continue
        rows.extend(payload["breakdown_rows"])
        adc_reduction[job.workload.name] = payload["row"]["adc_reduction_vs_isaac"]
    record = fig7_power_record(rows)
    record.metadata["adc_reduction_vs_isaac"] = adc_reduction
    return record


# --------------------------------------------------------------------- #
# Markdown / CSV emitters and the one-stop renderer
# --------------------------------------------------------------------- #
def record_to_markdown(record: ExperimentRecord) -> str:
    """A GitHub-flavoured markdown rendering of one experiment record."""
    lines = [
        f"# {record.experiment_id}: {record.description}",
        "",
        f"> paper: {record.paper_reference}",
        "",
    ]
    if record.rows:
        columns = union_columns(record.rows)
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in columns) + "|")
        for row in record.rows:
            lines.append(
                "| "
                + " | ".join(format_cell(row.get(c, "")) for c in columns)
                + " |"
            )
    else:
        lines.append("_(no rows)_")
    lines.append("")
    return "\n".join(lines)


#: Per-record-stem (label column, value column) picks for the ASCII charts;
#: records not listed fall back to the first string + first numeric column.
_ASCII_CHART_COLUMNS = {
    "fig6a": ("config", "accuracy"),
    "fig6b": ("config", "accuracy"),
    "fig6c": ("workload", "remaining_fraction"),
    "fig7": ("config", "total_J"),
}


def _ascii_chart_columns(record: ExperimentRecord):
    stem = record.experiment_id.split("_")[0]
    preferred = _ASCII_CHART_COLUMNS.get(stem)
    columns = union_columns(record.rows)
    if preferred and all(c in columns for c in preferred):
        return preferred
    label = next(
        (c for c in columns
         if any(isinstance(row.get(c), str) for row in record.rows)),
        columns[0] if columns else None,
    )
    value = next(
        (c for c in columns
         if c != label
         and any(isinstance(row.get(c), (int, float)) for row in record.rows)),
        None,
    )
    return (label, value) if label is not None and value is not None else None


def record_to_ascii(record: ExperimentRecord, width: int = 40) -> str:
    """A terminal rendering of one figure record: bar charts + the table.

    Rows are grouped by workload when a ``workload`` column exists (one
    chart per workload, mirroring the paper's per-workload panels); the
    bar value/label columns are figure-aware with a generic fallback, and
    the full aligned table follows so no column is lost to the chart.
    """
    lines = [
        f"# {record.experiment_id}: {record.description}",
        f"paper: {record.paper_reference}",
        "",
    ]
    picked = _ascii_chart_columns(record)
    if record.rows and picked is not None:
        label_col, value_col = picked
        groups: Dict[str, Dict[str, float]] = {}
        for row in record.rows:
            value = row.get(value_col)
            # Guard each cell: the picker accepts a column when ANY row is
            # numeric, but a sparse/mixed column must skip (not crash on)
            # its non-numeric cells.
            if label_col not in row or isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                continue
            group = str(row["workload"]) if "workload" in row else ""
            if label_col == "workload":
                group = ""
            groups.setdefault(group, {})[str(row[label_col])] = float(value)
        for group, series in groups.items():
            if group:
                lines.append(f"{group} ({value_col}):")
            else:
                lines.append(f"{value_col}:")
            lines.append(ascii_bar_chart(series, width=width))
            lines.append("")
    lines.append(format_table(record.rows) if record.rows else "(no rows)")
    lines.append("")
    return "\n".join(lines)


def record_to_csv(record: ExperimentRecord) -> str:
    """A CSV rendering of one experiment record's rows."""
    columns = union_columns(record.rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in record.rows:
        writer.writerow({c: row.get(c, "") for c in columns})
    return buffer.getvalue()


def figure_records_from_run(
    experiment_id: str, run, store
) -> Dict[str, ExperimentRecord]:
    """Every figure record a preset's run can rebuild, keyed by output stem.

    ``fig6`` yields all three of its sub-figures; ``fig3`` yields one
    record per workload (``fig3a_<workload>``).
    """
    records: Dict[str, ExperimentRecord] = {}
    if experiment_id == "fig3":
        for workload, record in fig3a_records_from_run(run, store).items():
            records[f"fig3a_{workload}"] = record
    if experiment_id in ("fig6", "fig6a"):
        records["fig6a"] = fig6a_record_from_run(run, store)
    if experiment_id in ("fig6", "fig6b"):
        records["fig6b"] = fig6b_record_from_run(run, store)
    if experiment_id in ("fig6", "fig6c"):
        records["fig6c"] = fig6c_record_from_run(run, store)
    if experiment_id == "fig7":
        records["fig7"] = fig7_record_from_run(run, store)
    return records


def render_figure_outputs(
    experiment_id: str,
    run,
    store,
    out_dir: Union[str, Path],
    formats: Sequence[str] = ("json", "md", "csv"),
) -> List[Path]:
    """Write each figure record as JSON + markdown + CSV tables.

    The shared reporting path of the ``bench_fig*.py`` shims, the CLI
    (``run --preset fig*``) and CI; returns the written paths.  Unknown
    experiment ids write nothing.  Add ``"ascii"`` to ``formats`` (the
    shims' and CLI's ``--ascii`` flag) for a ``<stem>.txt`` terminal
    rendering — per-workload bar charts plus the aligned table.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for stem, record in figure_records_from_run(experiment_id, run, store).items():
        if "json" in formats:
            written.append(record.save(out_dir / f"{stem}.json"))
        if "md" in formats:
            path = out_dir / f"{stem}.md"
            path.write_text(record_to_markdown(record))
            written.append(path)
        if "csv" in formats:
            path = out_dir / f"{stem}.csv"
            path.write_text(record_to_csv(record))
            written.append(path)
        if "ascii" in formats:
            path = out_dir / f"{stem}.txt"
            path.write_text(record_to_ascii(record))
            written.append(path)
    return written
