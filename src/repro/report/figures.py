"""Builders that assemble the paper's figures as experiment records.

These helpers contain the *reporting* logic shared between the benchmark
harness and the examples: given simulator/calibration outputs they produce
the rows of each figure.  The heavy lifting (training, simulation, search)
stays in the caller so benchmarks can control workload sizes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.report.experiments import ExperimentRecord
from repro.report.tables import histogram_rows


def fig3a_distribution_record(
    layer_samples: Mapping[str, np.ndarray],
    num_bins: int = 16,
    max_layers: Optional[int] = None,
) -> ExperimentRecord:
    """Fig. 3a: the skewed distribution of crossbar bit-line outputs."""
    record = ExperimentRecord(
        experiment_id="fig3a",
        description="Distribution of crossbar bit-line outputs",
        paper_reference=(
            "Highly imbalanced distribution; the majority of samples concentrate "
            "in a small interval close to zero (Fig. 3a)"
        ),
    )
    names = list(layer_samples)
    if max_layers is not None:
        names = names[:max_layers]
    for name in names:
        samples = np.asarray(layer_samples[name], dtype=np.float64)
        if samples.size == 0:
            continue
        median = float(np.median(samples))
        p95 = float(np.percentile(samples, 95))
        maximum = float(samples.max())
        low_eighth = float(np.mean(samples <= maximum / 8.0)) if maximum > 0 else 1.0
        record.add_row(
            layer=name,
            count=int(samples.size),
            median=median,
            p95=p95,
            max=maximum,
            frac_below_max_over_8=low_eighth,
        )
    record.metadata["histograms"] = {
        name: histogram_rows(layer_samples[name], num_bins=num_bins) for name in names
    }
    return record


def fig6_accuracy_record(
    experiment_id: str,
    description: str,
    paper_reference: str,
    accuracy_by_config: Mapping[str, Mapping[str, float]],
) -> ExperimentRecord:
    """Fig. 6a/6b: accuracy versus ADC sensing precision.

    ``accuracy_by_config`` maps workload name to an ordered mapping of
    configuration label (``"f/f"``, ``"8/f"``, ``"8"``, … ``"4"``) to accuracy.
    """
    record = ExperimentRecord(
        experiment_id=experiment_id,
        description=description,
        paper_reference=paper_reference,
    )
    for workload, series in accuracy_by_config.items():
        for label, accuracy in series.items():
            record.add_row(workload=workload, config=label, accuracy=float(accuracy))
    return record


def fig6c_ops_record(
    remaining_by_workload: Mapping[str, float],
    per_layer: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> ExperimentRecord:
    """Fig. 6c: remaining A/D operations with TRQ (relative to 8-op baseline)."""
    record = ExperimentRecord(
        experiment_id="fig6c",
        description="Remaining A/D operations with TRQ",
        paper_reference="42%-62% of baseline operations remain (1.6-2.3x reduction)",
    )
    for workload, fraction in remaining_by_workload.items():
        record.add_row(
            workload=workload,
            remaining_fraction=float(fraction),
            reduction_factor=float(1.0 / fraction) if fraction > 0 else float("inf"),
        )
    if per_layer:
        record.metadata["per_layer_remaining_fraction"] = {
            workload: dict(layers) for workload, layers in per_layer.items()
        }
    return record


def fig7_power_record(rows: Sequence[Dict[str, object]]) -> ExperimentRecord:
    """Fig. 7: power/energy breakdown per workload and configuration."""
    record = ExperimentRecord(
        experiment_id="fig7",
        description="Accelerator energy breakdown (ISAAC vs Ours vs UQ)",
        paper_reference=(
            "ADC dominates the ISAAC baseline (>60%); TRQ significantly reduces the "
            "ADC component while other components stay unchanged (Fig. 7)"
        ),
    )
    for row in rows:
        record.add_row(**row)
    return record
