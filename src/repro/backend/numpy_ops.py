"""The default numpy backend — the bit-exactness oracle.

Every method is the *very same* numpy call the fused kernels made before the
backend shim existed, so routing through this class changes nothing: outputs,
operation statistics and store artifact bytes are identical by construction.
All other backends are defined (and tested) against this one under the
``allclose`` tolerance contract documented in :mod:`repro.backend`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend import ArrayOps
from repro.utils.numeric import round_half_up
from repro.utils.rng import new_rng


class NumpyOps(ArrayOps):
    name = "numpy"
    bit_exact = True

    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return np.matmul(a, b, out=out) if out is not None else np.matmul(a, b)

    def take(
        self, table: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return np.take(table, indices, out=out)

    def bincount(self, codes: np.ndarray, minlength: int = 0) -> np.ndarray:
        return np.bincount(codes, minlength=minlength)

    def round_half_up(self, values: np.ndarray) -> np.ndarray:
        return round_half_up(values)

    def clip_min(self, values: np.ndarray, low: float) -> np.ndarray:
        return np.maximum(values, low)

    def keyed_normal(
        self, seed: int, sigma: float, shape: Tuple[int, ...]
    ) -> np.ndarray:
        return new_rng(seed).normal(0.0, sigma, size=shape)
