"""Optional torch backend (CPU tensors over zero-copy numpy views).

Importing this module requires torch; the registry only imports it when the
``torch`` backend is actually selected, so the rest of the package works on
machines without torch installed.

Contract: results satisfy ``np.allclose(torch_result, numpy_result,
rtol=repro.backend.BACKEND_RTOL)`` — see the tolerance contract in
:mod:`repro.backend`.  On the integer-domain datapath (exact small-integer
operands in float32/float64) torch's CPU kernels normally reproduce numpy
bit for bit, but only the numpy backend *guarantees* it; the keyed sampling
(:meth:`TorchOps.keyed_normal`) stays numpy-canonical by delegating to the
same PCG64 stream, because sampled noise feeds hash-relevant artifacts.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except ImportError as error:  # pragma: no cover
    raise ImportError(
        "the 'torch' array backend requires torch to be installed; "
        "install torch or select REPRO_BACKEND=numpy"
    ) from error

from repro.backend import ArrayOps
from repro.utils.numeric import round_half_up
from repro.utils.rng import new_rng


def _tensor(array: np.ndarray) -> "torch.Tensor":
    # ``from_numpy`` is zero-copy for contiguous arrays; fall back to a copy
    # for strided views (torch rejects negative strides).
    return torch.from_numpy(np.ascontiguousarray(array))


class TorchOps(ArrayOps):
    name = "torch"
    bit_exact = False

    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        result = torch.matmul(_tensor(a), _tensor(b)).numpy()
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def take(
        self, table: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        gathered = torch.take(
            _tensor(table), _tensor(np.asarray(indices, dtype=np.int64))
        ).numpy()
        if out is not None:
            np.copyto(out, gathered, casting="same_kind")
            return out
        return gathered

    def bincount(self, codes: np.ndarray, minlength: int = 0) -> np.ndarray:
        return torch.bincount(
            _tensor(np.asarray(codes, dtype=np.int64)), minlength=int(minlength)
        ).numpy()

    def round_half_up(self, values: np.ndarray) -> np.ndarray:
        # torch.floor matches numpy's; reuse the shared exact formula on a
        # tensor round-trip to keep the semantics identical.
        return round_half_up(np.asarray(values))

    def clip_min(self, values: np.ndarray, low: float) -> np.ndarray:
        return torch.clamp(_tensor(np.asarray(values)), min=low).numpy()

    def keyed_normal(
        self, seed: int, sigma: float, shape: Tuple[int, ...]
    ) -> np.ndarray:
        # Numpy-canonical by contract: sampled noise is hash-relevant.
        return new_rng(seed).normal(0.0, sigma, size=shape)
