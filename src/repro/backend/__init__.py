"""Pluggable array-ops backends for the fused simulation kernels.

The fused cycle/segment kernel (:mod:`repro.crossbar.mapping`) and its
batched Monte Carlo variant spend essentially all of their time in a handful
of array primitives: the per-segment matmul, the integer LUT gather
(``take``), the exact code histogram (``bincount``), the integer rounding /
clipping of quantized non-idealities, and the keyed Gaussian sampling of the
read-noise model.  This package routes those primitives through a small
:class:`ArrayOps` protocol so alternative implementations (torch today,
CuPy-style GPU backends later) can slot in underneath the simulator without
touching the kernels.

Tolerance contract
------------------
Only the ``numpy`` backend is the **bit-exactness oracle**: every
reproducibility guarantee in this repository — fast/reference engine parity,
batched-vs-loop Monte Carlo identity, the content-addressed store's hash
contract — is stated for numpy and enforced by the test suite.  Non-numpy
backends are held to an ``allclose`` contract instead (relative tolerance
``1e-6``, see :data:`BACKEND_RTOL`): on the integer-domain datapath they
generally reproduce numpy bit for bit (IEEE-754 arithmetic on exact small
integers), but this is *not* guaranteed across BLAS implementations, so
their results must never be written into a store that numpy runs share.
The experiments runner therefore records the active backend name in
telemetry/meta/history records so ``trace regress`` never compares across
backends silently.

Keyed sampling is **always** numpy-canonical: every stochastic draw in the
simulator is a pure function of derived seeds through numpy's PCG64 stream
(:func:`repro.utils.rng.new_rng`), and :meth:`ArrayOps.keyed_normal` of
every backend must delegate to that stream.  A backend that re-sampled on
its own RNG would silently change the hash-relevant artifact bytes.

Selection
---------
The active backend defaults to ``numpy`` and can be chosen with the
``REPRO_BACKEND`` environment variable (read once, lazily) or explicitly via
:func:`set_backend` (the experiments CLI exposes ``--backend``).  Backends
with missing dependencies (e.g. ``torch`` without torch installed) raise a
clear error only when actually selected.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Relative tolerance of the non-numpy backend contract (see module docstring).
BACKEND_RTOL = 1e-6


class ArrayOps:
    """The primitive array operations a simulation backend must provide.

    All arguments and results are numpy ``ndarray``\\ s at the boundary:
    backends convert internally (the kernels keep their scratch-buffer and
    integer-domain logic backend-agnostic).  ``matmul``/``take`` write into
    ``out`` when given, matching the numpy calls they replace.
    """

    #: Registry key of the backend.
    name: str = ""
    #: Whether results are guaranteed bit-identical to the numpy oracle.
    bit_exact: bool = False

    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        raise NotImplementedError

    def take(
        self, table: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        raise NotImplementedError

    def bincount(self, codes: np.ndarray, minlength: int = 0) -> np.ndarray:
        raise NotImplementedError

    def round_half_up(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def clip_min(self, values: np.ndarray, low: float) -> np.ndarray:
        raise NotImplementedError

    def keyed_normal(
        self, seed: int, sigma: float, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """A keyed Gaussian draw — **numpy-canonical for every backend**.

        ``seed`` comes from :func:`repro.utils.rng.derive_seed`; the draw is
        ``new_rng(seed).normal(0, sigma, shape)`` bit for bit, regardless of
        backend, because the sampled values are part of the store's hash
        contract (see the module docstring).
        """
        raise NotImplementedError


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], ArrayOps]] = {}
_ACTIVE: Optional[ArrayOps] = None


def register_backend(name: str, factory: Callable[[], ArrayOps]) -> None:
    """Register a backend factory under ``name`` (last registration wins)."""
    _FACTORIES[str(name)] = factory


def available_backends() -> List[str]:
    """Registered backend names (availability of deps is checked on select)."""
    return sorted(_FACTORIES)


def set_backend(name: Optional[str]) -> ArrayOps:
    """Select the active backend by name (``None`` resets to the default).

    Raises ``ValueError`` for unknown names and ``ImportError`` when the
    backend's optional dependency is missing — at selection time, with a
    message naming the dependency, never at import time.
    """
    global _ACTIVE
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "numpy")
    name = str(name)
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown array backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    _ACTIVE = factory()
    return _ACTIVE


def active_ops() -> ArrayOps:
    """The active :class:`ArrayOps` (lazily resolved from ``REPRO_BACKEND``)."""
    global _ACTIVE
    if _ACTIVE is None:
        set_backend(None)
    return _ACTIVE


def active_backend_name() -> str:
    """Name of the active backend (resolving lazily like :func:`active_ops`)."""
    return active_ops().name


# Built-ins.  numpy is imported eagerly (it is the package's own hard
# dependency and the default); torch stays behind a lazy factory so this
# module imports cleanly on machines without torch.
from repro.backend.numpy_ops import NumpyOps  # noqa: E402

register_backend("numpy", NumpyOps)


def _torch_factory() -> ArrayOps:
    from repro.backend.torch_ops import TorchOps  # lazy optional import

    return TorchOps()


register_backend("torch", _torch_factory)


__all__ = [
    "ArrayOps",
    "BACKEND_RTOL",
    "NumpyOps",
    "active_backend_name",
    "active_ops",
    "available_backends",
    "register_backend",
    "set_backend",
]
