"""Bit-line value-distribution analysis (paper Section III-A and IV-B).

Algorithm 1 starts by judging the distribution type of each layer's bit-line
outputs, because the best twin-range strategy depends on it:

* **ideal** — the highly skewed, zero-concentrated distribution of Fig. 3a
  (the common case with 1-bit operands and post-ReLU activations): a
  zero-anchored dense range R1 captures the majority of samples losslessly.
* **normal** — a strongly unimodal, low-variance distribution centred away
  from zero: the same strategy works once R1 is shifted by the ``bias``
  offset.
* **other** — weakly unimodal, multi-modal or flat distributions: no "sweet
  spot" exists, so both ranges use the "early stopping" strategy with equal
  bit-widths.

The classifier below uses robust, deterministic statistics (mass
concentration, mode location, histogram mode count) rather than fitted
models, so the same inputs always produce the same decision.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

import numpy as np

from repro.utils.validation import check_in_range


class DistributionType(str, enum.Enum):
    """Distribution classes distinguished by Algorithm 1."""

    IDEAL = "ideal"
    NORMAL = "normal"
    OTHER = "other"


@dataclasses.dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one layer's bit-line value distribution."""

    kind: DistributionType
    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    skewness: float
    zero_fraction: float
    mass_in_low_eighth: float
    mode_position: float
    num_modes: int

    @property
    def value_range(self) -> float:
        return self.maximum - self.minimum


def _skewness(values: np.ndarray) -> float:
    std = values.std()
    if std == 0:
        return 0.0
    return float(np.mean(((values - values.mean()) / std) ** 3))


def _count_modes(values: np.ndarray, num_bins: int = 32, rel_threshold: float = 0.15) -> int:
    """Count local maxima of a smoothed histogram exceeding a fraction of the peak."""
    if values.size < 4 or values.max() == values.min():
        return 1
    counts, _ = np.histogram(values, bins=num_bins)
    # Light smoothing suppresses single-bin noise.
    kernel = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
    kernel /= kernel.sum()
    smoothed = np.convolve(counts.astype(np.float64), kernel, mode="same")
    peak = smoothed.max()
    if peak == 0:
        return 1
    modes = 0
    for i in range(len(smoothed)):
        left = smoothed[i - 1] if i > 0 else -np.inf
        right = smoothed[i + 1] if i < len(smoothed) - 1 else -np.inf
        if smoothed[i] >= left and smoothed[i] > right and smoothed[i] >= rel_threshold * peak:
            modes += 1
    return max(1, modes)


def summarize_distribution(
    values: np.ndarray,
    skew_threshold: float = 1.0,
    low_mass_threshold: float = 0.6,
    concentration_threshold: float = 0.55,
) -> DistributionSummary:
    """Classify a sample of bit-line values and return its summary statistics.

    Parameters
    ----------
    values:
        Non-negative bit-line samples of one layer.
    skew_threshold:
        Minimum skewness for the zero-concentrated "ideal" class.
    low_mass_threshold:
        Minimum fraction of samples in the lowest eighth of the value range
        for the "ideal" class.
    concentration_threshold:
        Minimum fraction of samples within ±1σ of the mode for the "normal"
        class.
    """
    check_in_range(low_mass_threshold, "low_mass_threshold", 0.0, 1.0)
    check_in_range(concentration_threshold, "concentration_threshold", 0.0, 1.0)
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot summarise an empty sample")

    minimum = float(values.min())
    maximum = float(values.max())
    mean = float(values.mean())
    std = float(values.std())
    skewness = _skewness(values)
    zero_fraction = float(np.mean(values <= 0))
    value_range = maximum - minimum
    if value_range > 0:
        mass_low = float(np.mean(values <= minimum + value_range / 8.0))
    else:
        mass_low = 1.0
    num_modes = _count_modes(values)

    # Mode position from the histogram peak.
    if value_range > 0:
        counts, edges = np.histogram(values, bins=32)
        peak_bin = int(np.argmax(counts))
        mode_position = float((edges[peak_bin] + edges[peak_bin + 1]) / 2.0)
    else:
        mode_position = minimum

    # Classification.
    if mass_low >= low_mass_threshold and skewness >= skew_threshold:
        kind = DistributionType.IDEAL
    else:
        concentration = (
            float(np.mean(np.abs(values - mode_position) <= std)) if std > 0 else 1.0
        )
        if num_modes == 1 and concentration >= concentration_threshold:
            kind = DistributionType.NORMAL
        else:
            kind = DistributionType.OTHER

    return DistributionSummary(
        kind=kind,
        count=int(values.size),
        minimum=minimum,
        maximum=maximum,
        mean=mean,
        std=std,
        skewness=skewness,
        zero_fraction=zero_fraction,
        mass_in_low_eighth=mass_low,
        mode_position=mode_position,
        num_modes=num_modes,
    )


def required_resolution(values: np.ndarray, v_grid: float = 1.0) -> int:
    """Algorithm 1 line 7: ``Rideal = ceil(log2(ymax − ymin + 1))``.

    The value range is measured in units of the candidate grid step
    ``v_grid`` so that coarser grids need fewer bits.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute resolution of an empty sample")
    if v_grid <= 0:
        raise ValueError(f"v_grid must be positive, got {v_grid}")
    span_levels = (float(values.max()) - float(values.min())) / v_grid
    return max(1, int(np.ceil(np.log2(span_levels + 1.0))))
