"""The paper's contribution: Twin Range Quantization and the co-design search."""

from repro.core.calibration import (
    CalibrationResult,
    LayerAdcSetting,
    LayerCalibrationResult,
    TwinRangeCalibrator,
)
from repro.core.co_design import (
    CoDesignOptimizer,
    CoDesignResult,
    setting_to_adc_config,
    settings_to_adc_configs,
    uniform_adc_configs,
)
from repro.core.distribution import (
    DistributionSummary,
    DistributionType,
    required_resolution,
    summarize_distribution,
)
from repro.core.objectives import (
    CandidateEvaluation,
    evaluate_trq_candidate,
    evaluate_uniform_candidate,
    select_candidate,
    trq_energy_ops,
    trq_mse,
)
from repro.core.search_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpaceConfig,
    candidate_params,
    uniform_fallback_bits,
    v_grid_candidates,
)
from repro.core.trq import (
    TRQParams,
    classify_regions,
    decode,
    encode,
    mean_ad_operations,
    quantization_mse,
    twin_range_levels,
    twin_range_quantize,
    uniform_reference_quantize,
)

__all__ = [
    "CalibrationResult",
    "CandidateEvaluation",
    "CoDesignOptimizer",
    "CoDesignResult",
    "DEFAULT_SEARCH_SPACE",
    "DistributionSummary",
    "DistributionType",
    "LayerAdcSetting",
    "LayerCalibrationResult",
    "SearchSpaceConfig",
    "TRQParams",
    "TwinRangeCalibrator",
    "candidate_params",
    "classify_regions",
    "decode",
    "encode",
    "evaluate_trq_candidate",
    "evaluate_uniform_candidate",
    "mean_ad_operations",
    "quantization_mse",
    "required_resolution",
    "select_candidate",
    "setting_to_adc_config",
    "settings_to_adc_configs",
    "summarize_distribution",
    "trq_energy_ops",
    "trq_mse",
    "twin_range_levels",
    "twin_range_quantize",
    "uniform_adc_configs",
    "uniform_fallback_bits",
    "uniform_reference_quantize",
    "v_grid_candidates",
]
