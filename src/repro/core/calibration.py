"""Layer-by-layer parameter search (paper Algorithm 1).

Given per-layer samples of the bit-line values (collected by the simulator on
a small calibration set), the calibrator

1. classifies each layer's distribution (Section IV-B),
2. sweeps the grid-step candidates ``Vgrid`` and the legal twin-range
   parameters, minimising the energy objective Eq. 9 per grid and selecting
   the grid with minimum reconstruction MSE (Eq. 10),
3. compares the winning twin-range setting against a plain uniform quantizer
   with the same bit budget (Algorithm 1 line 23), and
4. runs an outer accuracy-constrained loop that lowers the bit-budget cap
   ``Nmax`` until the end-to-end accuracy drop would exceed the threshold
   ``θ``, then keeps the last acceptable configuration.

The module is deliberately independent of the simulator: it consumes plain
arrays and an opaque accuracy callback, which keeps it unit-testable on
synthetic distributions and avoids import cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.distribution import DistributionSummary, summarize_distribution
from repro.core.objectives import (
    CandidateEvaluation,
    evaluate_trq_candidate,
    evaluate_uniform_candidate,
    select_candidate,
)
from repro.core.search_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpaceConfig,
    candidate_params,
    uniform_fallback_bits,
    v_grid_candidates,
)
from repro.core.trq import TRQParams
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_in_range, check_integer

logger = get_logger("core.calibration")


@dataclasses.dataclass(frozen=True)
class LayerAdcSetting:
    """The decision Algorithm 1 makes for one layer.

    Either a twin-range configuration (``use_trq=True`` with ``trq`` set) or a
    plain uniform quantizer of ``uniform_bits`` bits with step
    ``uniform_delta``.
    """

    use_trq: bool
    trq: Optional[TRQParams] = None
    uniform_bits: Optional[int] = None
    uniform_delta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.use_trq and self.trq is None:
            raise ValueError("use_trq=True requires trq parameters")
        if not self.use_trq and (self.uniform_bits is None or self.uniform_delta is None):
            raise ValueError("uniform setting requires uniform_bits and uniform_delta")

    @property
    def sensing_bits(self) -> int:
        """Worst-case payload bits produced per conversion."""
        if self.use_trq:
            assert self.trq is not None
            return max(self.trq.n_r1, self.trq.n_r2)
        assert self.uniform_bits is not None
        return self.uniform_bits


@dataclasses.dataclass
class LayerCalibrationResult:
    """Everything the search learned about one layer."""

    name: str
    setting: LayerAdcSetting
    summary: DistributionSummary
    trq_evaluation: Optional[CandidateEvaluation]
    uniform_evaluation: Optional[CandidateEvaluation]
    selected_evaluation: CandidateEvaluation

    @property
    def predicted_mean_ops(self) -> float:
        return self.selected_evaluation.mean_ops_per_conversion

    @property
    def predicted_mse(self) -> float:
        return self.selected_evaluation.mse


@dataclasses.dataclass
class CalibrationResult:
    """Output of the full Algorithm 1 run."""

    layers: Dict[str, LayerCalibrationResult]
    n_max: int
    baseline_accuracy: Optional[float]
    final_accuracy: Optional[float]
    accuracy_history: List[Tuple[int, float]] = dataclasses.field(default_factory=list)

    @property
    def settings(self) -> Dict[str, LayerAdcSetting]:
        return {name: result.setting for name, result in self.layers.items()}

    @property
    def mean_predicted_ops(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([r.predicted_mean_ops for r in self.layers.values()]))

    def predicted_remaining_fraction(self, baseline_ops: int) -> float:
        """Calibration-set estimate of the Fig. 6c metric."""
        if baseline_ops <= 0:
            raise ValueError("baseline_ops must be positive")
        if not self.layers:
            return 0.0
        return self.mean_predicted_ops / baseline_ops


AccuracyFn = Callable[[Dict[str, LayerAdcSetting]], float]


class TwinRangeCalibrator:
    """Runs Algorithm 1 over a set of layers.

    Parameters
    ----------
    search_space:
        Candidate-generation knobs (``α``, ``β``, ``C``, M range...).
    accuracy_threshold:
        ``θ`` — maximum tolerated end-to-end accuracy drop (absolute).
    min_n_max:
        Lowest bit budget the outer loop will try.
    mse_tolerance:
        Slack used when arbitrating between TRQ and the uniform fallback.
    max_samples_per_layer:
        Calibration samples are subsampled to this size for search speed.
    """

    def __init__(
        self,
        search_space: SearchSpaceConfig = DEFAULT_SEARCH_SPACE,
        accuracy_threshold: float = 0.01,
        min_n_max: int = 2,
        mse_tolerance: float = 0.05,
        max_samples_per_layer: int = 16384,
        seed: SeedLike = 0,
    ) -> None:
        check_in_range(accuracy_threshold, "accuracy_threshold", low=0.0)
        check_in_range(check_integer(min_n_max, "min_n_max"), "min_n_max", low=1)
        check_in_range(check_integer(max_samples_per_layer, "max_samples_per_layer"),
                       "max_samples_per_layer", low=16)
        self.search_space = search_space
        self.accuracy_threshold = float(accuracy_threshold)
        self.min_n_max = int(min_n_max)
        self.mse_tolerance = float(mse_tolerance)
        self.max_samples_per_layer = int(max_samples_per_layer)
        self._rng = new_rng(seed)

    # ------------------------------------------------------------------ #
    # per-layer search
    # ------------------------------------------------------------------ #
    def _subsample(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=np.float64).ravel()
        if samples.size <= self.max_samples_per_layer:
            return samples
        idx = self._rng.choice(samples.size, size=self.max_samples_per_layer, replace=False)
        return samples[idx]

    @staticmethod
    def _energy_ops_sorted(
        sorted_samples: np.ndarray, params: TRQParams
    ) -> Tuple[float, int]:
        """Eq. 9 evaluated with two binary searches on the sorted samples."""
        n = sorted_samples.size
        lo = np.searchsorted(sorted_samples, params.r1_low, side="left")
        hi = np.searchsorted(sorted_samples, params.r1_high, side="left")
        num_r1 = int(hi - lo)
        num_r2 = n - num_r1
        energy = n * params.detection_ops + num_r1 * params.n_r1 + num_r2 * params.n_r2
        return float(energy), num_r1

    def calibrate_layer(
        self, samples: np.ndarray, n_max: int
    ) -> Tuple[DistributionSummary, Optional[CandidateEvaluation], CandidateEvaluation]:
        """Search the best twin-range and uniform settings for one layer.

        Returns ``(summary, best_trq_evaluation, uniform_evaluation)``; the
        TRQ evaluation is ``None`` only for degenerate (empty) samples.
        """
        samples = self._subsample(samples)
        if samples.size == 0:
            raise ValueError("cannot calibrate a layer with no bit-line samples")
        summary = summarize_distribution(samples)
        sorted_samples = np.sort(samples)
        y_max = float(sorted_samples[-1])

        best_overall: Optional[CandidateEvaluation] = None
        for v_grid in v_grid_candidates(y_max, self.search_space):
            # Inner minimisation (Eq. 9): pick the candidate with the fewest
            # A/D operations for this grid step; energy only needs the R1
            # population, so it is evaluated with binary searches.
            best_params: Optional[TRQParams] = None
            best_energy = np.inf
            for params in candidate_params(summary, samples, float(v_grid), n_max,
                                           self.search_space):
                energy, _ = self._energy_ops_sorted(sorted_samples, params)
                if energy < best_energy:
                    best_energy = energy
                    best_params = params
            if best_params is None:
                continue
            # Outer selection (Eq. 10): across grids, keep the minimum-MSE one.
            evaluation = evaluate_trq_candidate(samples, best_params)
            if (
                best_overall is None
                or evaluation.mse < best_overall.mse
                or (
                    np.isclose(evaluation.mse, best_overall.mse)
                    and evaluation.energy_ops < best_overall.energy_ops
                )
            ):
                best_overall = evaluation

        bits, delta = uniform_fallback_bits(samples, v_grid=1.0, n_max=n_max)
        uniform_evaluation = evaluate_uniform_candidate(samples, bits, delta)
        return summary, best_overall, uniform_evaluation

    def _layer_result(
        self, name: str, samples: np.ndarray, n_max: int
    ) -> LayerCalibrationResult:
        summary, trq_eval, uniform_eval = self.calibrate_layer(samples, n_max)
        if trq_eval is None:
            selected = uniform_eval
        else:
            # Arbitrate on relative MSE only: a candidate may win on energy
            # only if its reconstruction error is essentially as good as the
            # other's.  (An absolute slack via ``mse_scale`` is available for
            # callers that want a more aggressive energy-first policy, but the
            # layer-level default stays conservative — the outer loop of
            # Algorithm 1 is the place where accuracy is deliberately traded.)
            selected = select_candidate(trq_eval, uniform_eval, self.mse_tolerance)
        if selected.is_uniform:
            setting = LayerAdcSetting(
                use_trq=False,
                uniform_bits=selected.uniform_bits,
                uniform_delta=_uniform_delta(samples, selected.uniform_bits),
            )
        else:
            setting = LayerAdcSetting(use_trq=True, trq=selected.params)
        return LayerCalibrationResult(
            name=name,
            setting=setting,
            summary=summary,
            trq_evaluation=trq_eval,
            uniform_evaluation=uniform_eval,
            selected_evaluation=selected,
        )

    # ------------------------------------------------------------------ #
    # outer accuracy-constrained loop
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        layer_samples: Dict[str, np.ndarray],
        accuracy_fn: Optional[AccuracyFn] = None,
        baseline_accuracy: Optional[float] = None,
        initial_n_max: Optional[int] = None,
    ) -> CalibrationResult:
        """Run the full search over all layers.

        Parameters
        ----------
        layer_samples:
            Mapping of layer name to bit-line value samples.
        accuracy_fn:
            End-to-end accuracy oracle taking the per-layer settings; when
            omitted the outer loop runs exactly one iteration at the initial
            ``Nmax`` (useful for unit tests and quick sweeps).
        baseline_accuracy:
            Reference accuracy used for the drop check; required when
            ``accuracy_fn`` is given.
        initial_n_max:
            Starting bit budget; defaults to ``RADC − 1`` (Algorithm 1 line 1).
        """
        if not layer_samples:
            raise ValueError("layer_samples is empty")
        if accuracy_fn is not None and baseline_accuracy is None:
            raise ValueError("baseline_accuracy is required when accuracy_fn is given")

        resolution = self.search_space.adc_resolution
        n_max = initial_n_max if initial_n_max is not None else resolution - 1
        check_in_range(check_integer(n_max, "initial_n_max"), "initial_n_max",
                       low=self.min_n_max, high=resolution)

        accepted: Optional[Tuple[int, Dict[str, LayerCalibrationResult], Optional[float]]] = None
        history: List[Tuple[int, float]] = []

        while n_max >= self.min_n_max:
            layers = {
                name: self._layer_result(name, samples, n_max)
                for name, samples in layer_samples.items()
            }
            if accuracy_fn is None:
                accepted = (n_max, layers, None)
                break
            accuracy = accuracy_fn({name: r.setting for name, r in layers.items()})
            history.append((n_max, accuracy))
            logger.debug("Nmax=%d -> accuracy %.4f", n_max, accuracy)
            drop = (baseline_accuracy or 0.0) - accuracy
            if drop > self.accuracy_threshold:
                # Accuracy constraint violated: keep the previous (acceptable)
                # configuration, or this one if even the first try violates it
                # (Algorithm 1 terminates here either way).
                if accepted is None:
                    accepted = (n_max, layers, accuracy)
                break
            accepted = (n_max, layers, accuracy)
            n_max -= 1

        assert accepted is not None
        final_n_max, final_layers, final_accuracy = accepted
        return CalibrationResult(
            layers=final_layers,
            n_max=final_n_max,
            baseline_accuracy=baseline_accuracy,
            final_accuracy=final_accuracy,
            accuracy_history=history,
        )


def _uniform_delta(samples: np.ndarray, bits: Optional[int]) -> float:
    """Step of a range-calibrated uniform quantizer with ``bits`` bits."""
    assert bits is not None
    samples = np.asarray(samples, dtype=np.float64)
    y_max = float(samples.max()) if samples.size else 1.0
    max_code = (1 << bits) - 1
    return y_max / max_code if y_max > 0 else 1.0
