"""Candidate generation for the parameter search of Algorithm 1.

The search space of one layer is the cross product of

* ``C`` grid-step candidates ``Vgrid`` sampled uniformly from
  ``[α · ymax / (2^RADC − 1), β · ymax / (2^RADC − 1)]`` (paper Section IV-A,
  with ``α = 0.1``, ``β = 1.2`` and ``C = 50`` in the evaluation);
* per-``Vgrid`` twin-range parameters whose structure depends on the layer's
  distribution type (Algorithm 1 lines 9-16):

  - *ideal / normal*: ``ΔR1 = Vgrid``, ``M = Rideal − NR2``, and the search
    runs over ``NR1`` (and ``bias`` for normal-like distributions);
  - *other*: ``NR1 = NR2`` and the search runs over ``M`` (and ``bias``),
    with ``ΔR1 = 2^(Rideal − NR2 − M) · Vgrid``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

import numpy as np

from repro.core.distribution import DistributionSummary, DistributionType, required_resolution
from repro.core.trq import TRQParams
from repro.utils.validation import check_in_range, check_integer, check_positive


@dataclasses.dataclass(frozen=True)
class SearchSpaceConfig:
    """Knobs of the per-layer candidate generation (paper Section V-A)."""

    adc_resolution: int = 8
    alpha: float = 0.1
    beta: float = 1.2
    num_v_grid_candidates: int = 50
    m_min: int = 0
    m_max: int = 7
    max_bias_candidates: int = 8

    def __post_init__(self) -> None:
        check_in_range(check_integer(self.adc_resolution, "adc_resolution"),
                       "adc_resolution", low=2, high=16)
        check_positive(self.alpha, "alpha")
        check_positive(self.beta, "beta")
        if self.beta <= self.alpha:
            raise ValueError("beta must exceed alpha")
        check_in_range(check_integer(self.num_v_grid_candidates, "num_v_grid_candidates"),
                       "num_v_grid_candidates", low=1)
        check_in_range(check_integer(self.m_min, "m_min"), "m_min", low=0)
        check_in_range(check_integer(self.m_max, "m_max"), "m_max", low=self.m_min)
        check_in_range(check_integer(self.max_bias_candidates, "max_bias_candidates"),
                       "max_bias_candidates", low=1)


DEFAULT_SEARCH_SPACE = SearchSpaceConfig()


def v_grid_candidates(y_max: float, config: SearchSpaceConfig = DEFAULT_SEARCH_SPACE) -> np.ndarray:
    """The ``C`` grid-step candidates for a layer with maximum value ``y_max``."""
    if y_max <= 0:
        # Degenerate layers (all-zero partial sums) keep a unit grid.
        return np.array([1.0])
    base = y_max / ((1 << config.adc_resolution) - 1)
    low = config.alpha * base
    high = config.beta * base
    if config.num_v_grid_candidates == 1:
        return np.array([high])
    return np.linspace(low, high, config.num_v_grid_candidates)


def _bias_candidates(m: int, config: SearchSpaceConfig) -> List[int]:
    """Evenly spaced subset of ``{0, …, 2^M − 1}`` capped at ``max_bias_candidates``."""
    upper = (1 << m) - 1
    if upper <= 0:
        return [0]
    count = min(config.max_bias_candidates, upper + 1)
    return sorted({int(round(b)) for b in np.linspace(0, upper, count)})


def candidate_params(
    summary: DistributionSummary,
    values: np.ndarray,
    v_grid: float,
    n_max: int,
    config: SearchSpaceConfig = DEFAULT_SEARCH_SPACE,
) -> Iterator[TRQParams]:
    """Yield the twin-range candidates of one layer for one ``Vgrid``.

    Parameters
    ----------
    summary:
        Distribution classification of the layer's bit-line values.
    values:
        The calibration samples themselves (used for ``Rideal``).
    v_grid:
        The candidate grid step.
    n_max:
        Current upper bound on the coarse-range bit-width ``NR2`` (the outer
        accuracy loop of Algorithm 1 decreases it).
    """
    check_in_range(check_integer(n_max, "n_max"), "n_max", low=1)
    r_ideal = required_resolution(values, v_grid=v_grid)
    n_r2 = max(1, min(n_max, r_ideal))

    # The configurable ADC can realise non-uniformity degrees up to
    # ``RADC − NR2`` (paper Section III-D2c); candidates respect that bound so
    # every generated setting is realisable by the hardware register file.
    m_hw_max = max(0, config.adc_resolution - n_r2)

    if summary.kind in (DistributionType.IDEAL, DistributionType.NORMAL):
        # Algorithm 1 lines 9-11 / Eq. 11: the dense grid keeps full precision
        # (ΔR1 = one Vgrid step) and the coarse grid absorbs the rest of the
        # range through M = Rideal − NR2.
        m = min(config.m_max, m_hw_max, max(config.m_min, r_ideal - n_r2))
        biases = [0] if summary.kind is DistributionType.IDEAL else _bias_candidates(m, config)
        for n_r1 in range(1, n_r2 + 1):
            for bias in biases:
                yield TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=v_grid, bias=bias)
    else:
        # Algorithm 1 lines 13-15: equal bit-widths, search over M (and bias);
        # ΔR1 = 2^(Rideal − NR2 − M) grid steps so both ranges stay on the
        # full-precision grid.
        n_r1 = n_r2
        m_upper = min(config.m_max, m_hw_max, max(config.m_min, r_ideal - 1))
        for m in range(config.m_min, m_upper + 1):
            shift = max(0, r_ideal - n_r2 - m)
            delta_r1 = v_grid * (1 << shift)
            for bias in _bias_candidates(min(m, 3), config):
                yield TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=delta_r1, bias=bias)


def uniform_fallback_bits(values: np.ndarray, v_grid: float, n_max: int) -> Tuple[int, float]:
    """Bit-width and step of the uniform quantizer compared against TRQ
    (Algorithm 1 line 23): ``NR2`` bits spanning the observed value range."""
    r_ideal = required_resolution(values, v_grid=v_grid)
    bits = max(1, min(n_max, r_ideal))
    values = np.asarray(values, dtype=np.float64)
    y_max = float(values.max()) if values.size else 1.0
    max_code = (1 << bits) - 1
    delta = y_max / max_code if y_max > 0 else 1.0
    return bits, delta
