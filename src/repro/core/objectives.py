"""Objective functions of the co-design search (paper Eq. 9 and Eq. 10).

Algorithm 1 tunes each layer's ADC configuration with two coupled
objectives:

* **Energy** (Eq. 9) — the number of A/D operations needed to convert the
  calibration samples, including the per-conversion detection overhead
  ``ν``: ``eop · (N · ν + Σ_i N_A/D_ops,i)``.
* **Quantization error** (Eq. 10) — the MSE between the raw bit-line values
  and their TRQ reconstruction, used to pick the grid step ``Vgrid``.

These are pure functions over a sample array so that the search can evaluate
hundreds of candidates cheaply and deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.trq import TRQParams, classify_regions, twin_range_quantize
from repro.core.trq import uniform_reference_quantize


@dataclasses.dataclass(frozen=True)
class CandidateEvaluation:
    """Metrics of one candidate configuration evaluated on calibration samples."""

    params: Optional[TRQParams]
    uniform_bits: Optional[int]
    energy_ops: float
    mse: float
    mean_ops_per_conversion: float
    r1_fraction: float

    @property
    def is_uniform(self) -> bool:
        return self.params is None


def trq_energy_ops(values: np.ndarray, params: TRQParams) -> float:
    """Paper Eq. 9 without the ``eop`` constant: total A/D operations.

    ``N · ν`` detection operations plus ``NR1`` per dense-range sample and
    ``NR2`` per coarse-range sample.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        return 0.0
    in_r1 = classify_regions(values, params)
    num_r1 = int(np.count_nonzero(in_r1))
    num_r2 = n - num_r1
    return float(n * params.detection_ops + num_r1 * params.n_r1 + num_r2 * params.n_r2)


def trq_mse(values: np.ndarray, params: TRQParams) -> float:
    """Paper Eq. 10: MSE of the TRQ reconstruction on ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    quantized, _ = twin_range_quantize(values, params)
    return float(np.mean((values - quantized) ** 2))


def evaluate_trq_candidate(values: np.ndarray, params: TRQParams) -> CandidateEvaluation:
    """Evaluate one twin-range candidate on the calibration samples."""
    values = np.asarray(values, dtype=np.float64)
    n = max(1, values.size)
    in_r1 = classify_regions(values, params)
    num_r1 = int(np.count_nonzero(in_r1))
    energy = trq_energy_ops(values, params)
    return CandidateEvaluation(
        params=params,
        uniform_bits=None,
        energy_ops=energy,
        mse=trq_mse(values, params),
        mean_ops_per_conversion=energy / n,
        r1_fraction=num_r1 / n,
    )


def evaluate_uniform_candidate(
    values: np.ndarray, num_bits: int, delta: float
) -> CandidateEvaluation:
    """Evaluate the plain uniform quantizer Algorithm 1 compares against
    (line 23): ``num_bits`` operations per conversion, no detection phase."""
    values = np.asarray(values, dtype=np.float64)
    n = max(1, values.size)
    reconstructed = uniform_reference_quantize(values, num_bits, delta)
    mse = float(np.mean((values - reconstructed) ** 2)) if values.size else 0.0
    energy = float(values.size * num_bits)
    return CandidateEvaluation(
        params=None,
        uniform_bits=int(num_bits),
        energy_ops=energy,
        mse=mse,
        mean_ops_per_conversion=energy / n,
        r1_fraction=0.0,
    )


def select_candidate(
    trq: CandidateEvaluation,
    uniform: CandidateEvaluation,
    mse_tolerance: float = 0.05,
    mse_scale: float = 0.0,
) -> CandidateEvaluation:
    """Pick between the best TRQ candidate and the uniform fallback.

    The paper keeps whichever approach is "best" per layer (Algorithm 1 line
    23) without formalising the tie-break; the rule implemented here is:

    1. prefer the candidate with lower energy if its MSE is within the
       tolerance band of the other's — relative slack ``(1 + mse_tolerance)``
       plus an absolute slack ``mse_tolerance · mse_scale`` (``mse_scale`` is
       the mean squared magnitude of the calibration samples, so the band is
       meaningful even when the competitor's MSE is exactly zero);
    2. otherwise prefer the candidate with the lower MSE.

    Energy is the optimisation target once end-to-end accuracy is protected
    by Algorithm 1's outer loop, which is why a bounded amount of extra
    quantization error is accepted in exchange for fewer A/D operations.
    """
    if mse_tolerance < 0:
        raise ValueError(f"mse_tolerance must be non-negative, got {mse_tolerance}")
    if mse_scale < 0:
        raise ValueError(f"mse_scale must be non-negative, got {mse_scale}")
    lower_energy, other = (trq, uniform) if trq.energy_ops <= uniform.energy_ops else (uniform, trq)
    slack = (1.0 + mse_tolerance) * max(other.mse, 1e-12) + mse_tolerance * mse_scale
    if lower_energy.mse <= slack:
        return lower_energy
    return trq if trq.mse <= uniform.mse else uniform
