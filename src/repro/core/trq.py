"""Twin Range Quantization (TRQ) — the paper's core algorithmic contribution.

TRQ quantizes the non-negative bit-line partial sums with two uniform ranges
(paper Eq. 7-8):

* ``R1 = [offset, offset + 2^NR1 · ΔR1)`` — a narrow, dense range holding the
  majority of (small) samples, quantized with step ``ΔR1`` using ``NR1`` bits.
* ``R2 = [0, (2^NR2 − 1) · ΔR2]`` — a wide, coarse range covering the sparse
  large values, quantized with step ``ΔR2 = 2^M · ΔR1`` using ``NR2`` bits.

The ``offset = bias · 2^NR1 · ΔR1`` term (paper Section IV-B) shifts R1 away
from zero for normal-like (rather than zero-skewed) distributions; ``bias``
is an unsigned integer whose bits are conceptually concatenated to the left
of the R1 code during decoding.

Everything in this module is pure NumPy math on "level" units (the analog
value divided by the full-precision grid step ``Vgrid``); the hardware
realisation — the modified SAR search that produces exactly these values and
the corresponding A/D-operation counts — lives in :mod:`repro.adc.trq`.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.utils.numeric import round_half_up
from repro.utils.validation import check_in_range, check_integer, check_positive


@dataclasses.dataclass(frozen=True)
class TRQParams:
    """Parameters of one Twin-Range quantizer (one per layer after calibration).

    Attributes
    ----------
    n_r1, n_r2:
        Code widths of the two ranges (paper ``NR1``, ``NR2``).
    m:
        Non-uniformity degree: ``ΔR2 = 2^M · ΔR1`` (paper Eq. 8).
    delta_r1:
        Step of the dense range, in the same units as the values being
        quantized (the calibrated ``Vgrid`` of the layer).
    bias:
        Offset index of R1 (0 for the ideal skewed case, paper Eq. 11).
    """

    n_r1: int
    n_r2: int
    m: int
    delta_r1: float = 1.0
    bias: int = 0

    def __post_init__(self) -> None:
        check_in_range(check_integer(self.n_r1, "n_r1"), "n_r1", low=1, high=16)
        check_in_range(check_integer(self.n_r2, "n_r2"), "n_r2", low=1, high=16)
        check_in_range(check_integer(self.m, "m"), "m", low=0, high=16)
        check_positive(self.delta_r1, "delta_r1")
        check_in_range(check_integer(self.bias, "bias"), "bias", low=0)

    # ------------------------------------------------------------------ #
    @property
    def delta_r2(self) -> float:
        """Step of the coarse range, ``ΔR2 = 2^M · ΔR1`` (paper Eq. 8)."""
        return self.delta_r1 * (1 << self.m)

    @property
    def r1_width(self) -> float:
        """Width of the dense range, ``2^NR1 · ΔR1``."""
        return (1 << self.n_r1) * self.delta_r1

    @property
    def r1_low(self) -> float:
        """Lower edge of R1 (``offset``)."""
        return self.bias * self.r1_width

    @property
    def r1_high(self) -> float:
        """Upper edge (exclusive) of R1 — the paper's threshold ``θ``."""
        return self.r1_low + self.r1_width

    @property
    def r2_max(self) -> float:
        """Largest representable value of the coarse range."""
        return ((1 << self.n_r2) - 1) * self.delta_r2

    @property
    def detection_ops(self) -> int:
        """Extra comparator operations of the range-detection phase (paper
        Eq. 9's ``ν``): one comparison when R1 starts at zero, two when a
        biased window needs both edges checked."""
        return 1 if self.bias == 0 else 2

    def ops_for_region(self, in_r1: np.ndarray) -> np.ndarray:
        """Per-sample A/D operations *excluding* detection (``NR1``/``NR2``)."""
        return np.where(in_r1, self.n_r1, self.n_r2)


def classify_regions(values: np.ndarray, params: TRQParams) -> np.ndarray:
    """Boolean mask: True where a value is resolved by the dense range R1.

    Mirrors the SAR detection phase of :class:`repro.adc.sar.TwinRangeSarAdc`
    exactly: with ``bias == 0`` the hardware spends a single comparison
    against the upper edge ``θ``, so *everything* below it — including
    (physically impossible) negative inputs — is handled by R1.  Only a
    biased window checks the lower edge as well.  Bit-line values are
    non-negative, so the two rules agree on all real data; stating the
    hardware rule keeps the vectorised and cycle-accurate models equivalent
    on the full input domain (see the ADC fuzz tests).
    """
    values = np.asarray(values, dtype=np.float64)
    below_upper = values < params.r1_high
    if params.bias == 0:
        return below_upper
    return below_upper & (values >= params.r1_low)


def twin_range_quantize(
    values: np.ndarray, params: TRQParams
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the TRQ transfer function ``Tk`` (paper Eq. 7).

    Parameters
    ----------
    values:
        Non-negative analog values (bit-line partial sums) in level units.
    params:
        The calibrated twin-range parameters.

    Returns
    -------
    quantized:
        Values reconstructed after quantization/decoding (same shape).
    in_r1:
        Boolean mask of which samples were handled by the dense range.
    """
    values = np.asarray(values, dtype=np.float64)
    in_r1 = classify_regions(values, params)

    max_code_r1 = (1 << params.n_r1) - 1
    codes_r1 = np.clip(round_half_up((values - params.r1_low) / params.delta_r1), 0, max_code_r1)
    recon_r1 = params.r1_low + codes_r1 * params.delta_r1

    max_code_r2 = (1 << params.n_r2) - 1
    codes_r2 = np.clip(round_half_up(values / params.delta_r2), 0, max_code_r2)
    recon_r2 = codes_r2 * params.delta_r2

    return np.where(in_r1, recon_r1, recon_r2), in_r1


def twin_range_levels(
    values: np.ndarray, params: TRQParams
) -> Tuple[np.ndarray, np.ndarray]:
    """Integer output levels of the TRQ transfer function.

    The decoded value of every TRQ code is an exact integer multiple of the
    dense step: ``Tk(v) = ΔR1 · level`` with ``level = bias·2^NR1 + code`` in
    R1 and ``level = code · 2^M`` in R2 (paper Eq. 7-8).  Returning the
    integer level instead of the float reconstruction lets the simulator
    shift-and-add merge *exactly* (levels and merge factors are small
    integers) and apply ``ΔR1`` once per output — the foundation of the fast
    engine's bit-reproducibility (see :mod:`repro.crossbar.mapping`).

    Returns ``(levels, in_r1)``; ``levels`` is float64 but holds exact
    integers.
    """
    values = np.asarray(values, dtype=np.float64)
    in_r1 = classify_regions(values, params)

    max_code_r1 = (1 << params.n_r1) - 1
    codes_r1 = np.clip(round_half_up((values - params.r1_low) / params.delta_r1), 0, max_code_r1)
    max_code_r2 = (1 << params.n_r2) - 1
    codes_r2 = np.clip(round_half_up(values / params.delta_r2), 0, max_code_r2)

    offset = float(params.bias << params.n_r1)
    levels = np.where(in_r1, offset + codes_r1, codes_r2 * float(1 << params.m))
    return levels, in_r1


def encode(values: np.ndarray, params: TRQParams) -> np.ndarray:
    """Produce the compact TRQ output codes (paper Fig. 4b).

    The most significant bit selects the range (0 → R1, 1 → R2); the
    remaining bits are the unsigned uniform code within that range.  The
    returned integers therefore fit in ``1 + max(NR1, NR2)`` bits.
    """
    values = np.asarray(values, dtype=np.float64)
    in_r1 = classify_regions(values, params)
    max_code_r1 = (1 << params.n_r1) - 1
    max_code_r2 = (1 << params.n_r2) - 1
    codes_r1 = np.clip(
        round_half_up((values - params.r1_low) / params.delta_r1), 0, max_code_r1
    ).astype(np.int64)
    codes_r2 = np.clip(round_half_up(values / params.delta_r2), 0, max_code_r2).astype(np.int64)
    payload_bits = max(params.n_r1, params.n_r2)
    msb = (~in_r1).astype(np.int64) << payload_bits
    return msb | np.where(in_r1, codes_r1, codes_r2)


def decode(codes: np.ndarray, params: TRQParams) -> np.ndarray:
    """Invert :func:`encode` — the job of the modified shift-and-add module.

    Codes whose MSB is set are shifted left by ``M`` (i.e. multiplied by
    ``2^M``) before scaling by ``ΔR1``; codes from R1 get the ``bias`` field
    concatenated on their left (paper Section III-C / IV-B).
    """
    codes = np.asarray(codes, dtype=np.int64)
    payload_bits = max(params.n_r1, params.n_r2)
    payload_mask = (1 << payload_bits) - 1
    is_r2 = (codes >> payload_bits) & 1
    payload = codes & payload_mask

    value_r1 = params.r1_low + payload * params.delta_r1
    value_r2 = payload.astype(np.float64) * params.delta_r2
    return np.where(is_r2.astype(bool), value_r2, value_r1)


def uniform_reference_quantize(
    values: np.ndarray, num_bits: int, delta: float
) -> np.ndarray:
    """The uniform quantizer TRQ is compared against (paper Eq. 1 on BL values)."""
    check_in_range(check_integer(num_bits, "num_bits"), "num_bits", low=1, high=16)
    check_positive(delta, "delta")
    values = np.asarray(values, dtype=np.float64)
    max_code = (1 << num_bits) - 1
    return np.clip(round_half_up(values / delta), 0, max_code) * delta


def quantization_mse(values: np.ndarray, params: TRQParams) -> float:
    """Mean-squared reconstruction error of TRQ on ``values`` (paper Eq. 10)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    quantized, _ = twin_range_quantize(values, params)
    return float(np.mean((values - quantized) ** 2))


def mean_ad_operations(values: np.ndarray, params: TRQParams) -> float:
    """Average A/D operations per conversion, including the detection phase
    (the per-sample part of paper Eq. 9)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return float(params.detection_ops)
    in_r1 = classify_regions(values, params)
    return float(params.detection_ops + params.ops_for_region(in_r1).mean())
