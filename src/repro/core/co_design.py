"""Algorithm-hardware co-design orchestration (paper Section IV).

This module glues the pieces together into the pipeline a user actually runs:

1. post-training quantize a trained model on a few calibration images,
2. collect bit-line value distributions with the PIM simulator,
3. run the Algorithm 1 parameter search under an accuracy constraint,
4. translate the per-layer decisions into ADC configuration registers,
5. evaluate the final configuration (accuracy, remaining A/D operations).

The heavy dependencies (:mod:`repro.adc`, :mod:`repro.sim`,
:mod:`repro.quantization`) are imported lazily inside the functions because
those packages themselves import :mod:`repro.core` for the TRQ math; keeping
the top level of this module dependency-free avoids circular imports no
matter which subpackage a user imports first.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.calibration import (
    CalibrationResult,
    LayerAdcSetting,
    TwinRangeCalibrator,
)
from repro.core.search_space import DEFAULT_SEARCH_SPACE, SearchSpaceConfig
from repro.utils.logging import get_logger

logger = get_logger("core.co_design")


# --------------------------------------------------------------------- #
# setting -> hardware configuration register
# --------------------------------------------------------------------- #
def setting_to_adc_config(setting: LayerAdcSetting, resolution: int = 8):
    """Translate one layer's calibration decision into an :class:`AdcConfig`."""
    from repro.adc.config import AdcConfig, AdcMode  # local import, see module docstring

    if setting.use_trq:
        assert setting.trq is not None
        return AdcConfig(
            resolution=resolution,
            mode=AdcMode.TWIN_RANGE,
            v_grid=setting.trq.delta_r1,
            trq=setting.trq,
        )
    assert setting.uniform_bits is not None and setting.uniform_delta is not None
    # A k-bit uniform sensing on an RADC-bit converter has LSB
    # ``v_grid · 2^(RADC − k)``; invert that to recover the register value.
    v_grid = setting.uniform_delta / (1 << (resolution - setting.uniform_bits))
    return AdcConfig(
        resolution=resolution,
        mode=AdcMode.UNIFORM,
        v_grid=v_grid,
        uniform_bits=setting.uniform_bits,
    )


def settings_to_adc_configs(
    settings: Dict[str, LayerAdcSetting], resolution: int = 8
) -> Dict[str, object]:
    """Vectorised version of :func:`setting_to_adc_config` over all layers."""
    return {name: setting_to_adc_config(s, resolution) for name, s in settings.items()}


def uniform_adc_configs(
    layer_samples: Dict[str, np.ndarray], bits: int, resolution: int = 8
) -> Dict[str, object]:
    """Range-calibrated uniform ADC configs (the Fig. 6a baseline).

    Each layer gets a ``bits``-bit uniform quantizer whose full scale matches
    the maximum bit-line value observed on the calibration set.
    """
    from repro.adc.config import uniform_config  # local import, see module docstring

    configs = {}
    for name, samples in layer_samples.items():
        samples = np.asarray(samples, dtype=np.float64)
        y_max = float(samples.max()) if samples.size else 1.0
        delta = y_max / ((1 << bits) - 1) if y_max > 0 else 1.0
        v_grid = delta / (1 << (resolution - bits))
        configs[name] = uniform_config(resolution=resolution, bits=bits, v_grid=v_grid)
    return configs


# --------------------------------------------------------------------- #
# the full pipeline
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class CoDesignResult:
    """Outcome of :meth:`CoDesignOptimizer.run`.

    ``evaluation`` is the full :class:`~repro.sim.stats.SimulationResult` of
    the final configuration (per-layer A/D operation counters included), so
    downstream consumers — the Fig. 6c per-layer table, the Fig. 7 power
    model — don't have to re-run the evaluation the optimizer already did.
    """

    calibration: CalibrationResult
    adc_configs: Dict[str, object]
    baseline_accuracy: float
    final_accuracy: float
    remaining_ops_fraction: float
    ops_reduction_factor: float
    evaluation_summary: Dict[str, float]
    evaluation: Optional[object] = None  # SimulationResult (lazy import type)

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.final_accuracy


class CoDesignOptimizer:
    """End-to-end co-design pipeline on top of a trained float model.

    Parameters
    ----------
    model:
        Trained float model (any :class:`repro.nn.Module` with Conv2d/Linear
        layers and non-negative MVM inputs).
    calibration_images:
        Small image set used for PTQ scaling, distribution collection and the
        search's accuracy oracle (the paper uses 32 training images).
    search_space, accuracy_threshold, ...:
        Forwarded to :class:`TwinRangeCalibrator`.
    chunk_size:
        MVMs per inner chunk of the simulator backing the accuracy oracle.
        ``None`` (default) selects the fast engine's adaptive per-layer
        throughput chunking
        (:func:`repro.sim.pim_layer.throughput_chunk_size`), which is what
        makes the outer accuracy-constrained loop of Algorithm 1 — one full
        evaluation per candidate ``Nmax`` — cheap enough to leave enabled.
    """

    def __init__(
        self,
        model,
        calibration_images: np.ndarray,
        calibration_labels: Optional[np.ndarray] = None,
        search_space: SearchSpaceConfig = DEFAULT_SEARCH_SPACE,
        accuracy_threshold: float = 0.01,
        min_n_max: int = 2,
        max_samples_per_layer: int = 16384,
        chunk_size: Optional[int] = None,
        distribution_capacity: int = 50_000,
        seed: int = 0,
    ) -> None:
        from repro.quantization.ptq import quantize_model  # local import
        from repro.sim.simulator import PimSimulator  # local import

        self.model = model
        self.calibration_images = np.asarray(calibration_images, dtype=np.float64)
        self.calibration_labels = (
            None if calibration_labels is None else np.asarray(calibration_labels)
        )
        self.search_space = search_space
        self.calibrator = TwinRangeCalibrator(
            search_space=search_space,
            accuracy_threshold=accuracy_threshold,
            min_n_max=min_n_max,
            max_samples_per_layer=max_samples_per_layer,
            seed=seed,
        )
        self.quantized = quantize_model(model, self.calibration_images)
        self.simulator = PimSimulator(self.quantized, chunk_size=chunk_size)
        self.distribution_capacity = int(distribution_capacity)
        self._seed = int(seed)

    # ------------------------------------------------------------------ #
    def collect_distributions(self, batch_size: int = 8) -> Dict[str, np.ndarray]:
        """Bit-line value samples per layer on the calibration images."""
        return self.simulator.collect_bitline_distributions(
            self.calibration_images,
            batch_size=batch_size,
            capacity_per_layer=self.distribution_capacity,
            seed=self._seed,
        )

    def run(
        self,
        eval_images: Optional[np.ndarray] = None,
        eval_labels: Optional[np.ndarray] = None,
        batch_size: int = 16,
        use_accuracy_loop: bool = True,
        initial_n_max: Optional[int] = None,
    ) -> CoDesignResult:
        """Execute the full co-design flow.

        Parameters
        ----------
        eval_images, eval_labels:
            Images used for the accuracy oracle and the final report; default
            to the calibration images/labels (the paper checks end-to-end
            accuracy on held-out data — pass the test split here for that).
        use_accuracy_loop:
            When False the outer Nmax loop is skipped (single iteration),
            which is much faster and useful for sweeps that fix Nmax via
            ``initial_n_max``.
        """
        if eval_images is None:
            eval_images = self.calibration_images
            eval_labels = self.calibration_labels
        if eval_labels is None:
            raise ValueError("labels are required to evaluate accuracy")
        eval_images = np.asarray(eval_images, dtype=np.float64)
        eval_labels = np.asarray(eval_labels)

        resolution = self.search_space.adc_resolution
        baseline = self.simulator.evaluate(
            eval_images, eval_labels, adc_configs=None, batch_size=batch_size
        )
        logger.debug("baseline (ideal ADC) accuracy: %.4f", baseline.accuracy)

        layer_samples = self.collect_distributions(batch_size=min(batch_size, 8))

        accuracy_fn = None
        if use_accuracy_loop:
            evaluator = self.simulator.accuracy_evaluator(
                eval_images, eval_labels, batch_size=batch_size
            )

            def accuracy_fn(settings: Dict[str, LayerAdcSetting]) -> float:
                return evaluator(settings_to_adc_configs(settings, resolution))

        calibration = self.calibrator.calibrate(
            layer_samples,
            accuracy_fn=accuracy_fn,
            baseline_accuracy=baseline.accuracy if use_accuracy_loop else None,
            initial_n_max=initial_n_max,
        )
        adc_configs = settings_to_adc_configs(calibration.settings, resolution)

        final = self.simulator.evaluate(
            eval_images, eval_labels, adc_configs=adc_configs, batch_size=batch_size
        )
        return CoDesignResult(
            calibration=calibration,
            adc_configs=adc_configs,
            baseline_accuracy=baseline.accuracy,
            final_accuracy=final.accuracy,
            remaining_ops_fraction=final.remaining_ops_fraction,
            ops_reduction_factor=final.ops_reduction_factor,
            evaluation_summary=final.summary(),
            evaluation=final,
        )
