"""The telemetry event schema.

Every telemetry record is one JSON object on one line of a per-process
stream file (``events-<stream>.jsonl``).  The writer
(:class:`repro.telemetry.tracer.JsonlTracer`) stamps the envelope; emitters
add event-specific fields.  The schema is documented here (and in
``docs/observability.md``) so the analysis layer and external consumers
share one contract.

Envelope fields (present on every record):

``event``
    Event name, one of the constants below.
``seq``
    Per-stream monotonically increasing sequence number (1-based) —
    the deterministic tie-break when two records share a timestamp.
``stream``
    The stream identity (one per writing process, unique per run).
``pid``
    Writing process id.
``run_id``
    The telemetry run this record belongs to.
``t_wall``
    Wall-clock UNIX timestamp (``time.time()``), for humans.
``t_mono``
    ``time.monotonic()`` at emission.  On Linux this is
    ``CLOCK_MONOTONIC`` — boot-relative and therefore comparable across
    the processes of one run on one host; the analysis layer orders and
    subtracts ``t_mono``, never ``t_wall``.

Job events additionally carry ``key`` (the content address), ``kind``,
and — when known — ``index`` (sweep expansion index), ``wave``, ``shard``
and ``deps`` (the scheduled dependency keys, making each stream
self-contained for critical-path analysis).

Timing semantics: ``queue_wait_s`` on :data:`JOB_START` is the time
between the job's wave being handed to the executor and the job actually
starting (for a serial executor this includes the run time of the jobs
before it in the wave — that *is* its queue wait); ``duration_s`` on
:data:`JOB_FINISH`/:data:`JOB_FAILED` is pure execution time.

Telemetry is strictly out-of-band: no event, counter or timing ever
feeds back into job addressing or stored artifacts, so traced and
untraced runs produce byte-identical aggregates.
"""

from __future__ import annotations

#: Stream-format marker, recorded in each run's ``run.json`` manifest.
#: Bump on incompatible record-layout changes.
TELEMETRY_FORMAT = "repro-telemetry/v1"

#: Subdirectory of a result store holding telemetry runs.
TELEMETRY_DIRNAME = "telemetry"

# Sweep lifecycle (emitted once per traced run_sweep, parent process).
SWEEP_START = "sweep_start"   # sweep, executor, jobs, shards, total, cached, pending, scheduled, salt
SWEEP_FINISH = "sweep_finish"  # elapsed_s, computed, failed, cached

#: Terminal abort marker, emitted by the *executor's* ``__exit__`` when the
#: sweep unwinds on an exception (Ctrl-C, first-failure abort,
#: ``MaxFailuresExceeded``): ``reason`` (exception type name), ``error``.
#: Consumers treat still-open job intervals as *aborted*, not
#: forever-running; the emitting tracer is flushed immediately after.
SWEEP_ABORT = "sweep_abort"

# Prewarm span (parent process, around prewarm_workloads).
PREWARM_START = "prewarm_start"
PREWARM_FINISH = "prewarm_finish"  # duration_s

# Wave lifecycle (the process driving execute_graph).
WAVE_START = "wave_start"     # wave, jobs
WAVE_FINISH = "wave_finish"   # wave, duration_s

# Per-job lifecycle (emitted by whichever process executes the job).
# ``job_finish`` additionally carries the executing process's resource
# deltas when the platform supports them (see
# :mod:`repro.telemetry.resources`): ``cpu_s`` (user+system CPU seconds
# consumed by the job) and ``max_rss_kb`` (the process's peak RSS at job
# completion, in KiB — a per-process high-water mark, monotone across a
# worker's successive jobs).
JOB_START = "job_start"       # key, kind, index, wave, shard, deps, queue_wait_s
JOB_FINISH = "job_finish"     # key, kind, ..., duration_s, outcome="computed", cpu_s, max_rss_kb
JOB_FAILED = "job_failed"     # key, kind, ..., duration_s, error
JOB_CACHED = "job_cached"     # key, kind, index — store hit, nothing executed
JOB_UPSTREAM_FAILED = "job_upstream_failed"  # key, cause_key, wave — not run

#: Remote-executor shard lifecycle (emitted by the coordinating process).
#: ``shard_dispatch`` marks an attempt leaving over the transport:
#: ``wave``, ``shard``, ``attempt`` (0-based), ``transport``, ``jobs``.
#: ``shard_redispatch`` marks a *backup* attempt for a shard still
#: running — either the two-gate straggler trigger fired (``reason`` =
#: ``"straggler"``), a finished attempt produced no result
#: (``"no_result"``), or the caller forced one (``"forced"``).
SHARD_DISPATCH = "shard_dispatch"
SHARD_REDISPATCH = "shard_redispatch"  # ..., reason

#: A named monotonic counter sample: ``name``, ``value``.
COUNTER = "counter"

#: Periodic per-process resource sample (one per executor process —
#: serial parent, pool worker, shard subprocess): ``cpu_user_s``,
#: ``cpu_system_s``, ``max_rss_kb`` (``resource.getrusage``, cumulative
#: for the process) and ``rss_kb`` (current ``/proc/self/status`` VmRSS,
#: Linux only).  Absent fields mean the platform cannot report them; on
#: platforms with no stdlib ``resource`` module no sample is emitted at
#: all.
RESOURCE_SAMPLE = "resource_sample"

#: The events that open/close one job execution (used by the analysis
#: layer to pair start/end records).
JOB_OPEN_EVENTS = (JOB_START,)
JOB_CLOSE_EVENTS = (JOB_FINISH, JOB_FAILED)

ALL_EVENTS = (
    SWEEP_START, SWEEP_FINISH, SWEEP_ABORT,
    PREWARM_START, PREWARM_FINISH,
    WAVE_START, WAVE_FINISH,
    JOB_START, JOB_FINISH, JOB_FAILED, JOB_CACHED, JOB_UPSTREAM_FAILED,
    SHARD_DISPATCH, SHARD_REDISPATCH,
    COUNTER, RESOURCE_SAMPLE,
)

#: Events that terminate a run for live consumers (``trace watch``, the
#: in-process ``run --progress`` renderer): once one is observed, no
#: further job events are coming from this sweep.
TERMINAL_EVENTS = (SWEEP_FINISH, SWEEP_ABORT)

#: Counter names the runner emits (the analysis layer recognises these;
#: arbitrary additional counters are allowed and surfaced verbatim).
COUNTER_CACHE_HITS = "store.cache_hits"
COUNTER_CACHE_MISSES = "store.cache_misses"
COUNTER_JOBS_TOTAL = "sweep.jobs_total"
COUNTER_JOBS_COMPUTED = "sweep.jobs_computed"
COUNTER_JOBS_FAILED = "sweep.jobs_failed"
COUNTER_PREWARM_S = "sweep.prewarm_s"
