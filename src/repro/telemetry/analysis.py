"""Timeline reconstruction and critical-path analysis over a trace run.

Everything here is a pure function of one telemetry run directory (the
merged event streams plus the optional ``run.json``/``graph.json``
manifests).  The central object is :class:`TraceRun`:

* :meth:`TraceRun.executions` pairs ``job_start`` with
  ``job_finish``/``job_failed`` records per stream into
  :class:`JobExecution` intervals — the reconstructed timeline.
* :func:`critical_path` walks the scheduler's dependency graph (from the
  ``deps`` carried on the job events, unioned with ``graph.json``) and
  extracts the chain of dependent jobs with the largest summed duration —
  the chain that bounded the sweep's wall-clock.  Its summed duration is
  a *lower bound* on elapsed time: no schedule, however parallel, can
  beat it without changing the jobs.
* :func:`wave_stats` computes per-wave spans and utilization
  (``busy time / (streams × span)``) from the job intervals themselves, so
  it works identically for serial, process-pool, sharded and bare
  ``shard run`` traces.
* :func:`find_stragglers` flags workers/shards whose busy time within a
  wave is far above their wave's median — the "which shard straggled"
  question.  Thresholds are relative *and* absolute (``factor`` ×  median
  and at least ``min_gap_s`` slower), so balanced seconds-fast smoke runs
  never flag noise.
* :func:`summarize` bundles the above plus cache-efficiency counters and
  per-kind duration histograms into one plain dict (what ``trace
  summary`` prints and tests assert on).
"""

from __future__ import annotations

import dataclasses
import statistics
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry import events as ev
from repro.telemetry.tracer import load_events, load_graph, load_run_manifest


@dataclasses.dataclass
class JobExecution:
    """One reconstructed job execution interval."""

    key: str
    kind: str
    stream: str
    start_mono: float
    end_mono: Optional[float] = None
    duration_s: Optional[float] = None
    # "computed" | "failed" | "running" (no close yet) | "aborted" (no
    # close and the run recorded a terminal sweep_abort after the start).
    outcome: str = "running"
    index: Optional[int] = None
    wave: Optional[int] = None
    shard: Optional[int] = None
    queue_wait_s: Optional[float] = None
    error: Optional[str] = None
    deps: Tuple[str, ...] = ()
    cpu_s: Optional[float] = None
    max_rss_kb: Optional[float] = None

    @property
    def closed(self) -> bool:
        return self.end_mono is not None


@dataclasses.dataclass
class WaveStats:
    """Utilization of one topological wave."""

    wave: Optional[int]
    jobs: int
    streams: int
    busy_s: float
    span_s: float
    utilization: float


@dataclasses.dataclass
class Straggler:
    """A worker stream whose busy time dominated its wave."""

    wave: Optional[int]
    stream: str
    shard: Optional[int]
    busy_s: float
    median_busy_s: float
    jobs: int


class TraceRun:
    """One loaded telemetry run: events + manifests, lazily analysed."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.events: List[Dict[str, object]] = load_events(self.directory)
        self.manifest: Dict[str, object] = load_run_manifest(self.directory)
        self.graph: Dict[str, Dict[str, object]] = load_graph(self.directory)
        self._executions: Optional[List[JobExecution]] = None

    @property
    def run_id(self) -> str:
        if self.manifest.get("run_id"):
            return str(self.manifest["run_id"])
        for event in self.events:
            if event.get("run_id"):
                return str(event["run_id"])
        return self.directory.name

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------ #
    def select(self, *names: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e.get("event") in names]

    def executions(self) -> List[JobExecution]:
        """Job intervals, paired per (key, stream) in stream order.

        A job executed twice (two racing shards both computing a shared
        sibling) yields two entries — :func:`summarize` surfaces the
        duplicate count rather than silently collapsing it.
        """
        if self._executions is not None:
            return self._executions
        open_by_stream_key: Dict[Tuple[str, str], JobExecution] = {}
        executions: List[JobExecution] = []
        for event in self.events:
            name = event.get("event")
            if name not in (*ev.JOB_OPEN_EVENTS, *ev.JOB_CLOSE_EVENTS):
                continue
            key = str(event.get("key", ""))
            stream = str(event.get("stream", ""))
            handle = (stream, key)
            if name in ev.JOB_OPEN_EVENTS:
                execution = JobExecution(
                    key=key,
                    kind=str(event.get("kind", "?")),
                    stream=stream,
                    start_mono=float(event.get("t_mono", 0.0)),
                    index=event.get("index"),
                    wave=event.get("wave"),
                    shard=event.get("shard"),
                    queue_wait_s=event.get("queue_wait_s"),
                    deps=tuple(event.get("deps", ()) or ()),
                )
                open_by_stream_key[handle] = execution
                executions.append(execution)
                continue
            execution = open_by_stream_key.pop(handle, None)
            if execution is None:
                continue  # close without an open (torn stream head)
            execution.end_mono = float(event.get("t_mono", 0.0))
            execution.duration_s = float(
                event.get("duration_s", execution.end_mono - execution.start_mono)
            )
            execution.outcome = (
                "computed" if name == ev.JOB_FINISH else "failed"
            )
            execution.error = event.get("error")
            if event.get("cpu_s") is not None:
                execution.cpu_s = float(event["cpu_s"])
            if event.get("max_rss_kb") is not None:
                execution.max_rss_kb = float(event["max_rss_kb"])
        # A terminal sweep_abort (executor __exit__ on Ctrl-C / exhausted
        # failure budget) means no close is ever coming for the intervals
        # still open at that instant: mark them aborted, not forever-running.
        aborts = self.select(ev.SWEEP_ABORT)
        if aborts:
            abort_mono = max(float(e.get("t_mono", 0.0)) for e in aborts)
            for execution in open_by_stream_key.values():
                if execution.start_mono <= abort_mono:
                    execution.outcome = "aborted"
        self._executions = executions
        return executions

    def executions_by_key(self) -> Dict[str, JobExecution]:
        """First (usually only) execution per content address."""
        by_key: Dict[str, JobExecution] = {}
        for execution in self.executions():
            by_key.setdefault(execution.key, execution)
        return by_key

    def duplicate_keys(self) -> List[str]:
        """Keys executed more than once (shards racing on a shared sibling)."""
        seen: Dict[str, int] = {}
        for execution in self.executions():
            seen[execution.key] = seen.get(execution.key, 0) + 1
        return sorted(key for key, count in seen.items() if count > 1)

    def cached_keys(self) -> List[str]:
        return [str(e.get("key", "")) for e in self.select(ev.JOB_CACHED)]

    def upstream_failed_keys(self) -> List[str]:
        return [
            str(e.get("key", "")) for e in self.select(ev.JOB_UPSTREAM_FAILED)
        ]

    def counters(self) -> Dict[str, float]:
        """Latest sample per counter name."""
        values: Dict[str, float] = {}
        for event in self.select(ev.COUNTER):
            values[str(event.get("name"))] = float(event.get("value", 0.0))
        return values

    def elapsed_s(self) -> Optional[float]:
        """Sweep elapsed time: the sweep span when recorded, else the span
        of the observed job executions."""
        starts = self.select(ev.SWEEP_START)
        finishes = self.select(ev.SWEEP_FINISH)
        if starts and finishes:
            return float(finishes[-1]["t_mono"]) - float(starts[0]["t_mono"])
        closed = [e for e in self.executions() if e.closed]
        if not closed:
            return None
        return max(e.end_mono for e in closed) - min(e.start_mono for e in closed)

    def dependency_map(self) -> Dict[str, Tuple[str, ...]]:
        """Scheduled-dependency adjacency: job-event ``deps`` ∪ ``graph.json``."""
        adjacency: Dict[str, Tuple[str, ...]] = {}
        for key, node in self.graph.items():
            adjacency[key] = tuple(node.get("deps", ()) or ())
        for execution in self.executions():
            if execution.deps or execution.key not in adjacency:
                merged = dict.fromkeys(adjacency.get(execution.key, ()))
                merged.update(dict.fromkeys(execution.deps))
                adjacency[execution.key] = tuple(merged)
        return adjacency


def load_run(directory: Union[str, Path]) -> TraceRun:
    return TraceRun(directory)


# --------------------------------------------------------------------- #
# Critical path
# --------------------------------------------------------------------- #
def critical_path(run: TraceRun) -> List[JobExecution]:
    """The executed dependency chain with the largest summed duration.

    Classic longest path over the DAG restricted to *executed* jobs
    (cached dependencies cost nothing — they bounded no wall-clock).
    Returned in execution order (upstream first); empty when nothing
    executed.  The chain is dependency-consistent: each entry after the
    first names its predecessor in ``deps``/``graph.json``.
    """
    executions = run.executions_by_key()
    adjacency = run.dependency_map()
    cost: Dict[str, float] = {}
    best_parent: Dict[str, Optional[str]] = {}

    def resolve(key: str, trail: frozenset) -> float:
        if key in cost:
            return cost[key]
        execution = executions.get(key)
        duration = execution.duration_s or 0.0 if execution else 0.0
        parent: Optional[str] = None
        upstream = 0.0
        for dep in adjacency.get(key, ()):
            if dep == key or dep in trail or dep not in executions:
                continue  # cached/absent deps bounded nothing
            dep_cost = resolve(dep, trail | {key})
            if dep_cost > upstream:
                upstream, parent = dep_cost, dep
        cost[key] = upstream + duration
        best_parent[key] = parent
        return cost[key]

    for key in executions:
        resolve(key, frozenset())
    if not cost:
        return []
    terminal = max(cost, key=lambda key: (cost[key], key))
    chain: List[JobExecution] = []
    cursor: Optional[str] = terminal
    while cursor is not None:
        chain.append(executions[cursor])
        cursor = best_parent.get(cursor)
    chain.reverse()
    return chain


# --------------------------------------------------------------------- #
# Waves, utilization, stragglers
# --------------------------------------------------------------------- #
def _by_wave(executions: Sequence[JobExecution]) -> Dict[Optional[int], List[JobExecution]]:
    waves: Dict[Optional[int], List[JobExecution]] = {}
    for execution in executions:
        if not execution.closed:
            continue
        waves.setdefault(execution.wave, []).append(execution)
    return waves


def wave_stats(run: TraceRun) -> List[WaveStats]:
    """Per-wave span, busy time and utilization, from the job intervals.

    ``span`` is first start → last end within the wave; ``busy`` sums the
    wave's job durations; ``utilization = busy / (streams × span)`` — 1.0
    means every participating worker computed for the whole wave span.
    """
    stats: List[WaveStats] = []
    for wave, members in sorted(
        _by_wave(run.executions()).items(),
        key=lambda item: (item[0] is None, item[0]),
    ):
        busy = sum(e.duration_s or 0.0 for e in members)
        span = max(e.end_mono for e in members) - min(e.start_mono for e in members)
        streams = len({e.stream for e in members})
        utilization = (
            busy / (streams * span) if span > 0 and streams else 1.0
        )
        stats.append(
            WaveStats(
                wave=wave, jobs=len(members), streams=streams,
                busy_s=busy, span_s=span, utilization=min(utilization, 1.0),
            )
        )
    return stats


def exceeds_gates(
    value: float, baseline: float, factor: float, min_gap: float
) -> bool:
    """The two-gate threshold shared by every "is this slow?" decision.

    ``value`` is flagged only when it exceeds ``baseline`` by the
    *relative* ``factor`` **and** by the *absolute* ``min_gap`` — so
    seconds-fast smoke runs never flag noise (a 3× slowdown from 0.2 s
    to 0.6 s fails the absolute gate) while real regressions trip both.
    Used by :func:`find_stragglers`, ``trace regress``
    (:func:`repro.telemetry.history.compare_records`) and the
    ``RemoteExecutor``'s straggler re-dispatch trigger, so the three
    consumers can never drift apart.
    """
    return value > factor * baseline and value - baseline > min_gap


def find_stragglers(
    run: TraceRun, factor: float = 2.0, min_gap_s: float = 5.0
) -> List[Straggler]:
    """Workers whose per-wave busy time dominated their peers'.

    A stream straggles in a wave when its busy time exceeds ``factor`` ×
    the median busy time of that wave's streams **and** the absolute gap
    exceeds ``min_gap_s`` (so sub-second imbalance in smoke runs never
    counts).  Waves with a single stream cannot straggle.
    """
    stragglers: List[Straggler] = []
    for wave, members in sorted(
        _by_wave(run.executions()).items(),
        key=lambda item: (item[0] is None, item[0]),
    ):
        busy_by_stream: Dict[str, List[JobExecution]] = {}
        for execution in members:
            busy_by_stream.setdefault(execution.stream, []).append(execution)
        if len(busy_by_stream) < 2:
            continue
        busies = {
            stream: sum(e.duration_s or 0.0 for e in items)
            for stream, items in busy_by_stream.items()
        }
        median = statistics.median(busies.values())
        for stream, busy in sorted(busies.items()):
            if exceeds_gates(busy, median, factor, min_gap_s):
                shards = {e.shard for e in busy_by_stream[stream]}
                stragglers.append(
                    Straggler(
                        wave=wave, stream=stream,
                        shard=next(iter(shards)) if len(shards) == 1 else None,
                        busy_s=busy, median_busy_s=median,
                        jobs=len(busy_by_stream[stream]),
                    )
                )
    return stragglers


# --------------------------------------------------------------------- #
# Summaries
# --------------------------------------------------------------------- #
def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a non-empty sequence (0 <= q <= 1)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def kind_histogram(run: TraceRun) -> Dict[str, Dict[str, float]]:
    """Per-kind duration stats (incl. p50/p90) over the closed executions."""
    by_kind: Dict[str, List[float]] = {}
    for execution in run.executions():
        if execution.closed and execution.duration_s is not None:
            by_kind.setdefault(execution.kind, []).append(execution.duration_s)
    return {
        kind: {
            "count": float(len(durations)),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "min_s": min(durations),
            "p50_s": quantile(durations, 0.5),
            "p90_s": quantile(durations, 0.9),
            "max_s": max(durations),
        }
        for kind, durations in sorted(by_kind.items())
    }


def resource_summary(run: TraceRun) -> Dict[str, float]:
    """Peak RSS and total CPU across every stream of a run.

    ``peak_rss_kb`` is the maximum high-water mark any participating
    process reported (via periodic ``resource_sample`` events or the
    ``max_rss_kb`` riding on ``job_finish``); ``cpu_total_s`` sums the
    *last* cumulative CPU sample of each stream (``getrusage`` values are
    per-process monotone, so the last sample is the process total so
    far).  Empty on platforms without resource support.
    """
    peak = 0.0
    cpu_by_stream: Dict[str, float] = {}
    samples = 0
    for event in run.events:
        name = event.get("event")
        if name == ev.RESOURCE_SAMPLE:
            samples += 1
            stream = str(event.get("stream", ""))
            user = float(event.get("cpu_user_s", 0.0) or 0.0)
            system = float(event.get("cpu_system_s", 0.0) or 0.0)
            if user or system:
                cpu_by_stream[stream] = user + system
        elif name != ev.JOB_FINISH:
            continue
        if event.get("max_rss_kb") is not None:
            peak = max(peak, float(event["max_rss_kb"]))
    if not samples and peak == 0.0:
        return {}
    summary: Dict[str, float] = {"samples": float(samples)}
    if peak:
        summary["peak_rss_kb"] = peak
    if cpu_by_stream:
        summary["cpu_total_s"] = sum(cpu_by_stream.values())
    return summary


def cache_summary(run: TraceRun) -> Dict[str, float]:
    """Cache efficiency: hits (store skips) vs executed jobs."""
    executed = [e for e in run.executions() if e.closed]
    hits = run.counters().get(ev.COUNTER_CACHE_HITS)
    if hits is None:
        hits = float(len(run.cached_keys()))
    total = hits + len(executed)
    return {
        "hits": hits,
        "executed": float(len(executed)),
        "hit_rate": hits / total if total else 0.0,
    }


def summarize(run: TraceRun) -> Dict[str, object]:
    """Everything ``trace summary`` prints, as one plain dict."""
    executions = [e for e in run.executions() if e.closed]
    failed = [e for e in executions if e.outcome == "failed"]
    open_executions = [e for e in run.executions() if not e.closed]
    chain = critical_path(run)
    elapsed = run.elapsed_s()
    chain_s = sum(e.duration_s or 0.0 for e in chain)
    return {
        "run_id": run.run_id,
        "sweep": run.manifest.get("sweep"),
        "events": len(run.events),
        "streams": len({e.get("stream") for e in run.events}),
        "executed": len(executions),
        "ok": len(executions) - len(failed),
        "failed": len(failed),
        "aborted": sum(1 for e in open_executions if e.outcome == "aborted"),
        "running": sum(1 for e in open_executions if e.outcome == "running"),
        "cached": len(run.cached_keys()),
        "upstream_failed": len(run.upstream_failed_keys()),
        "duplicates": run.duplicate_keys(),
        "elapsed_s": elapsed,
        "critical_path": chain,
        "critical_path_s": chain_s,
        "critical_path_fraction": (
            chain_s / elapsed if elapsed and elapsed > 0 else None
        ),
        "waves": wave_stats(run),
        "stragglers": find_stragglers(run),
        "kinds": kind_histogram(run),
        "cache": cache_summary(run),
        "resources": resource_summary(run),
        "counters": run.counters(),
    }


def execution_to_dict(execution: JobExecution) -> Dict[str, object]:
    """One job interval as a plain JSON-serializable dict (None dropped)."""
    raw = dataclasses.asdict(execution)
    raw["deps"] = list(execution.deps)
    return {name: value for name, value in raw.items() if value is not None}


def summary_to_jsonable(summary: Dict[str, object]) -> Dict[str, object]:
    """A :func:`summarize` dict with every dataclass flattened to plain JSON.

    This is the one serialization of a trace summary: ``trace summary
    --json`` prints it, CI assertions parse it, and the perf-history layer
    (:mod:`repro.telemetry.history`) ingests it — so machine consumers
    never scrape the human-oriented summary lines.
    """
    jsonable = dict(summary)
    jsonable["critical_path"] = [
        execution_to_dict(e) for e in summary.get("critical_path", ())
    ]
    jsonable["waves"] = [
        dataclasses.asdict(stats) for stats in summary.get("waves", ())
    ]
    jsonable["stragglers"] = [
        dataclasses.asdict(straggler) for straggler in summary.get("stragglers", ())
    ]
    return jsonable
