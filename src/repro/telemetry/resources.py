"""Per-process resource metrics: peak RSS and CPU time, stdlib only.

Two consumers, both strictly out-of-band (resource numbers never touch job
addressing or stored artifact bytes):

* :class:`JobResourceProbe` brackets one job execution and reports the
  CPU-seconds the job consumed plus the process's RSS high-water mark at
  completion — the runner attaches these to every ``job_finish`` event and
  to the ``<store>/meta/<key>.json`` sidecar.
* :class:`ResourceSampler` is a daemon thread emitting periodic
  ``resource_sample`` events on a tracer — one per executor process
  (the ``run_sweep`` parent, each pool worker, each shard subprocess), so
  a live watcher can chart memory/CPU while a sweep runs.

Sources are stdlib-only and degrade gracefully:

* ``resource.getrusage(RUSAGE_SELF)`` — user/system CPU seconds and
  ``ru_maxrss`` (the process-lifetime peak RSS; KiB on Linux, bytes on
  macOS — normalised to KiB here).  Absent on non-POSIX platforms, in
  which case every probe returns ``{}`` and no sampler thread starts.
* ``/proc/self/status`` — current ``VmRSS`` and ``VmHWM`` (Linux only;
  silently skipped elsewhere).

Peak-RSS semantics: the kernel's high-water mark is per *process*, not per
job, and cannot be reset without privileged ``/proc`` writes — so
``max_rss_kb`` on a ``job_finish`` event is the worker's peak *as of that
job's completion* (monotone across one worker's successive jobs), while
``cpu_s`` is a true per-job delta.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Optional

try:  # POSIX only; Windows has no stdlib resource module
    import resource as _resource
except ImportError:  # pragma: no cover - exercised only off POSIX
    _resource = None  # type: ignore[assignment]

from repro.telemetry import events as ev
from repro.telemetry.tracer import Tracer

#: Default cadence of the periodic sampler.  The first sample is emitted
#: immediately on start, so even sub-second runs record one per process.
DEFAULT_SAMPLE_INTERVAL_S = 5.0

_PROC_STATUS = "/proc/self/status"


def _proc_status_kb() -> Dict[str, float]:
    """``{"rss_kb", "hwm_kb"}`` from ``/proc/self/status`` (Linux only)."""
    wanted = {"VmRSS:": "rss_kb", "VmHWM:": "hwm_kb"}
    values: Dict[str, float] = {}
    try:
        with open(_PROC_STATUS, "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                parts = line.split()
                name = wanted.get(parts[0] if parts else "")
                if name and len(parts) >= 2:
                    values[name] = float(parts[1])  # kB per proc(5)
                if len(values) == len(wanted):
                    break
    except OSError:
        return {}
    return values


def resources_supported() -> bool:
    """Whether this platform can report any resource metrics at all."""
    return _resource is not None


def sample_resources() -> Dict[str, float]:
    """One point-in-time snapshot of this process's resource usage.

    Keys (each present only when the platform provides it):
    ``cpu_user_s``/``cpu_system_s`` (cumulative process CPU),
    ``max_rss_kb`` (process-lifetime peak RSS, KiB) and ``rss_kb``
    (current RSS, Linux only).  ``{}`` when nothing is measurable.
    """
    if _resource is None:
        return {}
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    max_rss_kb = float(usage.ru_maxrss)
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        max_rss_kb /= 1024.0
    sample = {
        "cpu_user_s": float(usage.ru_utime),
        "cpu_system_s": float(usage.ru_stime),
        "max_rss_kb": max_rss_kb,
    }
    status = _proc_status_kb()
    if "rss_kb" in status:
        sample["rss_kb"] = status["rss_kb"]
    # Prefer the kernel's VmHWM when both exist (identical on Linux in
    # practice; VmHWM survives some getrusage quirks under threads).
    if status.get("hwm_kb"):
        sample["max_rss_kb"] = max(sample["max_rss_kb"], status["hwm_kb"])
    return sample


class JobResourceProbe:
    """Brackets one job: CPU delta + peak RSS at completion.

    Construct immediately before executing a job; :meth:`finish` returns
    the fields the runner attaches to the ``job_finish`` event and the
    meta sidecar (``{}`` on unsupported platforms, so callers can always
    splat the result).
    """

    def __init__(self) -> None:
        self._start = sample_resources()

    def finish(self) -> Dict[str, float]:
        end = sample_resources()
        if not end:
            return {}
        fields: Dict[str, float] = {}
        if "cpu_user_s" in end and "cpu_user_s" in self._start:
            fields["cpu_s"] = round(
                (end["cpu_user_s"] - self._start["cpu_user_s"])
                + (end["cpu_system_s"] - self._start["cpu_system_s"]),
                6,
            )
        if "max_rss_kb" in end:
            fields["max_rss_kb"] = end["max_rss_kb"]
        return fields


class ResourceSampler:
    """A daemon thread emitting periodic ``resource_sample`` events.

    One per (tracer, process).  The first sample fires synchronously on
    :meth:`start` — short-lived processes therefore always record at least
    one — and subsequent samples every ``interval_s`` until :meth:`stop`
    (or process exit; the thread is a daemon and holds no resources worth
    a clean shutdown).  On platforms without resource support, ``start``
    is a no-op.
    """

    def __init__(
        self, tracer: Tracer, interval_s: float = DEFAULT_SAMPLE_INTERVAL_S
    ) -> None:
        self.tracer = tracer
        self.interval_s = max(float(interval_s), 0.05)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _emit_once(self) -> bool:
        sample = sample_resources()
        if not sample:
            return False
        self.tracer.emit(ev.RESOURCE_SAMPLE, **sample)
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._emit_once()

    def start(self) -> "ResourceSampler":
        if self._thread is not None or not self.tracer.enabled:
            return self
        if not self._emit_once():  # unsupported platform: stay dormant
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop the thread; by default emit one last sample first, so the
        stream's final cumulative CPU/peak-RSS reading is current."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        if final_sample:
            self._emit_once()


# One sampler per (process, stream): pool workers and shard subprocesses
# call ensure_process_sampler from their job entry points; the memo makes
# repeated calls (one per job a worker executes) cheap and keeps exactly
# one sampling thread per process stream.
_PROCESS_SAMPLERS: Dict[tuple, ResourceSampler] = {}


def ensure_process_sampler(
    tracer: Tracer, interval_s: float = DEFAULT_SAMPLE_INTERVAL_S
) -> ResourceSampler:
    """This process's running sampler for ``tracer`` (started on first use)."""
    key = (os.getpid(), id(tracer))
    sampler = _PROCESS_SAMPLERS.get(key)
    if sampler is None:
        sampler = ResourceSampler(tracer, interval_s=interval_s).start()
        _PROCESS_SAMPLERS[key] = sampler
    return sampler
