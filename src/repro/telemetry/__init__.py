"""Out-of-band sweep telemetry: tracing, metrics, live monitoring, history.

Six layers:

* :mod:`repro.telemetry.events` — the event schema (names, envelope
  fields, counter names).
* :mod:`repro.telemetry.tracer` — emission: :class:`JsonlTracer` writes
  per-process JSONL streams under ``<store>/telemetry/<run_id>/``;
  :data:`NULL_TRACER` is the disabled no-op.
* :mod:`repro.telemetry.resources` — per-process resource metrics:
  per-job CPU/peak-RSS probes and the periodic ``resource_sample``
  daemon thread (stdlib ``getrusage`` + ``/proc``; no-op elsewhere).
* :mod:`repro.telemetry.analysis` — reconstruction: pairs job events into
  a timeline, extracts the critical path, computes per-wave utilization,
  finds stragglers, and summarises cache efficiency.
* :mod:`repro.telemetry.live` — live monitoring: an incremental tailer
  over a growing run directory folded into sweep-state snapshots
  (``trace watch``, ``run --progress``).
* :mod:`repro.telemetry.history` — durable perf history: one JSONL
  record per traced sweep plus two-gate regression comparison
  (``trace history``, ``trace regress``).

Telemetry never feeds back into job addressing or stored artifacts —
traced and untraced sweeps produce byte-identical aggregates.
"""

from repro.telemetry.analysis import (
    JobExecution,
    Straggler,
    TraceRun,
    WaveStats,
    cache_summary,
    critical_path,
    execution_to_dict,
    find_stragglers,
    kind_histogram,
    load_run,
    quantile,
    resource_summary,
    summarize,
    summary_to_jsonable,
    wave_stats,
)
from repro.telemetry.events import TELEMETRY_DIRNAME, TELEMETRY_FORMAT
from repro.telemetry.history import (
    Regression,
    append_history,
    compare_records,
    default_history_path,
    find_baseline,
    history_record,
    load_history,
)
from repro.telemetry.live import (
    RunTailer,
    StreamTailer,
    SweepState,
    render,
    watch,
)
from repro.telemetry.resources import (
    JobResourceProbe,
    ResourceSampler,
    ensure_process_sampler,
    resources_supported,
    sample_resources,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    JsonlTracer,
    Tracer,
    latest_run,
    list_runs,
    load_events,
    merge_events,
    new_run_id,
    process_tracer,
    resolve_tracer,
    run_directory,
    telemetry_root,
    write_graph,
    write_run_manifest,
)

__all__ = [
    "TELEMETRY_DIRNAME",
    "TELEMETRY_FORMAT",
    "JobExecution",
    "JobResourceProbe",
    "JsonlTracer",
    "NULL_TRACER",
    "Regression",
    "ResourceSampler",
    "RunTailer",
    "StreamTailer",
    "Straggler",
    "SweepState",
    "TraceRun",
    "Tracer",
    "WaveStats",
    "append_history",
    "cache_summary",
    "compare_records",
    "critical_path",
    "default_history_path",
    "ensure_process_sampler",
    "execution_to_dict",
    "find_baseline",
    "find_stragglers",
    "history_record",
    "kind_histogram",
    "latest_run",
    "list_runs",
    "load_events",
    "load_history",
    "load_run",
    "merge_events",
    "new_run_id",
    "process_tracer",
    "quantile",
    "render",
    "resolve_tracer",
    "resource_summary",
    "resources_supported",
    "run_directory",
    "sample_resources",
    "summarize",
    "summary_to_jsonable",
    "telemetry_root",
    "watch",
    "wave_stats",
    "write_graph",
    "write_run_manifest",
]
