"""Out-of-band sweep telemetry: tracing, metrics and timeline analysis.

Three layers:

* :mod:`repro.telemetry.events` — the event schema (names, envelope
  fields, counter names).
* :mod:`repro.telemetry.tracer` — emission: :class:`JsonlTracer` writes
  per-process JSONL streams under ``<store>/telemetry/<run_id>/``;
  :data:`NULL_TRACER` is the disabled no-op.
* :mod:`repro.telemetry.analysis` — reconstruction: pairs job events into
  a timeline, extracts the critical path, computes per-wave utilization,
  finds stragglers, and summarises cache efficiency.

Telemetry never feeds back into job addressing or stored artifacts —
traced and untraced sweeps produce byte-identical aggregates.
"""

from repro.telemetry.analysis import (
    JobExecution,
    Straggler,
    TraceRun,
    WaveStats,
    cache_summary,
    critical_path,
    find_stragglers,
    kind_histogram,
    load_run,
    summarize,
    wave_stats,
)
from repro.telemetry.events import TELEMETRY_DIRNAME, TELEMETRY_FORMAT
from repro.telemetry.tracer import (
    NULL_TRACER,
    JsonlTracer,
    Tracer,
    latest_run,
    list_runs,
    load_events,
    merge_events,
    new_run_id,
    process_tracer,
    resolve_tracer,
    run_directory,
    telemetry_root,
    write_graph,
    write_run_manifest,
)

__all__ = [
    "TELEMETRY_DIRNAME",
    "TELEMETRY_FORMAT",
    "JobExecution",
    "JsonlTracer",
    "NULL_TRACER",
    "Straggler",
    "TraceRun",
    "Tracer",
    "WaveStats",
    "cache_summary",
    "critical_path",
    "find_stragglers",
    "kind_histogram",
    "latest_run",
    "list_runs",
    "load_events",
    "load_run",
    "merge_events",
    "new_run_id",
    "process_tracer",
    "resolve_tracer",
    "run_directory",
    "summarize",
    "telemetry_root",
    "wave_stats",
    "write_graph",
    "write_run_manifest",
]
