"""Durable performance history: one JSONL record per traced sweep.

After a traced ``run_sweep`` completes, the runner appends a compact
summary record — elapsed time, critical path, per-wave utilization,
cache efficiency, per-kind duration quantiles, peak RSS — to
``benchmarks/results/history.jsonl`` (:func:`append_history`).  The file
is the repo's performance trajectory: ``trace history`` lists it,
``trace regress`` compares the latest record against a pinned baseline
and exits nonzero on regression, so CI catches slowdowns in the fast
engine or the executors before they ship.

Regression detection mirrors ``find_stragglers``' two-gate design: a
metric regresses only when it exceeds the baseline by a *relative*
factor **and** an *absolute* gap.  Seconds-fast smoke runs therefore
never flag timing noise (a 3× slowdown from 0.2 s to 0.6 s fails the
absolute gate), while a real multi-minute regression trips both.

Records are plain dicts ingested from
:func:`repro.telemetry.analysis.summary_to_jsonable` — the same
serialization ``trace summary --json`` prints, so external consumers and
this module read one schema.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: File name of the history log (conventionally under the benchmark
#: results directory, next to the store).
HISTORY_FILENAME = "history.jsonl"


def default_history_path(out_dir: Union[str, Path]) -> Path:
    """The conventional history location for a results directory."""
    return Path(out_dir) / HISTORY_FILENAME


# --------------------------------------------------------------------- #
# Record construction + persistence
# --------------------------------------------------------------------- #
def history_record(
    summary: Dict[str, object],
    executor: Optional[str] = None,
    backend: Optional[str] = None,
    trial_batch: Optional[int] = None,
) -> Dict[str, object]:
    """One compact history record from a jsonable trace summary.

    ``summary`` is :func:`~repro.telemetry.analysis.summary_to_jsonable`
    output.  Only trajectory-relevant aggregates are kept — per-job
    detail stays in the telemetry run directory, addressed by the
    recorded ``run_id``.

    ``backend`` names the array backend the sweep executed under and
    ``trial_batch`` its Monte Carlo batching knob; both change wall time
    without changing results, so recording them lets ``trace regress``
    refuse to compare records produced under different backends (see
    :func:`comparable_records`).
    """
    waves = [
        {
            "wave": wave.get("wave"),
            "jobs": wave.get("jobs"),
            "streams": wave.get("streams"),
            "span_s": wave.get("span_s"),
            "utilization": wave.get("utilization"),
        }
        for wave in summary.get("waves", ())  # type: ignore[union-attr]
    ]
    chain = list(summary.get("critical_path", ()))  # type: ignore[arg-type]
    record: Dict[str, object] = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "run_id": summary.get("run_id"),
        "sweep": summary.get("sweep"),
        "executor": executor,
        "backend": backend,
        "trial_batch": trial_batch,
        "elapsed_s": summary.get("elapsed_s"),
        "critical_path_s": summary.get("critical_path_s"),
        "critical_path_fraction": summary.get("critical_path_fraction"),
        "critical_path_kinds": [str(e.get("kind", "?")) for e in chain],
        "jobs": {
            "executed": summary.get("executed"),
            "ok": summary.get("ok"),
            "failed": summary.get("failed"),
            "cached": summary.get("cached"),
            "upstream_failed": summary.get("upstream_failed"),
            "aborted": summary.get("aborted"),
        },
        "cache": summary.get("cache"),
        "waves": waves,
        "kinds": summary.get("kinds"),
        "resources": summary.get("resources"),
    }
    return {k: v for k, v in record.items() if v is not None}


def append_history(path: Union[str, Path], record: Dict[str, object]) -> Path:
    """Append one record to the history log (single atomic line write)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    # O_APPEND single-write: concurrent appenders (parallel CI shards)
    # never interleave within a line.
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)
    return path


def load_history(
    path: Union[str, Path], sweep: Optional[str] = None
) -> List[Dict[str, object]]:
    """All history records, oldest first, optionally filtered to one sweep.

    Missing file → ``[]``; torn final lines are skipped like telemetry
    streams.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: List[Dict[str, object]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if sweep is not None and record.get("sweep") != sweep:
            continue
        records.append(record)
    return records


def find_baseline(
    records: Sequence[Dict[str, object]], baseline: str = "first"
) -> Optional[Dict[str, object]]:
    """Resolve a baseline spec against a record list.

    ``"first"`` → the oldest record; an integer string → that index
    (negatives count from the end, Python-style); anything else → the
    newest record whose ``run_id`` matches.  ``None`` when nothing
    matches.
    """
    if not records:
        return None
    if baseline == "first":
        return records[0]
    try:
        return records[int(baseline)]
    except (ValueError, IndexError):
        pass
    for record in reversed(records):
        if record.get("run_id") == baseline:
            return record
    return None


def comparable_records(
    baseline: Dict[str, object], latest: Dict[str, object]
) -> Optional[str]:
    """Why two history records must not be perf-compared, or ``None``.

    Records produced under different array backends measure different
    compute substrates; comparing them silently would let a backend switch
    masquerade as a regression (or mask a real one).  Records predating
    the backend field are treated as the numpy default — the only backend
    that existed when they were written.
    """
    base = str(baseline.get("backend") or "numpy")
    new = str(latest.get("backend") or "numpy")
    if base != new:
        return (
            f"baseline ran on array backend {base!r} but the latest run on "
            f"{new!r}; perf records are not comparable across backends "
            "(re-baseline on the new backend instead)"
        )
    return None


# --------------------------------------------------------------------- #
# Regression comparison
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class Regression:
    """One metric that exceeded both regression gates."""

    metric: str
    baseline: float
    latest: float
    factor: float       # latest / baseline (inf-safe: baseline > 0 here)
    gap: float          # latest - baseline, metric units

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.latest:.3f} vs baseline "
            f"{self.baseline:.3f} ({self.factor:.2f}x, +{self.gap:.3f})"
        )


def metric_value(record: Dict[str, object], path: Sequence[str]) -> Optional[float]:
    node: object = record
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def compare_records(
    baseline: Dict[str, object],
    latest: Dict[str, object],
    factor: float = 1.5,
    min_gap_s: float = 5.0,
    rss_factor: float = 1.5,
    min_gap_rss_kb: float = 262144.0,
) -> List[Regression]:
    """Two-gate regression comparison between two history records.

    Timing metrics (``elapsed_s``, ``critical_path_s``) regress when
    ``latest > factor × baseline`` **and** ``latest - baseline >
    min_gap_s``.  Peak RSS uses its own gates (``rss_factor``,
    ``min_gap_rss_kb`` — default 256 MiB).  Metrics absent from either
    record are skipped: a smoke run with no resource support never
    fails on RSS.
    """
    gates = [
        (("elapsed_s",), factor, min_gap_s),
        (("critical_path_s",), factor, min_gap_s),
        (("resources", "peak_rss_kb"), rss_factor, min_gap_rss_kb),
    ]
    regressions: List[Regression] = []
    from repro.telemetry.analysis import exceeds_gates  # lazy: heavy deps

    for path, gate_factor, gate_gap in gates:
        base = metric_value(baseline, path)
        new = metric_value(latest, path)
        if base is None or new is None or base <= 0:
            continue
        if exceeds_gates(new, base, gate_factor, gate_gap):
            regressions.append(
                Regression(
                    metric=".".join(path),
                    baseline=base,
                    latest=new,
                    factor=new / base,
                    gap=new - base,
                )
            )
    return regressions
