"""Live sweep monitoring: tail a growing telemetry run, fold to a snapshot.

A traced sweep writes per-process ``events-<stream>.jsonl`` files under
``<store>/telemetry/<run-id>/`` (see :mod:`repro.telemetry.tracer`).  This
module follows such a directory *while it grows* — the progress protocol
the ROADMAP's simulation-service daemon will speak — under the real-world
constraints of that layout:

* **No shared locks.**  Readers never coordinate with writers; each
  stream file is append-only and written in whole lines, so the only
  hazard is a *torn tail* (a final line still being written).
  :class:`StreamTailer` consumes only complete newline-terminated lines
  and carries the partial remainder to the next poll.
* **Streams appear over time.**  Pool workers and shard subprocesses
  create their stream files on first event; :class:`RunTailer` re-globs
  the directory every poll and starts tailing newcomers mid-run.
* **Cross-stream order is loose.**  Within one stream, records are
  ordered; across streams they arrive whenever the writer flushed.
  :class:`SweepState` is therefore an order-tolerant fold: per-job status
  only moves "forward" (pending → running → closed), so a late-arriving
  ``job_start`` can never un-finish a job another poll already closed.

:func:`watch` ties the three together into a snapshot iterator (used by
``trace watch`` and ``run --progress``); :func:`render` turns one
snapshot into terminal text, with a pure-ASCII mode for dumb terminals.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.telemetry import events as ev
from repro.telemetry.tracer import (
    GRAPH_NAME,
    load_graph,
    load_run_manifest,
)

#: Default polling cadence of :func:`watch`.
DEFAULT_POLL_INTERVAL_S = 0.5

# Per-job status lattice: a status only ever moves to a strictly higher
# rank, which is what makes the fold safe under loose cross-stream
# ordering (a stale "running" can't overwrite an observed close).
_CLOSED_STATUSES = ("ok", "failed", "cached", "upstream_failed")
_STATUS_RANK = {
    "pending": 0,
    "running": 1,
    "aborted": 2,
    **{status: 3 for status in _CLOSED_STATUSES},
}


class StreamTailer:
    """Incrementally read complete JSONL lines from one growing file.

    Keeps a byte offset plus the bytes of any unterminated final line;
    each :meth:`poll` returns only the records whose closing newline has
    landed.  A line that never parses (torn write that *looks* complete,
    or garbage) is skipped, matching :func:`~repro.telemetry.tracer.
    load_events`'s tolerance.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = b""

    def poll(self) -> List[Dict[str, object]]:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        if not chunk:
            return []
        self._offset += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        # The final element is everything after the last newline: the torn
        # tail (possibly empty).  Keep it for the next poll.
        self._partial = lines.pop()
        records: List[Dict[str, object]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
        return records


class RunTailer:
    """Tail every stream of a (possibly still materialising) run directory.

    The directory itself may not exist yet — ``run --progress`` starts
    watching before ``run_sweep`` has emitted anything.  Each poll
    re-globs for newly appeared ``events-*.jsonl`` streams and re-reads
    ``graph.json`` when it changed (shard children merge their local
    graphs into it mid-run).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._tailers: Dict[Path, StreamTailer] = {}
        self._graph_stamp: Optional[tuple] = None
        self.graph: Dict[str, Dict[str, object]] = {}

    def _refresh_graph(self) -> None:
        path = self.directory / GRAPH_NAME
        try:
            stat = path.stat()
        except OSError:
            return
        stamp = (stat.st_mtime_ns, stat.st_size)
        if stamp == self._graph_stamp:
            return
        try:
            self.graph = load_graph(self.directory)
            self._graph_stamp = stamp
        except (json.JSONDecodeError, OSError):
            pass  # mid-rewrite; retry next poll

    def manifest(self) -> Dict[str, object]:
        try:
            return load_run_manifest(self.directory)
        except (json.JSONDecodeError, OSError):
            return {}

    def poll(self) -> List[Dict[str, object]]:
        """New complete records across all streams, batch-ordered by
        ``(t_mono, stream, seq)`` (the global ordering within one poll;
        :class:`SweepState` tolerates the cross-poll reordering)."""
        self._refresh_graph()
        for path in sorted(self.directory.glob("events-*.jsonl")):
            if path not in self._tailers:
                self._tailers[path] = StreamTailer(path)
        batch: List[Dict[str, object]] = []
        for tailer in self._tailers.values():
            batch.extend(tailer.poll())
        batch.sort(
            key=lambda e: (
                float(e.get("t_mono", 0.0)),
                str(e.get("stream", "")),
                int(e.get("seq", 0)),
            )
        )
        return batch


class SweepState:
    """An incremental, order-tolerant fold of sweep events.

    Feed it events (any interleaving that preserves per-stream order) via
    :meth:`apply` plus the scheduled graph via :meth:`ingest_graph`;
    :meth:`snapshot` produces the plain-dict summary that ``trace watch``
    renders and tests assert on.
    """

    def __init__(self) -> None:
        self.run_id: Optional[str] = None
        self.sweep: Optional[str] = None
        self.executor: Optional[str] = None
        self.terminal = False
        self.outcome: Optional[str] = None  # "finished" | "aborted"
        self.total: Optional[int] = None  # scheduled jobs per sweep_start
        self.start_mono: Optional[float] = None
        self.last_mono = 0.0
        self._status: Dict[str, str] = {}
        self._start_by_key: Dict[str, float] = {}
        self._stream_by_key: Dict[str, str] = {}
        self._kind_by_key: Dict[str, str] = {}
        self._wave_by_key: Dict[str, Optional[int]] = {}
        self._wave_totals: Dict[int, int] = {}
        self._durations_by_kind: Dict[str, List[float]] = {}
        self._job_streams: set = set()
        self._peak_rss_kb = 0.0
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def _advance(self, key: str, status: str) -> None:
        current = self._status.get(key, "pending")
        if _STATUS_RANK[status] > _STATUS_RANK[current]:
            self._status[key] = status

    def _note_job(self, event: Dict[str, object], key: str) -> None:
        if event.get("kind") is not None:
            self._kind_by_key[key] = str(event["kind"])
        if event.get("wave") is not None:
            self._wave_by_key[key] = int(event["wave"])  # type: ignore[arg-type]

    def apply(self, event: Dict[str, object]) -> None:
        name = event.get("event")
        mono = float(event.get("t_mono", 0.0))
        self.last_mono = max(self.last_mono, mono)
        if self.run_id is None and event.get("run_id"):
            self.run_id = str(event["run_id"])
        key = str(event.get("key", ""))
        if name == ev.SWEEP_START:
            self.sweep = event.get("sweep") or self.sweep
            self.executor = event.get("executor") or self.executor
            if event.get("scheduled") is not None:
                self.total = int(event["scheduled"])  # type: ignore[arg-type]
            self.start_mono = mono
        elif name == ev.JOB_START:
            self._advance(key, "running")
            self._start_by_key.setdefault(key, mono)
            self._stream_by_key[key] = str(event.get("stream", ""))
            self._job_streams.add(event.get("stream"))
            self._note_job(event, key)
        elif name == ev.JOB_FINISH:
            self._advance(key, "ok")
            self._job_streams.add(event.get("stream"))
            self._note_job(event, key)
            if event.get("duration_s") is not None:
                self._durations_by_kind.setdefault(
                    str(event.get("kind", "?")), []
                ).append(float(event["duration_s"]))  # type: ignore[arg-type]
            if event.get("max_rss_kb") is not None:
                self._peak_rss_kb = max(
                    self._peak_rss_kb, float(event["max_rss_kb"])  # type: ignore[arg-type]
                )
        elif name == ev.JOB_FAILED:
            self._advance(key, "failed")
            self._note_job(event, key)
        elif name == ev.JOB_CACHED:
            self._advance(key, "cached")
            self._note_job(event, key)
        elif name == ev.JOB_UPSTREAM_FAILED:
            self._advance(key, "upstream_failed")
        elif name == ev.WAVE_START:
            if event.get("wave") is not None and event.get("jobs") is not None:
                self._wave_totals[int(event["wave"])] = int(event["jobs"])  # type: ignore[arg-type]
        elif name == ev.COUNTER:
            self.counters[str(event.get("name"))] = float(event.get("value", 0.0))  # type: ignore[arg-type]
        elif name == ev.RESOURCE_SAMPLE:
            if event.get("max_rss_kb") is not None:
                self._peak_rss_kb = max(
                    self._peak_rss_kb, float(event["max_rss_kb"])  # type: ignore[arg-type]
                )
        elif name == ev.SWEEP_FINISH:
            self.terminal = True
            self.outcome = self.outcome or "finished"
        elif name == ev.SWEEP_ABORT:
            self.terminal = True
            self.outcome = "aborted"
            for job_key, status in list(self._status.items()):
                if status == "running":
                    self._status[job_key] = "aborted"

    def ingest_graph(self, graph: Dict[str, Dict[str, object]]) -> None:
        """Learn the scheduled job set (keys + kinds) from ``graph.json``,
        so never-started jobs are counted as *pending*, with kinds for the
        ETA model."""
        for key, node in graph.items():
            self._status.setdefault(key, "pending")
            if node.get("kind") is not None:
                self._kind_by_key.setdefault(key, str(node["kind"]))

    # ------------------------------------------------------------------ #
    def _eta_s(self, counts: Dict[str, int]) -> Optional[float]:
        """Crude remaining-time estimate from per-kind mean durations.

        Pending jobs cost their kind's observed mean (overall mean when
        the kind hasn't completed yet); running jobs cost the remainder of
        that mean past their current age.  The sum is divided by the
        number of streams observed executing — i.e. assumes the current
        parallelism holds.  ``None`` until at least one job has finished.
        """
        if not self._durations_by_kind:
            return None
        means = {
            kind: sum(values) / len(values)
            for kind, values in self._durations_by_kind.items()
        }
        all_values = [d for values in self._durations_by_kind.values() for d in values]
        overall = sum(all_values) / len(all_values)
        work = 0.0
        for key, status in self._status.items():
            mean = means.get(self._kind_by_key.get(key, ""), overall)
            if status == "pending":
                work += mean
            elif status == "running":
                age = self.last_mono - self._start_by_key.get(key, self.last_mono)
                work += max(mean - age, 0.0)
        if counts["pending"] == 0 and counts["running"] == 0:
            return 0.0
        streams = max(len(self._job_streams), 1)
        return work / streams

    def snapshot(self) -> Dict[str, object]:
        counts = {
            status: 0
            for status in (
                "pending", "running", "ok", "failed",
                "cached", "upstream_failed", "aborted",
            )
        }
        for status in self._status.values():
            counts[status] += 1
        done = sum(counts[s] for s in _CLOSED_STATUSES) + counts["aborted"]
        # `scheduled` from sweep_start excludes already-cached jobs (they
        # never enter the graph), but their job_cached events land in
        # _status — the larger of the two is the honest denominator.
        total = max(self.total or 0, len(self._status))
        running_jobs = [
            {
                "key": key,
                "kind": self._kind_by_key.get(key, "?"),
                "wave": self._wave_by_key.get(key),
                "stream": self._stream_by_key.get(key, ""),
                "age_s": max(self.last_mono - started, 0.0),
            }
            for key, started in sorted(self._start_by_key.items())
            if self._status.get(key) == "running"
        ]
        waves = []
        for wave in sorted(self._wave_totals):
            members = [
                self._status[key]
                for key, key_wave in self._wave_by_key.items()
                if key_wave == wave and key in self._status
            ]
            wave_running = members.count("running")
            wave_done = sum(
                1 for status in members
                if status in _CLOSED_STATUSES or status == "aborted"
            )
            waves.append(
                {
                    "wave": wave,
                    "jobs": self._wave_totals[wave],
                    "done": wave_done,
                    "running": wave_running,
                    "pending": max(
                        self._wave_totals[wave] - wave_done - wave_running, 0
                    ),
                }
            )
        snapshot: Dict[str, object] = {
            "run_id": self.run_id,
            "sweep": self.sweep,
            "executor": self.executor,
            "terminal": self.terminal,
            "outcome": self.outcome,
            "total": total,
            "done": done,
            "counts": counts,
            "waves": waves,
            "running_jobs": running_jobs,
            "elapsed_s": (
                self.last_mono - self.start_mono
                if self.start_mono is not None
                else None
            ),
            "eta_s": self._eta_s(counts),
            "counters": dict(self.counters),
        }
        if self._peak_rss_kb:
            snapshot["peak_rss_kb"] = self._peak_rss_kb
        return snapshot


# --------------------------------------------------------------------- #
# Watch loop + rendering
# --------------------------------------------------------------------- #
def watch(
    directory: Union[str, Path],
    interval_s: float = DEFAULT_POLL_INTERVAL_S,
    timeout_s: Optional[float] = None,
) -> Iterator[Dict[str, object]]:
    """Yield sweep-state snapshots while a run directory grows.

    One snapshot per poll; the final snapshot has ``terminal=True`` when
    the sweep recorded a terminal event (``sweep_finish``/``sweep_abort``)
    — the iterator then stops.  ``timeout_s`` bounds total watch time
    (the last yielded snapshot simply won't be terminal); ``None`` waits
    indefinitely.
    """
    tailer = RunTailer(directory)
    state = SweepState()
    manifest = tailer.manifest()
    if manifest.get("sweep"):
        state.sweep = str(manifest["sweep"])
    if manifest.get("executor"):
        state.executor = str(manifest["executor"])
    deadline = time.monotonic() + timeout_s if timeout_s is not None else None
    while True:
        for event in tailer.poll():
            state.apply(event)
        if tailer.graph:
            state.ingest_graph(tailer.graph)
        yield state.snapshot()
        if state.terminal:
            return
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(interval_s)


def _format_age(seconds: float) -> str:
    if seconds >= 90:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render(
    snapshot: Dict[str, object],
    ascii_only: bool = False,
    width: int = 40,
    max_running: int = 6,
) -> str:
    """One snapshot as terminal text (multi-line, no trailing newline).

    ``ascii_only`` restricts the whole rendering to 7-bit ASCII — bar
    glyphs and separators included — for non-TTY sinks and ``--ascii``;
    the default uses block glyphs.
    """
    fill, empty = ("#", "-") if ascii_only else ("█", "░")
    sep = " | " if ascii_only else " · "
    ellipsis = "..." if ascii_only else "…"
    counts: Dict[str, int] = snapshot.get("counts", {})  # type: ignore[assignment]
    total = int(snapshot.get("total") or 0)
    done = int(snapshot.get("done") or 0)
    fraction = done / total if total else 0.0
    filled = int(round(fraction * width))
    bar = fill * filled + empty * (width - filled)

    header_bits = []
    if snapshot.get("sweep"):
        header_bits.append(f"sweep {snapshot['sweep']}")
    if snapshot.get("executor"):
        header_bits.append(f"executor {snapshot['executor']}")
    if snapshot.get("run_id"):
        header_bits.append(f"run {snapshot['run_id']}")
    lines = []
    if header_bits:
        lines.append(sep.join(header_bits))

    status_bits = [f"{done}/{total}" if total else f"{done} done"]
    for label in ("ok", "cached", "failed", "upstream_failed", "aborted"):
        if counts.get(label):
            status_bits.append(f"{counts[label]} {label.replace('_', ' ')}")
    status_bits.append(f"{counts.get('running', 0)} running")
    status_bits.append(f"{counts.get('pending', 0)} pending")
    if snapshot.get("elapsed_s") is not None:
        status_bits.append(f"elapsed {_format_age(float(snapshot['elapsed_s']))}")  # type: ignore[arg-type]
    if snapshot.get("eta_s") is not None and not snapshot.get("terminal"):
        status_bits.append(f"eta ~{_format_age(float(snapshot['eta_s']))}")  # type: ignore[arg-type]
    if snapshot.get("peak_rss_kb"):
        status_bits.append(
            f"peak rss {float(snapshot['peak_rss_kb']) / 1024:.0f} MiB"  # type: ignore[arg-type]
        )
    lines.append(f"[{bar}] " + sep.join(status_bits))

    for wave in snapshot.get("waves", ()):  # type: ignore[union-attr]
        bits = [f"{wave['done']}/{wave['jobs']} done"]
        if wave["running"]:
            bits.append(f"{wave['running']} running")
        if wave["pending"]:
            bits.append(f"{wave['pending']} pending")
        lines.append(f"  wave {wave['wave']}: " + ", ".join(bits))

    running_jobs = list(snapshot.get("running_jobs", ()))  # type: ignore[arg-type]
    for job in running_jobs[:max_running]:
        where = f" wave {job['wave']}" if job.get("wave") is not None else ""
        lines.append(
            f"  running {str(job['key'])[:12]} {job['kind']}"
            f" ({_format_age(float(job['age_s']))}{where})"
        )
    if len(running_jobs) > max_running:
        lines.append(
            f"  {ellipsis} and {len(running_jobs) - max_running} more running"
        )

    if snapshot.get("terminal"):
        lines.append(f"sweep {snapshot.get('outcome') or 'finished'}")
    return "\n".join(lines)
