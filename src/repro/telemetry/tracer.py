"""Structured-trace emission: spans, events and counters as JSONL streams.

One telemetry *run* is a directory — conventionally
``<store>/telemetry/<run_id>/`` (:func:`run_directory`) — holding:

* ``events-<stream>.jsonl`` — one file per writing process.  Every
  participant (the orchestrating parent, each process-pool worker, each
  ``shard run`` subprocess) appends whole lines to its *own* file, so
  concurrent writers never interleave and a crash can at worst truncate
  the final line of one stream.  :func:`load_events` tolerates that.
* ``run.json`` — the run manifest (sweep name, executor, salt, format),
  written once by the orchestrating process.
* ``graph.json`` — the scheduler's dependency adjacency over the run's
  scheduled jobs, written by the orchestrator so analysis can reconstruct
  the timeline against the exact graph that executed.
* ``merged.jsonl`` — optional: the time-ordered union of every stream
  (:func:`merge_events`), the single-file form of the event log.

The :class:`Tracer` base class is the **disabled** tracer: every method is
a no-op, so the fast path pays one dynamic call per would-be event and
nothing else.  :class:`JsonlTracer` is the real writer.  Neither touches
job addressing or stored artifacts — telemetry is strictly out-of-band.
"""

from __future__ import annotations

import contextlib
import datetime
import json
import os
import secrets
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.telemetry.events import TELEMETRY_DIRNAME, TELEMETRY_FORMAT

RUN_MANIFEST_NAME = "run.json"
GRAPH_NAME = "graph.json"
MERGED_NAME = "merged.jsonl"


def new_run_id() -> str:
    """A sortable, collision-safe run id: UTC stamp + pid + random tail."""
    stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return f"{stamp}-p{os.getpid()}-{secrets.token_hex(3)}"


def telemetry_root(store_root: Union[str, Path]) -> Path:
    """The telemetry directory of a result store."""
    return Path(store_root) / TELEMETRY_DIRNAME


def run_directory(store_root: Union[str, Path], run_id: str) -> Path:
    return telemetry_root(store_root) / run_id


# --------------------------------------------------------------------- #
# Tracers
# --------------------------------------------------------------------- #
class Tracer:
    """The disabled tracer: every operation is a cheap no-op.

    Doubles as the interface: :meth:`emit` records one event,
    :meth:`span` wraps a block in ``<name>_start``/``<name>_finish``
    events carrying ``duration_s``, :meth:`counter` emits a named sample.
    """

    enabled: bool = False

    def emit(self, event: str, **fields: object) -> None:  # noqa: ARG002
        return None

    def counter(self, name: str, value: float = 1) -> None:  # noqa: ARG002
        return None

    @contextlib.contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:  # noqa: ARG002
        yield

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: The shared no-op instance (stateless, safe to reuse everywhere).
NULL_TRACER = Tracer()


class JsonlTracer(Tracer):
    """Append-only JSONL event writer: one stream file per process.

    The stream name defaults to ``p<pid>-<random>`` so two processes (or
    one pid recycled across forks) can never collide on a file.  Records
    are written as single lines and flushed immediately; the file handle
    opens lazily on the first event, so constructing a tracer that never
    fires is free.
    """

    enabled = True

    def __init__(
        self,
        directory: Union[str, Path],
        run_id: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        self.run_id = run_id if run_id is not None else self.directory.name
        self.stream = (
            stream if stream is not None
            else f"p{os.getpid()}-{secrets.token_hex(3)}"
        )
        self.path = self.directory / f"events-{self.stream}.jsonl"
        self._handle = None
        self._seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def emit(self, event: str, **fields: object) -> None:
        record: Dict[str, object] = {
            "event": event,
            "run_id": self.run_id,
            "stream": self.stream,
            "pid": os.getpid(),
            "t_wall": time.time(),
            "t_mono": time.monotonic(),
        }
        for name, value in fields.items():
            if value is not None:
                record[name] = value
        with self._lock:
            # seq is assigned under the lock so stream order and seq order
            # always agree.
            self._seq += 1
            record["seq"] = self._seq
            line = json.dumps(record, sort_keys=True, default=str)
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def counter(self, name: str, value: float = 1) -> None:
        self.emit("counter", name=name, value=value)

    @contextlib.contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        started = time.monotonic()
        self.emit(f"{name}_start", **fields)
        try:
            yield
        finally:
            self.emit(
                f"{name}_finish",
                duration_s=time.monotonic() - started,
                **fields,
            )

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# Per-process tracer memo for pool workers / shard subprocesses: one stream
# per (directory, run, pid).  Keyed on the pid so a forked child never
# reuses (and interleaves into) its parent's inherited stream.
_PROCESS_TRACERS: Dict[tuple, JsonlTracer] = {}


def process_tracer(directory: Union[str, Path], run_id: Optional[str] = None) -> JsonlTracer:
    """The calling process's tracer for ``directory`` (created on first use)."""
    key = (str(directory), run_id, os.getpid())
    tracer = _PROCESS_TRACERS.get(key)
    if tracer is None:
        tracer = JsonlTracer(directory, run_id=run_id)
        _PROCESS_TRACERS[key] = tracer
    return tracer


def resolve_tracer(
    trace: Union[bool, str, Tracer, None],
    store_root: Union[str, Path],
) -> Tracer:
    """Resolve ``run_sweep``'s ``trace`` argument to a tracer instance.

    ``None``/``False`` → the no-op tracer; ``True`` → a fresh run under
    ``<store>/telemetry/<new run id>``; a string → that run id under the
    same root; a :class:`Tracer` → used as-is.
    """
    if isinstance(trace, Tracer):
        return trace
    if trace is None or trace is False:
        return NULL_TRACER
    run_id = trace if isinstance(trace, str) else new_run_id()
    return JsonlTracer(run_directory(store_root, run_id), run_id=run_id)


# --------------------------------------------------------------------- #
# Run-directory manifests
# --------------------------------------------------------------------- #
def write_run_manifest(directory: Union[str, Path], **info: object) -> Path:
    """Write a run's ``run.json`` (format marker + caller-supplied info)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format": TELEMETRY_FORMAT,
        "written_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        **{k: v for k, v in info.items() if v is not None},
    }
    path = directory / RUN_MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def load_run_manifest(directory: Union[str, Path]) -> Dict[str, object]:
    """The run manifest (``{}`` when the run has none, e.g. bare shard runs)."""
    path = Path(directory) / RUN_MANIFEST_NAME
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def write_graph(
    directory: Union[str, Path], adjacency: Dict[str, Dict[str, object]]
) -> Path:
    """Persist the scheduled dependency graph next to the event streams.

    ``adjacency`` maps each scheduled key to ``{"kind", "index", "deps"}``.
    ``shard run`` processes append their local graphs under distinct file
    names is unnecessary: each writer that knows a graph calls this, and
    later writers merge over earlier content (same content-addressed keys).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / GRAPH_NAME
    merged: Dict[str, Dict[str, object]] = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(adjacency)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True))
    return path


def load_graph(directory: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    path = Path(directory) / GRAPH_NAME
    if not path.exists():
        return {}
    return json.loads(path.read_text())


# --------------------------------------------------------------------- #
# Reading streams back
# --------------------------------------------------------------------- #
def stream_paths(directory: Union[str, Path]) -> List[Path]:
    return sorted(Path(directory).glob("events-*.jsonl"))


def load_events(directory: Union[str, Path]) -> List[Dict[str, object]]:
    """The time-ordered union of every stream in a run directory.

    Records are ordered by ``(t_mono, stream, seq)`` — monotonic clocks
    are comparable across one host's processes, and the per-stream ``seq``
    breaks exact ties deterministically.  A truncated final line (writer
    killed mid-write) is skipped, not fatal.
    """
    events: List[Dict[str, object]] = []
    for path in stream_paths(directory):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail of a killed writer
    events.sort(
        key=lambda e: (
            float(e.get("t_mono", 0.0)),
            str(e.get("stream", "")),
            int(e.get("seq", 0)),
        )
    )
    return events


def merge_events(
    directory: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> Path:
    """Write the single merged, time-ordered JSONL stream of a run.

    The per-process stream files remain the source of truth; the merged
    file is the convenient single-artifact form (what CI uploads, what
    ``trace show`` prints).  Returns the written path.
    """
    directory = Path(directory)
    events = load_events(directory)
    path = Path(out) if out is not None else directory / MERGED_NAME
    text = "".join(json.dumps(event, sort_keys=True) + "\n" for event in events)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def list_runs(store_root: Union[str, Path]) -> List[Path]:
    """Run directories under a store's telemetry root, oldest first."""
    root = telemetry_root(store_root)
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir())


def latest_run(
    store_root: Union[str, Path], sweep: Optional[str] = None
) -> Optional[Path]:
    """The newest run directory (optionally: of one sweep) or ``None``.

    Run ids sort chronologically by construction; runs without a manifest
    (bare ``shard run --trace-dir`` directories) match any sweep filter
    only when no named run does.
    """
    runs = list_runs(store_root)
    if sweep is not None:
        named = [
            run for run in runs
            if load_run_manifest(run).get("sweep") == sweep
        ]
        if named:
            return named[-1]
        return None
    return runs[-1] if runs else None
