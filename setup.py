"""Packaging for the TRQ / twin-range ADC PIM simulator reproduction.

``pip install -e .`` exposes the ``repro`` package from ``src/`` so tests,
benchmarks and examples can drop the ``PYTHONPATH=src`` prefix.
"""

from setuptools import find_packages, setup

setup(
    name="repro-trq-pim",
    version="0.1.0",
    description=(
        "Reproduction of a twin-range-quantization SAR-ADC ReRAM PIM "
        "simulator (crossbar mapping, configurable ADC models, calibration "
        "search, architecture-level energy/latency reporting)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
